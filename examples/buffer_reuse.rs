//! The paper's Figure 1/Figure 3 patterns side by side: a reused work
//! buffer with one allocation site (constant span — no pointer promotion
//! needed) versus the 456.hmmer `mx` pattern with two different-sized
//! allocation sites (dynamic span — fat pointers).
//!
//! ```text
//! cargo run --release --example buffer_reuse
//! ```

use dse_core::{Analysis, OptLevel};
use dse_runtime::{Vm, VmConfig};

/// Figure 1: `zptr` reinitialized and referenced in every iteration; the
/// single `malloc` has a compile-time size, so redirection can use a
/// constant span (Section 3.4's constant propagation).
const FIG1: &str = "
    int main() {
      int *zptr; zptr = malloc(32 * sizeof(int));
      long b; b = 0;
      #pragma candidate fig1
      for (int i = 0; i < 100; i++) {
        for (int k = 0; k < 32; k++) { zptr[k] = i + k; }
        for (int k = 0; k < 32; k++) { b += zptr[k]; }
      }
      out_long(b);
      free(zptr);
      return 0;
    }";

/// Figure 3: `mx` may point to either of two allocations of *different*
/// sizes — only a runtime span (fat pointer) can redirect `mx[k]`.
const FIG3: &str = "
    int main() {
      long total; total = 0;
      #pragma candidate fig3
      for (int i = 0; i < 100; i++) {
        int *mx;
        int m;
        if (i % 3 == 0) { mx = malloc(16 * sizeof(int)); m = 16; }
        else { mx = malloc(24 * sizeof(int)); m = 24; }
        for (int k = 0; k < m; k++) { mx[k] = i * k; }
        for (int k = 0; k < m; k++) { total += mx[k]; }
        free(mx);
      }
      out_long(total);
      return 0;
    }";

fn run_and_report(name: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::from_source(src, VmConfig::default())?;
    let plan = analysis.plan(OptLevel::Full, 4)?;
    println!(
        "{name}: expanded {} object(s); fat pointer types: {}; constant-span sites: {}",
        plan.expanded.len(),
        plan.fat_types.len(),
        plan.const_span.len()
    );
    let t = analysis.transform(OptLevel::Full, 4)?;
    let mut serial = Vm::new(analysis.serial.clone(), VmConfig::default())?;
    serial.run()?;
    let mut par = Vm::new(
        t.parallel,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )?;
    par.run()?;
    assert_eq!(serial.outputs_int(), par.outputs_int());
    println!(
        "{name}: 4-thread run matches serial ({:?})",
        par.outputs_int()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_and_report("figure-1 (constant span)", FIG1)?;
    run_and_report("figure-3 (dynamic span) ", FIG3)?;
    Ok(())
}
