//! Tooling demo: print a loop's data dependence graph, access classes,
//! Figure-8-style breakdown, and the static-vs-profiled dependence diff
//! for a program of your own.
//!
//! ```text
//! cargo run --release --example inspect_ddg [path/to/program.cee]
//! ```
//!
//! Without an argument it inspects the bundled bzip2 model (whose work
//! array is recast between int and short views).

use dse_core::Analysis;
use dse_depprof::DepKind;
use dse_runtime::VmConfig;
use dse_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (source, config) = match std::env::args().nth(1) {
        Some(path) => (std::fs::read_to_string(path)?, VmConfig::default()),
        None => {
            let w = dse_workloads::by_name("bzip2").expect("bundled workload");
            (w.source.to_string(), w.vm_config(Scale::Profile))
        }
    };
    let analysis = Analysis::from_source(&source, config)?;
    for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
        println!("== loop `{}` ==", ddg.label);
        println!(
            "  iterations: {}, sites: {}, dynamic accesses: {}",
            ddg.iterations,
            ddg.site_counts.len(),
            ddg.total_accesses
        );
        for kind in [DepKind::Flow, DepKind::Anti, DepKind::Output] {
            let carried = ddg
                .edges
                .iter()
                .filter(|e| e.kind == kind && e.carried)
                .count();
            let indep = ddg
                .edges
                .iter()
                .filter(|e| e.kind == kind && !e.carried)
                .count();
            println!("  {kind:?}: {indep} loop-independent, {carried} loop-carried");
        }
        println!(
            "  upwards-exposed loads: {}, downwards-exposed stores: {}",
            ddg.upward_exposed.len(),
            ddg.downward_exposed.len()
        );
        let classes: std::collections::HashSet<_> = cls.class_of.values().collect();
        println!(
            "  access classes: {} ({} private sites), mode: {:?}",
            classes.len(),
            cls.private_sites().count(),
            cls.mode
        );
        let b = cls.access_breakdown(ddg);
        let (f, e, c) = b.fractions();
        println!(
            "  breakdown: {:.1}% free of carried deps, {:.1}% expandable, {:.1}% carried",
            100.0 * f,
            100.0 * e,
            100.0 * c
        );
    }

    // Where the profiled classification and the static approximation agree —
    // and where the profile's claim rests on input coverage alone.
    println!("\n== static vs profiled dependences ==");
    for diff in dse_verify::staticdep::loop_diffs(&analysis) {
        println!(
            "loop `{}` ({} iterations, {:?}):",
            diff.label, diff.iterations, diff.mode
        );
        for class in &diff.classes {
            let verdict = match (class.profiled_private, class.statically_confirmed) {
                (true, true) => "private, statically confirmed".to_string(),
                (true, false) => format!(
                    "private BY PROFILE ONLY ({})",
                    class.reason.as_deref().unwrap_or("unconfirmed")
                ),
                (false, _) => "shared".to_string(),
            };
            println!(
                "  class `{}` ({} site{}): {verdict}",
                class.repr,
                class.eids.len(),
                if class.eids.len() == 1 { "" } else { "s" }
            );
        }
    }
    Ok(())
}
