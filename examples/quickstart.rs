//! Quickstart: privatize a contended scratch buffer and run the loop on
//! four threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program below reuses one heap buffer across loop iterations — the
//! spurious dependence pattern the paper targets. The pipeline profiles the
//! loop, classifies its accesses (Definitions 4/5), expands the buffer into
//! per-thread copies (Table 1), redirects the private accesses (Table 2)
//! and runs the loop as DOALL.

use dse_core::{Analysis, OptLevel};
use dse_runtime::{Vm, VmConfig};

const PROGRAM: &str = "
    int main() {
      int *out; out = malloc(256 * sizeof(int));
      int *scratch; scratch = malloc(64 * sizeof(int));
      #pragma candidate hot
      for (int i = 0; i < 256; i++) {
        for (int k = 0; k < 64; k++) { scratch[k] = i * k + 1; }
        int acc; acc = 0;
        for (int k = 0; k < 64; k++) { acc += scratch[k]; }
        out[i] = acc;
      }
      long sum; sum = 0;
      for (int i = 0; i < 256; i++) { sum += out[i]; }
      out_long(sum);
      free(scratch); free(out);
      return 0;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Profile the sequential program and build each candidate loop's
    //    data dependence graph.
    let analysis = Analysis::from_source(PROGRAM, VmConfig::default())?;
    let cls = analysis.classification("hot").expect("loop was profiled");
    println!("loop `hot` classified as {:?}", cls.mode);

    // 2. Expand: 4 thread copies, all Section 3.4 optimizations on.
    let transformed = analysis.transform(OptLevel::Full, 4)?;
    println!(
        "privatized {} data structure(s), {} scalar(s); {} private accesses redirected",
        transformed.report.privatized_structures(),
        transformed.report.expanded_scalar_locals,
        transformed.report.private_accesses_redirected,
    );

    // 3. Run the transformed program on 4 threads and the original
    //    serially; results must agree.
    let mut serial = Vm::new(analysis.serial.clone(), VmConfig::default())?;
    serial.run()?;
    let mut parallel = Vm::new(
        transformed.parallel,
        VmConfig {
            nthreads: 4,
            ..Default::default()
        },
    )?;
    parallel.run()?;
    assert_eq!(serial.outputs_int(), parallel.outputs_int());
    println!(
        "parallel result matches serial: {:?}",
        parallel.outputs_int()
    );
    Ok(())
}
