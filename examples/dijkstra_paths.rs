//! The paper's motivating benchmark: MiBench dijkstra.
//!
//! ```text
//! cargo run --release --example dijkstra_paths
//! ```
//!
//! Each loop iteration finds one shortest path, rebuilding a linked-list
//! priority queue and per-search annotation arrays. Those structures have
//! no single address range — exactly the case traditional array
//! privatization cannot handle. This example walks the whole pipeline and
//! prints what the pass discovered, then compares the simulated multicore
//! schedule against the serial run.

use dse_bench::sim;
use dse_core::{Analysis, OptLevel};
use dse_depprof::DepKind;
use dse_runtime::Vm;
use dse_workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = by_name("dijkstra").expect("bundled workload");
    let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))?;

    // The dependence profile of the pair loop.
    let ddg = analysis.profile.by_label("main_loop").expect("profiled");
    println!(
        "profiled {} iterations, {} access sites, {} dependence edges",
        ddg.iterations,
        ddg.site_counts.len(),
        ddg.edges.len()
    );
    let carried_anti_out = ddg
        .sites_in_carried(&[DepKind::Anti, DepKind::Output])
        .len();
    println!("sites in loop-carried anti/output dependences: {carried_anti_out}");

    let cls = analysis.classification("main_loop").expect("classified");
    println!(
        "classification: {:?}, {} private sites",
        cls.mode,
        cls.private_sites().count()
    );

    // Expand for 8 threads and check equivalence.
    let t = analysis.transform(OptLevel::Full, 8)?;
    println!(
        "expanded {} structures (+{} scalars), promoted {} pointer type(s)",
        t.report.privatized_structures(),
        t.report.expanded_scalar_locals,
        t.report.fat_pointer_types
    );
    let mut serial = Vm::new(analysis.serial.clone(), w.vm_config(Scale::Profile))?;
    let serial_report = serial.run()?;
    let mut cfg = w.vm_config(Scale::Profile);
    cfg.nthreads = 8;
    cfg.record_iteration_costs = false;
    let mut par = Vm::new(t.parallel.clone(), cfg)?;
    par.run()?;
    assert_eq!(serial.outputs_int(), par.outputs_int());
    println!(
        "8-thread total path cost matches serial: {:?}",
        par.outputs_int()
    );

    // Simulate the 8-core schedule from measured per-iteration costs.
    let mut cfg = w.vm_config(Scale::Profile);
    cfg.record_iteration_costs = true;
    let mut tracer = Vm::new(t.parallel.clone(), cfg)?;
    let report = tracer.run()?;
    let modes = t
        .parallel
        .loops
        .iter()
        .enumerate()
        .map(|(i, l)| (i as u32, l.mode.unwrap_or(dse_ir::loops::ParMode::DoAll)))
        .collect();
    let ps = sim::simulate_program(
        report.counters.work,
        &tracer.iteration_costs(),
        &modes,
        8,
        false,
    );
    println!(
        "simulated 8-core speedup: {:.2}x (loop-only {:.2}x)",
        serial_report.counters.work as f64 / ps.total_time,
        ps.loop_serial / ps.loop_time
    );
    Ok(())
}
