//! Prints a program before and after data structure expansion — the
//! source-to-source view the paper uses in Figures 1, 3 and 4.
//!
//! ```text
//! cargo run --release --example show_transform [path/to/program.cee]
//! ```
//!
//! Without an argument it transforms the paper's Figure 3 program (the
//! 456.hmmer `mx` pattern): watch the fat-pointer shadow `__sp_mx` appear,
//! the `malloc` sizes multiply by N, and the private access gain its
//! `__tid() * span / sizeof` offset.

use dse_core::{Analysis, OptLevel};
use dse_lang::printer;
use dse_runtime::VmConfig;

const FIG3: &str = "
    int main() {
      long total; total = 0;
      #pragma candidate fig3
      for (int i = 0; i < 12; i++) {
        int *mx;
        int m;
        if (i % 2 == 0) { mx = malloc(8 * sizeof(int)); m = 8; }
        else { mx = malloc(12 * sizeof(int)); m = 12; }
        for (int k = 0; k < m; k++) { mx[k] = i + k; }
        for (int k = 0; k < m; k++) { total += mx[k]; }
        free(mx);
      }
      out_long(total);
      return 0;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (source, config) = match std::env::args().nth(1) {
        Some(path) => (std::fs::read_to_string(path)?, VmConfig::default()),
        None => (FIG3.to_string(), VmConfig::default()),
    };
    let analysis = Analysis::from_source(&source, config)?;
    println!("===== original =====");
    println!("{}", printer::print_program(&analysis.program));
    let t = analysis.transform(OptLevel::Full, 4)?;
    println!("===== expanded for N = 4 threads =====");
    println!("{}", printer::print_program(&t.program));
    println!(
        "// {} structures privatized, {} scalars expanded, {} fat pointer types,",
        t.report.privatized_structures(),
        t.report.expanded_scalar_locals,
        t.report.fat_pointer_types
    );
    println!(
        "// {} span stores inserted ({} elided), {} private accesses redirected",
        t.report.span_stores_emitted,
        t.report.span_stores_elided,
        t.report.private_accesses_redirected
    );
    Ok(())
}
