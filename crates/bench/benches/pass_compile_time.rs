//! Criterion benches for the compiler pipeline itself: frontend, serial
//! lowering, dependence profiling, classification/planning, and the
//! expansion transform (an ablation axis the paper does not time but a
//! user of the pass would care about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dse_core::{Analysis, OptLevel};
use dse_workloads::{all, Scale};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pass_compile_time");
    group.sample_size(10);
    for w in all() {
        group.bench_with_input(
            BenchmarkId::new("frontend", w.name),
            &w.source,
            |b, src| b.iter(|| dse_lang::compile_to_ast(src).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("profile_and_classify", w.name),
            &w,
            |b, w| {
                b.iter(|| {
                    Analysis::from_source(
                        w.source,
                        dse_bench::timing_vm_config(w, Scale::Profile),
                    )
                    .unwrap()
                })
            },
        );
        let analysis =
            Analysis::from_source(w.source, w.vm_config(Scale::Profile)).unwrap();
        group.bench_with_input(BenchmarkId::new("transform", w.name), &analysis, |b, a| {
            b.iter(|| a.transform(OptLevel::Full, 8).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
