//! Benches for the compiler pipeline itself: frontend, serial lowering,
//! dependence profiling, classification/planning, and the expansion
//! transform (an ablation axis the paper does not time but a user of the
//! pass would care about).

use dse_bench::harness;
use dse_core::{Analysis, OptLevel};
use dse_workloads::{all, Scale};

fn main() {
    let group = harness::group("pass_compile_time");
    for w in all() {
        group.bench(&format!("frontend/{}", w.name), || {
            dse_lang::compile_to_ast(w.source).unwrap()
        });
        group.bench(&format!("profile_and_classify/{}", w.name), || {
            Analysis::from_source(w.source, dse_bench::timing_vm_config(&w, Scale::Profile))
                .unwrap()
        });
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile)).unwrap();
        group.bench(&format!("transform/{}", w.name), || {
            analysis.transform(OptLevel::Full, 8).unwrap()
        });
    }
}
