//! Criterion benches for Figure 9: wall-clock cost of the original
//! program vs the transformed program (no-opt and full-opt), run serially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{all, Scale};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_expansion_overhead");
    group.sample_size(10);
    for w in all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .expect("analysis");
        // Timing runs use bench-scale inputs and a lean arena so the
        // program dominates over VM construction.
        let cfg = dse_bench::timing_vm_config(&w, Scale::Bench);
        group.bench_with_input(
            BenchmarkId::new("original", w.name),
            &analysis.serial,
            |b, compiled| {
                b.iter(|| {
                    let mut vm = Vm::new(compiled.clone(), cfg.clone()).unwrap();
                    vm.run().unwrap()
                })
            },
        );
        for (label, opt) in [("noopt", OptLevel::None), ("full", OptLevel::Full)] {
            let t = analysis.transform(opt, 1).expect("transform");
            group.bench_with_input(
                BenchmarkId::new(label, w.name),
                &t.parallel,
                |b, compiled| {
                    b.iter(|| {
                        let mut vm = Vm::new(compiled.clone(), cfg.clone()).unwrap();
                        vm.run().unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
