//! Benches for Figure 9: wall-clock cost of the original program vs the
//! transformed program (no-opt and full-opt), run serially.

use dse_bench::harness;
use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{all, Scale};

fn main() {
    let group = harness::group("fig9_expansion_overhead");
    for w in all() {
        let analysis =
            Analysis::from_source(w.source, w.vm_config(Scale::Profile)).expect("analysis");
        // Timing runs use bench-scale inputs and a lean arena so the
        // program dominates over VM construction.
        let cfg = dse_bench::timing_vm_config(&w, Scale::Bench);
        group.bench(&format!("original/{}", w.name), || {
            let mut vm = Vm::new(analysis.serial.clone(), cfg.clone()).unwrap();
            vm.run().unwrap()
        });
        for (label, opt) in [("noopt", OptLevel::None), ("full", OptLevel::Full)] {
            let t = analysis.transform(opt, 1).expect("transform");
            group.bench(&format!("{label}/{}", w.name), || {
                let mut vm = Vm::new(t.parallel.clone(), cfg.clone()).unwrap();
                vm.run().unwrap()
            });
        }
    }
}
