//! Executor dispatch microbenchmarks.
//!
//! * back-to-back dispatch: a serial loop driving 200 tiny parallel loops
//!   at 8 threads, persistent pool vs the spawn-per-loop baseline — the
//!   "sustained traffic" shape where thread-creation churn dominates the
//!   seed executor.
//! * steal imbalance: a skewed workload (first eighth of the iterations
//!   carry ~800x the work) under work stealing vs static chunking. Wall
//!   time only separates the schedules on a multi-core host, so the
//!   *modeled makespan* — the maximum per-worker instruction count, i.e.
//!   the finish time on ideal cores — is reported alongside.

use dse_bench::harness;
use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{DoallSchedule, ThreadMode, Vm, VmConfig};

const NTHREADS: u32 = 8;

/// 200 back-to-back dispatches of a 64-iteration loop: almost no work per
/// dispatch, so the measurement is the dispatch machinery itself.
const DISPATCH_SRC: &str = "int main() {
    int *a; a = malloc(64 * sizeof(int));
    for (int r = 0; r < 200; r++) {
        #pragma candidate tiny
        for (int i = 0; i < 64; i++) { a[i] = a[i] + r; }
    }
    int s; s = 0;
    for (int i = 0; i < 64; i++) { s += a[i]; }
    free(a);
    return s % 256; }";

/// Skewed DOALL: iterations 0..64 run an ~800x inner loop, the remaining
/// 448 are trivial, so a static 8-way split leaves one worker with nearly
/// all the work. The work sits in a function so its locals live on each
/// worker's private stack.
const SKEW_SRC: &str = "int burn(int i) {
        int w; w = i < 64 ? 800 : 1;
        int acc; acc = 0;
        for (int k = 0; k < w; k++) { acc = acc + i + k; }
        return acc;
    }
    int main() {
    int *a; a = malloc(512 * sizeof(int));
    #pragma candidate skew
    for (int i = 0; i < 512; i++) { a[i] = burn(i); }
    int s; s = 0;
    for (int i = 0; i < 512; i++) { s += a[i]; }
    free(a);
    return s % 100000; }";

fn compile_parallel(src: &str) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
    }
    dse_ir::lower_program(&ast, &opts).expect("lowering")
}

/// Lean arena so `Vm::new` cost stays off the timed path (the VM is built
/// once per case and `run` repeatedly — both programs free everything).
fn config(backend: ThreadMode, schedule: DoallSchedule) -> VmConfig {
    VmConfig {
        mem_bytes: 16 << 20,
        stack_bytes: 256 << 10,
        nthreads: NTHREADS,
        thread_mode: backend,
        doall_schedule: schedule,
        ..Default::default()
    }
}

/// Modeled makespan of the skew loop under `schedule`: the maximum
/// per-worker instruction count of one run (finish time on ideal cores).
fn skew_makespan(compiled: &CompiledProgram, schedule: DoallSchedule) -> u64 {
    let mut vm = Vm::new(compiled.clone(), config(ThreadMode::Pool, schedule)).expect("vm");
    let report = vm.run().expect("run");
    report.per_thread.iter().map(|c| c.work).max().unwrap_or(0)
}

fn main() {
    let group = harness::group("dispatch_latency");

    // -- back-to-back dispatch: pool vs spawn-per-loop -----------------------
    let compiled = compile_parallel(DISPATCH_SRC);
    let mut vm_pool = Vm::new(
        compiled.clone(),
        config(ThreadMode::Pool, DoallSchedule::Stealing),
    )
    .expect("vm");
    let pool = group.bench("back_to_back_200/pool", || {
        vm_pool.run().expect("run");
    });
    let mut vm_spawn = Vm::new(
        compiled,
        config(ThreadMode::SpawnPerLoop, DoallSchedule::Stealing),
    )
    .expect("vm");
    let spawn = group.bench("back_to_back_200/spawn_per_loop", || {
        vm_spawn.run().expect("run");
    });
    println!(
        "dispatch_latency/back_to_back_200 speedup (spawn_per_loop / pool): {:.2}x",
        spawn.as_secs_f64() / pool.as_secs_f64()
    );

    // -- steal imbalance: stealing vs static on skewed work ------------------
    let skew = compile_parallel(SKEW_SRC);
    for (label, schedule) in [
        ("stealing", DoallSchedule::Stealing),
        ("static", DoallSchedule::Static),
    ] {
        let mut vm = Vm::new(skew.clone(), config(ThreadMode::Pool, schedule)).expect("vm");
        group.bench(&format!("skew_512/{label}"), || {
            vm.run().expect("run");
        });
    }
    let steal_span = skew_makespan(&skew, DoallSchedule::Stealing);
    let static_span = skew_makespan(&skew, DoallSchedule::Static);
    println!(
        "dispatch_latency/skew_512 modeled makespan: stealing {steal_span} vs static \
         {static_span} instructions ({:.2}x better balanced)",
        static_span as f64 / steal_span.max(1) as f64
    );
}
