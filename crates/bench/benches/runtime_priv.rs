//! Criterion benches for Figures 10/13: the runtime-privatization baseline
//! vs static expansion, run serially (the wall-clock counterpart of the
//! instruction-count comparison in the `figures` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{by_name, Scale};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_runtime_priv");
    group.sample_size(10);
    // The three workloads whose privatized structures live on the heap —
    // where the runtime baseline pays per-access translation.
    for name in ["dijkstra", "bzip2", "hmmer"] {
        let w = by_name(name).expect("bundled workload");
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .expect("analysis");
        // Timing runs use bench-scale inputs and a lean arena so the
        // program dominates over VM construction.
        let cfg = dse_bench::timing_vm_config(&w, Scale::Bench);
        let t = analysis.transform(OptLevel::Full, 1).expect("transform");
        group.bench_with_input(
            BenchmarkId::new("expansion", name),
            &t.parallel,
            |b, compiled| {
                b.iter(|| {
                    let mut vm = Vm::new(compiled.clone(), cfg.clone()).unwrap();
                    vm.run().unwrap()
                })
            },
        );
        let base = analysis.baseline_parallel(1).expect("baseline");
        group.bench_with_input(
            BenchmarkId::new("runtime_priv", name),
            &base.parallel,
            |b, compiled| {
                b.iter(|| {
                    let mut vm = Vm::new(compiled.clone(), cfg.clone()).unwrap();
                    vm.run().unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
