//! Benches for Figures 10/13: the runtime-privatization baseline vs
//! static expansion, run serially (the wall-clock counterpart of the
//! instruction-count comparison in the `figures` binary).

use dse_bench::harness;
use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{by_name, Scale};

fn main() {
    let group = harness::group("fig10_runtime_priv");
    // The three workloads whose privatized structures live on the heap —
    // where the runtime baseline pays per-access translation.
    for name in ["dijkstra", "bzip2", "hmmer"] {
        let w = by_name(name).expect("bundled workload");
        let analysis =
            Analysis::from_source(w.source, w.vm_config(Scale::Profile)).expect("analysis");
        // Timing runs use bench-scale inputs and a lean arena so the
        // program dominates over VM construction.
        let cfg = dse_bench::timing_vm_config(&w, Scale::Bench);
        let t = analysis.transform(OptLevel::Full, 1).expect("transform");
        group.bench(&format!("expansion/{name}"), || {
            let mut vm = Vm::new(t.parallel.clone(), cfg.clone()).unwrap();
            vm.run().unwrap()
        });
        let base = analysis.baseline_parallel(1).expect("baseline");
        group.bench(&format!("runtime_priv/{name}"), || {
            let mut vm = Vm::new(base.parallel.clone(), cfg.clone()).unwrap();
            vm.run().unwrap()
        });
    }
}
