//! Raw loop throughput of the register backend vs the stack reference.
//!
//! Serial hot kernels (the same three `perf_trajectory` records in
//! `BENCH_00N.json`) run to completion under each backend; the printed
//! speedup is what the trajectory gate checks against its floor. Run with
//! `DSE_BENCH_DUMP=1` to also print the register translation of each
//! kernel — the fastest way to see whether the translator fused the loop
//! body or left stack-shuffle traffic behind.

use dse_bench::harness;
use dse_ir::bytecode::CompiledProgram;
use dse_ir::lower::LowerOptions;
use dse_runtime::{BackendKind, Vm, VmConfig};

const KERNELS: &[(&str, &str)] = &[
    (
        "int_arith",
        "int main() {
            long s; s = 1;
            for (long i = 0; i < 4000000; i++) {
                s = s + i * 3 + (s >> 7);
            }
            return s % 251; }",
    ),
    (
        "float_mac",
        "int main() {
            float acc; acc = 0.0;
            float x; x = 1.0;
            for (int i = 0; i < 3000000; i++) {
                acc = acc + x * 1.0000001;
                x = x * 0.9999999 + 0.0000002;
            }
            return acc > 0.0 ? 0 : 1; }",
    ),
    (
        "mem_stream",
        "int main() {
            int *a; a = malloc(4096 * sizeof(int));
            for (int i = 0; i < 4096; i++) { a[i] = i; }
            int s; s = 0;
            for (int r = 0; r < 700; r++) {
                for (int i = 0; i < 4096; i++) { s += a[i]; }
            }
            free(a);
            return s % 97; }",
    ),
];

fn compile(src: &str) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    dse_ir::lower_program(&ast, &LowerOptions::default()).expect("lowering")
}

fn vm(compiled: &CompiledProgram, backend: BackendKind) -> Vm {
    Vm::new(
        compiled.clone(),
        VmConfig {
            nthreads: 1,
            backend,
            max_instructions: u64::MAX,
            ..Default::default()
        },
    )
    .expect("vm")
}

fn main() {
    let dump = std::env::var("DSE_BENCH_DUMP").is_ok();
    let g = harness::group("regvm_throughput");
    for (name, src) in KERNELS {
        let compiled = compile(src);
        if dump {
            let rp = dse_ir::regcode::translate(&compiled).expect("translate");
            println!(
                "-- {name}: {} stack / {} reg instrs --",
                compiled.code.len(),
                rp.code.len()
            );
            for (i, instr) in rp.code.iter().enumerate() {
                println!("{i:>4}  {instr}");
            }
        }
        let mut stack_vm = vm(&compiled, BackendKind::Stack);
        let mut reg_vm = vm(&compiled, BackendKind::Reg);
        let stack = g.bench(&format!("{name}/stack"), || {
            stack_vm.run().expect("run");
        });
        let reg = g.bench(&format!("{name}/reg"), || {
            reg_vm.run().expect("run");
        });
        println!(
            "regvm_throughput/{name:<28} speedup {:>6.2}x (reg vs stack)",
            stack.as_secs_f64() / reg.as_secs_f64()
        );
    }
}
