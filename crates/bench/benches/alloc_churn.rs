//! Allocator microbenchmarks: the sharded size-class heap against the
//! retained first-fit/global-mutex baseline.
//!
//! Four shapes, each run against both allocators where it applies:
//!
//! * single-threaded alloc/free churn — front-end magazine hit path
//! * multi-threaded (8 workers) alloc/free churn — the contended case the
//!   sharding exists for; the issue's bar is >= 2x over first-fit here
//! * interior-pointer lookup storm — `containing` against the sharded
//!   registry vs the baseline's single map
//! * memcpy sweep — `SharedMem::copy` across sizes and misalignments
//!   (same code path for both heaps; reported once)
//!
//! Deterministic size sequences come from the workspace PRNG so both
//! allocators see identical request streams.

use dse_bench::harness;
use dse_runtime::{FirstFitHeap, Heap, SharedMem};
use dse_workloads::rng::Rng;

const ARENA: u64 = 256 << 20;
const CHURN_OPS: usize = 40_000;
const NTHREADS: usize = 8;

/// One churn worker: allocate up to ~1k live blocks of mixed sizes, free
/// in *random* order (the realistic fragmenting pattern — freed holes
/// scatter through the address space instead of peeling off the tail).
/// `alloc`/`free` are passed as closures so the same body drives both
/// heap implementations.
fn churn(seed: u64, ops: usize, alloc: &(dyn Fn(u64) -> u64 + Sync), free: &(dyn Fn(u64) + Sync)) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::with_capacity(1024);
    for _ in 0..ops {
        if live.len() < 1024 && rng.gen_index(5) < 3 {
            // Mostly small, with an occasional large block so the free
            // space stays striped with differently-sized holes.
            let size = if rng.gen_index(16) == 0 {
                rng.gen_range(4097, 16 << 10) as u64
            } else {
                rng.gen_range(1, 2048) as u64
            };
            live.push(alloc(size));
        } else if !live.is_empty() {
            let i = rng.gen_index(live.len());
            free(live.swap_remove(i));
        }
    }
    for base in live {
        free(base);
    }
}

fn main() {
    let group = harness::group("alloc_churn");

    // -- single-threaded churn ---------------------------------------------
    group.bench("churn_1thread/sharded", || {
        let h = Heap::new(0, ARENA);
        churn(1, CHURN_OPS, &|s| h.alloc(s).unwrap().base, &|b| {
            h.free(b).unwrap();
        });
    });
    group.bench("churn_1thread/first_fit", || {
        let h = FirstFitHeap::new(0, ARENA);
        churn(1, CHURN_OPS, &|s| h.alloc(s).unwrap().base, &|b| {
            h.free(b).unwrap();
        });
    });

    // -- multi-threaded churn (the contended case) -------------------------
    let mt = |run: &(dyn Fn(u64, usize) + Sync)| {
        std::thread::scope(|scope| {
            for t in 0..NTHREADS {
                scope.spawn(move || run(0x100 + t as u64, CHURN_OPS / NTHREADS));
            }
        });
    };
    let sharded_mt = group.bench(&format!("churn_{NTHREADS}threads/sharded"), || {
        let h = Heap::new(0, ARENA);
        mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    let first_fit_mt = group.bench(&format!("churn_{NTHREADS}threads/first_fit"), || {
        let h = FirstFitHeap::new(0, ARENA);
        mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    let speedup = first_fit_mt.as_secs_f64() / sharded_mt.as_secs_f64();
    println!("alloc_churn/churn_{NTHREADS}threads speedup (first_fit / sharded): {speedup:.2}x");

    // -- interior-pointer lookup storm --------------------------------------
    // Build identical layouts, then probe interior addresses from 8 threads.
    let probes: Vec<u64> = {
        let mut rng = Rng::seed_from_u64(7);
        (0..CHURN_OPS)
            .map(|_| rng.gen_range(0, 1 << 20) as u64)
            .collect()
    };
    {
        let h = Heap::new(0, ARENA);
        let blocks: Vec<_> = (0..256).map(|_| h.alloc(4096).unwrap()).collect();
        let span = blocks.last().unwrap().end();
        group.bench("containing_storm/sharded", || {
            std::thread::scope(|scope| {
                for t in 0..NTHREADS {
                    let h = &h;
                    let probes = &probes;
                    scope.spawn(move || {
                        let mut found = 0u64;
                        for (i, p) in probes.iter().enumerate() {
                            if i % NTHREADS == t && h.containing(p % span).is_some() {
                                found += 1;
                            }
                        }
                        std::hint::black_box(found)
                    });
                }
            });
        });
    }
    {
        let h = FirstFitHeap::new(0, ARENA);
        let blocks: Vec<_> = (0..256).map(|_| h.alloc(4096).unwrap()).collect();
        let span = blocks.last().unwrap().end();
        group.bench("containing_storm/first_fit", || {
            std::thread::scope(|scope| {
                for t in 0..NTHREADS {
                    let h = &h;
                    let probes = &probes;
                    scope.spawn(move || {
                        let mut found = 0u64;
                        for (i, p) in probes.iter().enumerate() {
                            if i % NTHREADS == t && h.containing(p % span).is_some() {
                                found += 1;
                            }
                        }
                        std::hint::black_box(found)
                    });
                }
            });
        });
    }

    // -- memcpy sweep --------------------------------------------------------
    let mem = SharedMem::new(8 << 20);
    for (label, len) in [("64B", 64u64), ("4KiB", 4096), ("256KiB", 256 << 10)] {
        for (align_label, src_off, dst_off) in [("aligned", 0u64, 0u64), ("misaligned", 3, 5)] {
            group.bench(&format!("memcpy/{label}/{align_label}"), || {
                mem.copy(4096 + src_off, (4 << 20) + dst_off, len);
            });
        }
    }
}
