//! Benches for Figure 11: simulated multicore execution.
//!
//! On hosts with eight physical cores the `figures --wall fig11` path
//! times real threads; this bench times the deterministic pipeline that
//! the default Figure 11 uses (trace + schedule simulation), keeping the
//! benchmark meaningful on any host.

use dse_bench::{harness, sim};
use dse_core::{Analysis, OptLevel};
use dse_runtime::{Vm, VmConfig};
use dse_workloads::{all, Scale};

fn main() {
    let group = harness::group("fig11_simulated_speedup");
    for w in all().into_iter().take(3) {
        let analysis =
            Analysis::from_source(w.source, w.vm_config(Scale::Profile)).expect("analysis");
        let t = analysis.transform(OptLevel::Full, 8).expect("transform");
        let mut cfg: VmConfig = w.vm_config(Scale::Profile);
        cfg.record_iteration_costs = true;
        let mut vm = Vm::new(t.parallel.clone(), cfg).expect("vm");
        let report = vm.run().expect("run");
        let traces = vm.iteration_costs();
        let modes = t
            .parallel
            .loops
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u32, l.mode.unwrap_or(dse_ir::loops::ParMode::DoAll)))
            .collect();
        let total = report.counters.work;
        group.bench(&format!("simulate_8c/{}", w.name), || {
            sim::simulate_program(total, &traces, &modes, 8, false)
        });
    }
}
