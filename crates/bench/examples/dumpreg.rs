//! Side-by-side dump of a program's stack bytecode and its register
//! translation — the quickest way to see what the stack→register
//! translator, scalar promotion, and the coalescer did to a kernel:
//!
//! ```text
//! cargo run -p dse-bench --example dumpreg -- examples/scratch.cee
//! ```
//!
//! Each register instruction is annotated with the stack pc it originated
//! from, so site attribution and trap pcs can be cross-checked by eye.

use dse_ir::lower::LowerOptions;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: dumpreg <program.cee>");
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let ast = dse_lang::compile_to_ast(&src).unwrap_or_else(|e| panic!("frontend: {e}"));
    let compiled = dse_ir::lower_program(&ast, &LowerOptions::default())
        .unwrap_or_else(|e| panic!("lowering: {e}"));
    let rp = dse_ir::regcode::translate(&compiled).unwrap_or_else(|e| panic!("translate: {e}"));

    println!("-- stack ({} instrs) --", compiled.code.len());
    for (i, ins) in compiled.code.iter().enumerate() {
        println!("{i:>4}  {ins:?}");
    }
    println!("-- reg ({} instrs) --", rp.code.len());
    for (i, ins) in rp.code.iter().enumerate() {
        println!("{i:>4} (pc {:>3})  {ins}", rp.origin_pc(i));
    }
    let mut entries: Vec<_> = rp.entry_map.iter().collect();
    entries.sort();
    println!("entries (stack pc -> reg pc): {entries:?}");
    println!("window registers: {}", rp.frame_regs);
}
