//! Property-based bounds on the schedule simulator: whatever the
//! iteration costs, simulated times respect the work and critical-path
//! laws of the scheduling policies.

use dse_bench::sim::{simulate_entry, simulate_entry_chunked, SimIter};
use dse_ir::loops::ParMode;
use proptest::prelude::*;

fn iter_strategy() -> impl Strategy<Value = SimIter> {
    (0u32..500, 0u32..500, 0u32..500).prop_map(|(pre, window, post)| SimIter {
        pre: pre as f64,
        window: window as f64,
        post: post as f64,
    })
}

proptest! {
    /// Work law and single-core identity: busy/n <= time(n) <= time(1),
    /// and time(1) equals the serial sum.
    #[test]
    fn work_and_serial_bounds(
        iters in prop::collection::vec(iter_strategy(), 1..40),
        n in 1u32..16,
        mode in prop_oneof![Just(ParMode::DoAll), Just(ParMode::DoAcross)],
    ) {
        let serial: f64 = iters.iter().map(SimIter::total).sum();
        let s1 = simulate_entry(mode, &iters, 1);
        prop_assert!((s1.time - serial).abs() < 1e-6);
        let sn = simulate_entry(mode, &iters, n);
        prop_assert!(sn.time <= s1.time + 1e-6, "{} > {}", sn.time, s1.time);
        prop_assert!(
            sn.time * n as f64 + 1e-6 >= serial,
            "work law violated: {} * {} < {}",
            sn.time, n, serial
        );
        // Idle accounting is exact.
        prop_assert!((sn.busy - serial).abs() < 1e-6);
        prop_assert!((sn.idle - (n as f64 * sn.time - serial)).abs() < 1e-3);
    }

    /// DOACROSS critical path: the ordered windows execute in series, so
    /// the loop can never be faster than their sum, nor faster than any
    /// single iteration.
    #[test]
    fn doacross_window_law(
        iters in prop::collection::vec(iter_strategy(), 1..40),
        n in 1u32..16,
    ) {
        let s = simulate_entry(ParMode::DoAcross, &iters, n);
        let windows: f64 = iters.iter().map(|i| i.window).sum();
        prop_assert!(s.time + 1e-6 >= windows);
        let longest = iters.iter().map(SimIter::total).fold(0.0f64, f64::max);
        prop_assert!(s.time + 1e-6 >= longest);
    }

    /// DOALL critical path: exact for one iteration per worker.
    #[test]
    fn doall_chunk_law(iters in prop::collection::vec(iter_strategy(), 1..32)) {
        let n = iters.len() as u32;
        let s = simulate_entry(ParMode::DoAll, &iters, n);
        let longest = iters.iter().map(SimIter::total).fold(0.0f64, f64::max);
        prop_assert!((s.time - longest).abs() < 1e-6, "one iteration per worker");
    }

    /// Chunked DOACROSS degrades gracefully: chunk = m is fully serial.
    #[test]
    fn chunked_extremes(
        iters in prop::collection::vec(iter_strategy(), 1..32),
        n in 2u32..8,
    ) {
        let serial: f64 = iters.iter().map(SimIter::total).sum();
        let all = simulate_entry_chunked(ParMode::DoAcross, &iters, n, iters.len());
        prop_assert!((all.time - serial).abs() < 1e-6, "one chunk = serial");
        let c1 = simulate_entry_chunked(ParMode::DoAcross, &iters, n, 1);
        prop_assert!(c1.time <= all.time + 1e-6);
    }
}
