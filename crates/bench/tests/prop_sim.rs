//! Randomized bounds on the schedule simulator: whatever the iteration
//! costs, simulated times respect the work and critical-path laws of the
//! scheduling policies. Cases come from the workspace's deterministic
//! PRNG, so failures reproduce exactly.

use dse_bench::sim::{simulate_entry, simulate_entry_chunked, SimIter};
use dse_ir::loops::ParMode;
use dse_workloads::rng::Rng;

const CASES: u64 = 256;

fn gen_iters(rng: &mut Rng, max: i64) -> Vec<SimIter> {
    (0..rng.gen_range(1, max))
        .map(|_| SimIter {
            pre: rng.gen_range(0, 500) as f64,
            window: rng.gen_range(0, 500) as f64,
            post: rng.gen_range(0, 500) as f64,
        })
        .collect()
}

/// Work law and single-core identity: busy/n <= time(n) <= time(1),
/// and time(1) equals the serial sum.
#[test]
fn work_and_serial_bounds() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x51_B0 + case);
        let iters = gen_iters(&mut rng, 40);
        let n = rng.gen_range(1, 16) as u32;
        let mode = if rng.gen_bool() {
            ParMode::DoAll
        } else {
            ParMode::DoAcross
        };
        let serial: f64 = iters.iter().map(SimIter::total).sum();
        let s1 = simulate_entry(mode, &iters, 1);
        assert!((s1.time - serial).abs() < 1e-6, "case {case}");
        let sn = simulate_entry(mode, &iters, n);
        assert!(
            sn.time <= s1.time + 1e-6,
            "case {case}: {} > {}",
            sn.time,
            s1.time
        );
        assert!(
            sn.time * n as f64 + 1e-6 >= serial,
            "case {case}: work law violated: {} * {} < {}",
            sn.time,
            n,
            serial
        );
        // Idle accounting is exact.
        assert!((sn.busy - serial).abs() < 1e-6, "case {case}");
        assert!(
            (sn.idle - (n as f64 * sn.time - serial)).abs() < 1e-3,
            "case {case}"
        );
    }
}

/// DOACROSS critical path: the ordered windows execute in series, so
/// the loop can never be faster than their sum, nor faster than any
/// single iteration.
#[test]
fn doacross_window_law() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD0AC + case);
        let iters = gen_iters(&mut rng, 40);
        let n = rng.gen_range(1, 16) as u32;
        let s = simulate_entry(ParMode::DoAcross, &iters, n);
        let windows: f64 = iters.iter().map(|i| i.window).sum();
        assert!(s.time + 1e-6 >= windows, "case {case}");
        let longest = iters.iter().map(SimIter::total).fold(0.0f64, f64::max);
        assert!(s.time + 1e-6 >= longest, "case {case}");
    }
}

/// DOALL critical path: exact for one iteration per worker.
#[test]
fn doall_chunk_law() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD0A1 + case);
        let iters = gen_iters(&mut rng, 32);
        let n = iters.len() as u32;
        let s = simulate_entry(ParMode::DoAll, &iters, n);
        let longest = iters.iter().map(SimIter::total).fold(0.0f64, f64::max);
        assert!(
            (s.time - longest).abs() < 1e-6,
            "case {case}: one iteration per worker"
        );
    }
}

/// Chunked DOACROSS degrades gracefully: chunk = m is fully serial.
#[test]
fn chunked_extremes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x000C_44E7 + case);
        let iters = gen_iters(&mut rng, 32);
        let n = rng.gen_range(2, 8) as u32;
        let serial: f64 = iters.iter().map(SimIter::total).sum();
        let all = simulate_entry_chunked(ParMode::DoAcross, &iters, n, iters.len());
        assert!(
            (all.time - serial).abs() < 1e-6,
            "case {case}: one chunk = serial"
        );
        let c1 = simulate_entry_chunked(ParMode::DoAcross, &iters, n, 1);
        assert!(c1.time <= all.time + 1e-6, "case {case}");
    }
}
