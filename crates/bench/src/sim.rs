//! Deterministic multicore schedule simulator.
//!
//! The paper's speedups were measured on an 8-core Opteron. This
//! reproduction may run on hosts with fewer physical cores (CI containers
//! are often single-core), where wall-clock "parallel" timing measures
//! time-slicing artifacts instead of the transformation. The simulator
//! replaces the physical testbed: it replays each candidate loop's
//! *measured per-iteration instruction costs* (recorded by the VM under
//! [`dse_runtime::vm::VmConfig::record_iteration_costs`]) through the
//! executor's exact scheduling policies:
//!
//! * **DOALL** — static contiguous chunks, one per worker; the loop ends
//!   when the slowest chunk finishes (a barrier).
//! * **DOACROSS** — dynamic self-scheduling with chunk size 1: each
//!   iteration goes to the earliest-free worker, its ordered window may
//!   only start after the previous iteration's window ended (post/wait).
//!
//! The model captures exactly the effects the paper discusses — pipeline
//! stalls from wide ordered sections (256.bzip2, 456.hmmer), load
//! imbalance, and serial fractions — but *not* cache or memory-bandwidth
//! contention (the paper attributes the 470.lbm and mpeg2-decoder plateaus
//! to those; see EXPERIMENTS.md).

use dse_ir::loops::ParMode;
use dse_runtime::vm::IterCost;

/// Cost of one iteration in simulated cycles, split at the ordered-window
/// boundaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimIter {
    /// Cost before the ordered window.
    pub pre: f64,
    /// Cost inside the ordered window.
    pub window: f64,
    /// Cost after the window.
    pub post: f64,
}

impl SimIter {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.pre + self.window + self.post
    }
}

/// Converts a measured [`IterCost`] to simulated cycles. `charge_localize`
/// charges the runtime-privatization monitoring its modeled native cost
/// (lookup ≈ 20 cycles per monitored access — heap translations *and*
/// statically privatized accesses, per SpiceC's "all memory accesses are
/// monitored" — plus copy ≈ 0.25 cycles/byte), spread proportionally over
/// the iteration's segments.
pub fn to_sim_iter(c: &IterCost, charge_localize: bool) -> SimIter {
    let t = (c.pre + c.window + c.post) as f64;
    let extra = if charge_localize {
        20.0 * (c.localize_calls + c.private_direct) as f64 + 0.25 * c.localize_bytes as f64
    } else {
        0.0
    };
    let factor = if t > 0.0 { (t + extra) / t } else { 1.0 };
    SimIter {
        pre: c.pre as f64 * factor,
        window: c.window as f64 * factor,
        post: c.post as f64 * factor,
    }
}

/// Outcome of simulating one dynamic loop entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOutcome {
    /// Wall time of the loop entry (cycles): all workers joined.
    pub time: f64,
    /// Sum of busy cycles across workers.
    pub busy: f64,
    /// Sum of idle/waiting cycles across workers (`n * time - busy`).
    pub idle: f64,
}

/// Simulates one loop entry under the executor's scheduling policy
/// (DOACROSS claims one iteration at a time, as the executor does).
pub fn simulate_entry(mode: ParMode, iters: &[SimIter], n: u32) -> SimOutcome {
    simulate_entry_chunked(mode, iters, n, 1)
}

/// Like [`simulate_entry`], with a configurable DOACROSS claim size (the
/// paper uses chunk = 1; `figures -- ablation-chunk` sweeps this).
pub fn simulate_entry_chunked(
    mode: ParMode,
    iters: &[SimIter],
    n: u32,
    chunk: usize,
) -> SimOutcome {
    let n = n.max(1) as usize;
    let chunk = chunk.max(1);
    if iters.is_empty() {
        return SimOutcome::default();
    }
    let time = match mode {
        ParMode::DoAll => {
            // Static contiguous chunks of ceil(m/n).
            let m = iters.len();
            let chunk = m.div_ceil(n);
            let mut worst: f64 = 0.0;
            for t in 0..n {
                let lo = (t * chunk).min(m);
                let hi = ((t + 1) * chunk).min(m);
                let sum: f64 = iters[lo..hi].iter().map(SimIter::total).sum();
                worst = worst.max(sum);
            }
            worst
        }
        ParMode::DoAcross => {
            // Dynamic in-order assignment of `chunk` consecutive iterations
            // to the earliest-free worker; each iteration's ordered window
            // starts no earlier than the previous iteration's window end.
            let mut free = vec![0.0f64; n];
            let mut prev_window_end = 0.0f64;
            let mut end_time = 0.0f64;
            let mut next = 0usize;
            while next < iters.len() {
                let w = free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("n >= 1");
                let mut cursor = free[w];
                for it in &iters[next..(next + chunk).min(iters.len())] {
                    let window_start = (cursor + it.pre).max(prev_window_end);
                    let window_end = window_start + it.window;
                    cursor = window_end + it.post;
                    prev_window_end = window_end;
                }
                free[w] = cursor;
                end_time = end_time.max(cursor);
                next += chunk;
            }
            end_time
        }
    };
    let busy: f64 = iters.iter().map(SimIter::total).sum();
    SimOutcome {
        time,
        busy,
        idle: n as f64 * time - busy,
    }
}

/// A full-program simulation at one core count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgramSim {
    /// Simulated program time (cycles).
    pub total_time: f64,
    /// Simulated time inside candidate loops.
    pub loop_time: f64,
    /// Serial (measured) time inside candidate loops.
    pub loop_serial: f64,
    /// Aggregate worker busy cycles inside loops.
    pub busy: f64,
    /// Aggregate worker idle cycles inside loops.
    pub idle: f64,
}

/// Simulates a program at `n` cores from (a) its serial instruction total
/// and (b) the per-entry iteration traces of its candidate loops.
///
/// `loop_modes` gives the scheduling mode per loop id.
pub fn simulate_program(
    serial_total: u64,
    traces: &std::collections::HashMap<u32, Vec<Vec<IterCost>>>,
    loop_modes: &std::collections::HashMap<u32, ParMode>,
    n: u32,
    charge_localize: bool,
) -> ProgramSim {
    let mut loop_serial = 0.0;
    let mut loop_time = 0.0;
    let mut busy = 0.0;
    let mut idle = 0.0;
    for (loop_id, entries) in traces {
        let mode = loop_modes.get(loop_id).copied().unwrap_or(ParMode::DoAll);
        for entry in entries {
            let iters: Vec<SimIter> = entry
                .iter()
                .map(|c| to_sim_iter(c, charge_localize))
                .collect();
            let serial: f64 = iters.iter().map(SimIter::total).sum();
            let out = simulate_entry(mode, &iters, n);
            loop_serial += serial;
            loop_time += out.time;
            busy += out.busy;
            idle += out.idle;
        }
    }
    // Outside the loops the program runs serially; charge localize extras
    // only inside loops (that is where private accesses live).
    let outside = serial_total as f64
        - traces
            .values()
            .flatten()
            .flatten()
            .map(|c| (c.pre + c.window + c.post) as f64)
            .sum::<f64>();
    ProgramSim {
        total_time: outside.max(0.0) + loop_time,
        loop_time,
        loop_serial,
        busy,
        idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iters(costs: &[(u64, u64, u64)]) -> Vec<SimIter> {
        costs
            .iter()
            .map(|&(pre, window, post)| SimIter {
                pre: pre as f64,
                window: window as f64,
                post: post as f64,
            })
            .collect()
    }

    #[test]
    fn doall_perfect_balance_scales_linearly() {
        let it = iters(&[(100, 0, 0); 8]);
        let s1 = simulate_entry(ParMode::DoAll, &it, 1);
        let s8 = simulate_entry(ParMode::DoAll, &it, 8);
        assert_eq!(s1.time, 800.0);
        assert_eq!(s8.time, 100.0);
        assert_eq!(s8.idle, 0.0);
    }

    #[test]
    fn doall_imbalance_bounded_by_largest_chunk() {
        // 9 iterations on 8 workers: one worker gets 2 (ceil chunks).
        let it = iters(&vec![(100, 0, 0); 9]);
        let s8 = simulate_entry(ParMode::DoAll, &it, 8);
        assert_eq!(s8.time, 200.0);
    }

    #[test]
    fn doacross_full_window_serializes() {
        // Whole body ordered: no overlap possible.
        let it = iters(&vec![(0, 100, 0); 10]);
        let s = simulate_entry(ParMode::DoAcross, &it, 8);
        assert_eq!(s.time, 1000.0);
        assert!(s.idle > 0.0);
    }

    #[test]
    fn doacross_small_window_pipelines() {
        // 90% parallel work, 10% ordered tail: near-linear at small n.
        let it = iters(&vec![(90, 10, 0); 64]);
        let s1 = simulate_entry(ParMode::DoAcross, &it, 1);
        let s4 = simulate_entry(ParMode::DoAcross, &it, 4);
        let sp = s1.time / s4.time;
        assert!(sp > 3.0, "expected near-linear, got {sp:.2}");
        // But never better than the ordered-section bound.
        let s64 = simulate_entry(ParMode::DoAcross, &it, 64);
        assert!(s1.time / s64.time <= 10.01);
    }

    #[test]
    fn doacross_respects_order_even_with_uneven_iterations() {
        let it = iters(&[(0, 50, 0), (0, 5, 0), (0, 5, 0)]);
        let s = simulate_entry(ParMode::DoAcross, &it, 4);
        // Iterations 2 and 3 wait for 1's window: 50 + 5 + 5.
        assert_eq!(s.time, 60.0);
    }

    #[test]
    fn localize_charging_inflates_cost() {
        let c = IterCost {
            pre: 100,
            window: 0,
            post: 0,
            localize_calls: 10,
            localize_bytes: 400,
            private_direct: 0,
        };
        let plain = to_sim_iter(&c, false);
        let charged = to_sim_iter(&c, true);
        assert_eq!(plain.total(), 100.0);
        assert_eq!(charged.total(), 100.0 + 200.0 + 100.0);
    }

    #[test]
    fn program_sim_accounts_serial_remainder() {
        let mut traces = std::collections::HashMap::new();
        traces.insert(
            0u32,
            vec![vec![
                IterCost {
                    pre: 100,
                    window: 0,
                    post: 0,
                    ..Default::default()
                };
                4
            ]],
        );
        let mut modes = std::collections::HashMap::new();
        modes.insert(0u32, ParMode::DoAll);
        let sim = simulate_program(1000, &traces, &modes, 4, false);
        // 600 serial outside + 100 parallel loop.
        assert_eq!(sim.total_time, 700.0);
        assert_eq!(sim.loop_serial, 400.0);
    }
}
