//! A minimal self-timing bench harness.
//!
//! The workspace builds in an offline environment, so the usual external
//! bench frameworks are unavailable; the `[[bench]]` targets use this
//! instead. Each case is warmed up once, then sampled `DSE_BENCH_SAMPLES`
//! times (default 10); the report prints the minimum, median and maximum
//! wall time. Timings are interpreter-scale — compare shapes, not
//! absolute numbers.

use std::time::{Duration, Instant};

/// Number of timed samples per case (`DSE_BENCH_SAMPLES`, default 10).
pub fn samples() -> usize {
    std::env::var("DSE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// A named group of bench cases, mirroring the usual group/case layout.
pub struct Group {
    name: String,
}

/// Starts a bench group and prints its header.
pub fn group(name: &str) -> Group {
    println!("== bench group `{name}` ({} samples/case) ==", samples());
    Group {
        name: name.to_string(),
    }
}

impl Group {
    /// Times `f`, discarding one warmup run, and prints a one-line report.
    /// Returns the median sample so callers can post-process.
    pub fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) -> Duration {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..samples())
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "{}/{case:<28} min {:>10.3?}  median {:>10.3?}  max {:>10.3?}",
            self.name,
            times[0],
            median,
            times[times.len() - 1]
        );
        median
    }
}
