//! The recorded cross-PR performance trajectory.
//!
//! Runs the headline benches (allocator churn, dispatch latency, steal
//! imbalance, daemon latency/throughput, tracing overhead, simulated
//! figure speedups) and writes `BENCH_NNN.json` —
//! one document per PR, kept at the repo root so the numbers are diffable
//! across the stack. The schema is documented in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! perf_trajectory [OUT.json]        # run benches, write the document
//! perf_trajectory --check DOC.json  # validate an existing document
//! ```
//!
//! Sample count comes from `DSE_BENCH_SAMPLES` (default 5 here).

use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{BackendKind, DoallSchedule, FirstFitHeap, Heap, ThreadMode, Vm, VmConfig};
use dse_telemetry::Json;
use dse_workloads::rng::Rng;
use dse_workloads::Scale;
use std::process::ExitCode;
use std::time::Instant;

/// Document schema identifier; bump on incompatible layout changes.
const SCHEMA: &str = "dse-bench-trajectory-v1";
/// The PR this binary's numbers belong to.
const PR: i64 = 10;
const DEFAULT_OUT: &str = "BENCH_010.json";
/// The previous PR's document, used for the tracing-off overhead gate.
const PREV_OUT: &str = "BENCH_009.json";
/// Tracing compiled in but disabled may cost at most this much relative
/// to the previous PR's recorded dispatch bench. The two numbers come
/// from different sessions of the same host, and the dispatch bench
/// drifts up to ~10% run-to-run on identical code (measured while
/// recording PR 9: the PR 8 tree itself reproduced at 1.06x its own
/// recorded number), so the budget must absorb cross-session noise on
/// top of the real thing it guards against: per-instruction cost from
/// instrumentation that is supposed to be compiled out.
const TRACE_OFF_BUDGET: f64 = 1.15;
/// Minimum stack-vs-register speedup each hot kernel must show from PR 9
/// on — the register backend has to earn its keep.
const REG_SPEEDUP_FLOOR: f64 = 3.0;
/// Maximum cost of a cold `DSE010`–`DSE015` backend verification relative
/// to the cold compile pipeline it gates (PR 10 on): the static proof must
/// stay a rounding error next to the compile it certifies.
const REGVERIFY_OVERHEAD_BUDGET: f64 = 0.05;
/// Minimum `regverify` cache-hit ratio a warm daemon must sustain (PR 10
/// on): re-verifying an unchanged translation is a wasted proof.
const REGVERIFY_WARM_HIT_FLOOR: f64 = 0.9;

fn samples() -> usize {
    std::env::var("DSE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Sorted wall seconds of `f` over [`samples`] runs (one discarded warmup).
fn sample_secs(mut f: impl FnMut()) -> Vec<f64> {
    f();
    let mut times: Vec<f64> = (0..samples())
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times
}

/// Median wall seconds of `f` over [`samples`] runs (one discarded warmup).
fn median_secs(f: impl FnMut()) -> f64 {
    let times = sample_secs(f);
    times[times.len() / 2]
}

// -- allocator churn (the PR 4/5 number, re-recorded each PR) ---------------

const ARENA: u64 = 256 << 20;
const CHURN_OPS: usize = 40_000;
const CHURN_THREADS: usize = 8;

/// Mixed-size alloc/free churn with randomized free order (the
/// fragmenting pattern of `benches/alloc_churn.rs`).
fn churn(seed: u64, ops: usize, alloc: &(dyn Fn(u64) -> u64 + Sync), free: &(dyn Fn(u64) + Sync)) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::with_capacity(1024);
    for _ in 0..ops {
        if live.len() < 1024 && rng.gen_index(5) < 3 {
            let size = if rng.gen_index(16) == 0 {
                rng.gen_range(4097, 16 << 10) as u64
            } else {
                rng.gen_range(1, 2048) as u64
            };
            live.push(alloc(size));
        } else if !live.is_empty() {
            let i = rng.gen_index(live.len());
            free(live.swap_remove(i));
        }
    }
    for base in live {
        free(base);
    }
}

fn churn_mt(run: &(dyn Fn(u64, usize) + Sync)) {
    std::thread::scope(|scope| {
        for t in 0..CHURN_THREADS {
            scope.spawn(move || run(0x100 + t as u64, CHURN_OPS / CHURN_THREADS));
        }
    });
}

// -- executor benches --------------------------------------------------------

const NTHREADS: u32 = 8;

/// Same shapes as `benches/dispatch_latency.rs`.
const DISPATCH_SRC: &str = "int main() {
    int *a; a = malloc(64 * sizeof(int));
    for (int r = 0; r < 200; r++) {
        #pragma candidate tiny
        for (int i = 0; i < 64; i++) { a[i] = a[i] + r; }
    }
    int s; s = 0;
    for (int i = 0; i < 64; i++) { s += a[i]; }
    free(a);
    return s % 256; }";

const SKEW_SRC: &str = "int burn(int i) {
        int w; w = i < 64 ? 800 : 1;
        int acc; acc = 0;
        for (int k = 0; k < w; k++) { acc = acc + i + k; }
        return acc;
    }
    int main() {
    int *a; a = malloc(512 * sizeof(int));
    #pragma candidate skew
    for (int i = 0; i < 512; i++) { a[i] = burn(i); }
    int s; s = 0;
    for (int i = 0; i < 512; i++) { s += a[i]; }
    free(a);
    return s % 100000; }";

fn compile_parallel(src: &str) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
    }
    dse_ir::lower_program(&ast, &opts).expect("lowering")
}

fn vm_config(backend: ThreadMode, schedule: DoallSchedule) -> VmConfig {
    VmConfig {
        mem_bytes: 16 << 20,
        stack_bytes: 256 << 10,
        nthreads: NTHREADS,
        thread_mode: backend,
        doall_schedule: schedule,
        ..Default::default()
    }
}

/// Maximum per-worker instruction count of one skew-loop run: the finish
/// time on ideal cores, which separates the schedules even on a
/// single-core host.
fn skew_makespan(compiled: &CompiledProgram, schedule: DoallSchedule) -> u64 {
    let mut vm = Vm::new(compiled.clone(), vm_config(ThreadMode::Pool, schedule)).expect("vm");
    let report = vm.run().expect("run");
    report.per_thread.iter().map(|c| c.work).max().unwrap_or(0)
}

// -- daemon benches ----------------------------------------------------------

/// The daemon bench workload: DOACROSS accumulation with a privatizable
/// scratch buffer — every pipeline phase does real work.
const DAEMON_SRC: &str = "int main() {
    long *acc; acc = malloc(1 * sizeof(long));
    int *scratch; scratch = malloc(8 * sizeof(int));
    acc[0] = 0;
    #pragma candidate ordered
    for (int i = 0; i < 50; i++) {
        for (int k = 0; k < 8; k++) { scratch[k] = i * k + 3; }
        int s; s = 0;
        for (int k = 0; k < 8; k++) { s += scratch[k]; }
        acc[0] = acc[0] + s;
    }
    out_long(acc[0]);
    free(acc); free(scratch);
    return 0; }";

const DAEMON_CLIENTS: usize = 8;

fn daemon_request(id: &str, cmd: dse_server::Cmd, source: &str) -> dse_server::Request {
    let mut req = dse_server::Request::new(id, cmd);
    req.source = Some(source.to_string());
    req.threads = 2;
    req
}

/// Wall seconds of one compile request against a fresh daemon (cold
/// cache: every phase computed). Compile isolates the pipeline — a run
/// request adds a constant VM-execution cost on both sides of the
/// cold/warm comparison.
fn daemon_cold_secs() -> f64 {
    let mut times: Vec<f64> = (0..samples())
        .map(|_| {
            let server = dse_server::Server::new(&dse_server::ServerConfig::default());
            let t0 = Instant::now();
            let resp = server.handle(&daemon_request(
                "cold",
                dse_server::Cmd::Compile,
                DAEMON_SRC,
            ));
            assert!(resp.ok, "cold request failed: {:?}", resp.error);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Wall seconds of one compile request against a warm daemon (every
/// phase a content-hash lookup).
fn daemon_warm_secs(server: &dse_server::Server) -> f64 {
    median_secs(|| {
        let resp = server.handle(&daemon_request(
            "warm",
            dse_server::Cmd::Compile,
            DAEMON_SRC,
        ));
        assert!(resp.ok, "warm request failed: {:?}", resp.error);
    })
}

/// Requests per second with 8 concurrent clients hammering a shared warm
/// daemon through its task pool.
fn daemon_rps(server: &std::sync::Arc<dse_server::Server>) -> f64 {
    const PER_CLIENT: usize = 12;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..DAEMON_CLIENTS {
            let server = std::sync::Arc::clone(server);
            scope.spawn(move || {
                for r in 0..PER_CLIENT {
                    let resp = server.handle(&daemon_request(
                        &format!("c{c}-{r}"),
                        dse_server::Cmd::Run,
                        DAEMON_SRC,
                    ));
                    assert!(resp.ok);
                }
            });
        }
    });
    (DAEMON_CLIENTS * PER_CLIENT) as f64 / t0.elapsed().as_secs_f64()
}

// -- register-backend raw loop throughput ------------------------------------

/// Hot serial kernels where interpretation dominates. The register
/// backend's fused, prefetched dispatch must beat the stack reference
/// encoding by a wide margin on these (the PR 9 gate: >= 3x each).
const REG_KERNELS: &[(&str, &str)] = &[
    (
        "int_arith",
        "int main() {
            long s; s = 1;
            for (long i = 0; i < 4000000; i++) {
                s = s + i * 3 + (s >> 7);
            }
            return s % 251; }",
    ),
    (
        "float_mac",
        "int main() {
            float acc; acc = 0.0;
            float x; x = 1.0;
            for (int i = 0; i < 3000000; i++) {
                acc = acc + x * 1.0000001;
                x = x * 0.9999999 + 0.0000002;
            }
            return acc > 0.0 ? 0 : 1; }",
    ),
    (
        "mem_stream",
        "int main() {
            int *a; a = malloc(4096 * sizeof(int));
            for (int i = 0; i < 4096; i++) { a[i] = i; }
            int s; s = 0;
            for (int r = 0; r < 700; r++) {
                for (int i = 0; i < 4096; i++) { s += a[i]; }
            }
            free(a);
            return s % 256; }",
    ),
];

fn compile_serial(src: &str) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    dse_ir::lower_program(&ast, &LowerOptions::default()).expect("lowering")
}

/// Best wall seconds of one serial run of `compiled` under each backend
/// (min over samples: preemption noise on the single-core host only adds
/// time, and the speedup ratio wants the undisturbed cost of each).
/// Samples are interleaved stack/reg so both backends see the same clock
/// — this stage runs after minutes of sustained load, and measuring all
/// stack samples before any reg sample lets frequency drift between the
/// halves masquerade as a throughput change.
fn kernel_secs_pair(compiled: &CompiledProgram) -> (f64, f64) {
    let mk = |backend| {
        Vm::new(
            compiled.clone(),
            VmConfig {
                nthreads: 1,
                backend,
                max_instructions: u64::MAX,
                ..Default::default()
            },
        )
        .expect("vm")
    };
    let mut stack_vm = mk(BackendKind::Stack);
    let mut reg_vm = mk(BackendKind::Reg);
    stack_vm.run().expect("run");
    reg_vm.run().expect("run");
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples() {
        let t0 = Instant::now();
        stack_vm.run().expect("run");
        best.0 = best.0.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        reg_vm.run().expect("run");
        best.1 = best.1.min(t1.elapsed().as_secs_f64());
    }
    best
}

// -- the document ------------------------------------------------------------

struct BenchValue {
    name: &'static str,
    unit: &'static str,
    value: f64,
}

fn build_document(benches: &[BenchValue]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.into())),
        ("pr", Json::Int(PR)),
        (
            "benches",
            Json::Arr(
                benches
                    .iter()
                    .map(|b| {
                        Json::obj(vec![
                            ("name", Json::Str(b.name.into())),
                            ("unit", Json::Str(b.unit.into())),
                            ("value", Json::Float(b.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Reads one bench value out of a previous trajectory document; `None`
/// when the file or the bench is absent (first run on a fresh machine).
fn prev_bench(path: &str, name: &str) -> Option<f64> {
    let v = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    v.get("benches")?
        .as_arr()?
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name))?
        .get("value")?
        .as_f64()
}

/// Validates a trajectory document: schema string, positive PR number, and
/// a non-empty benches array of `{name, unit, value}` entries. From PR 8
/// on, the document must carry the tracing-off overhead ratio and it must
/// be within budget — the observability layer is required to be free while
/// disabled.
fn validate(text: &str) -> Result<usize, String> {
    let v = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unknown schema '{schema}' (expected '{SCHEMA}')"));
    }
    let pr = v
        .get("pr")
        .and_then(Json::as_i64)
        .ok_or("missing integer field 'pr'")?;
    if pr < 1 {
        return Err(format!("'pr' must be positive, got {pr}"));
    }
    let benches = v
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'benches'")?;
    if benches.is_empty() {
        return Err("'benches' is empty".into());
    }
    for (i, b) in benches.iter().enumerate() {
        b.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("benches[{i}] missing string 'name'"))?;
        b.get("unit")
            .and_then(Json::as_str)
            .ok_or(format!("benches[{i}] missing string 'unit'"))?;
        let val = b
            .get("value")
            .and_then(Json::as_f64)
            .ok_or(format!("benches[{i}] missing number 'value'"))?;
        if !val.is_finite() {
            return Err(format!("benches[{i}] value is not finite"));
        }
    }
    if pr >= 8 {
        let ratio = benches
            .iter()
            .find(|b| {
                b.get("name").and_then(Json::as_str) == Some("dispatch_200_trace_off_overhead")
            })
            .and_then(|b| b.get("value").and_then(Json::as_f64))
            .ok_or("PR >= 8 must record 'dispatch_200_trace_off_overhead'")?;
        if ratio > TRACE_OFF_BUDGET {
            return Err(format!(
                "tracing-off overhead {ratio:.4} exceeds the {TRACE_OFF_BUDGET} budget"
            ));
        }
    }
    if pr >= 9 {
        let speedups: Vec<(&str, f64)> = benches
            .iter()
            .filter_map(|b| {
                let name = b.get("name").and_then(Json::as_str)?;
                if !(name.starts_with("regvm_") && name.ends_with("_speedup_vs_stack")) {
                    return None;
                }
                Some((name, b.get("value").and_then(Json::as_f64)?))
            })
            .collect();
        if speedups.len() < 3 {
            return Err(format!(
                "PR >= 9 must record at least 3 'regvm_*_speedup_vs_stack' benches, found {}",
                speedups.len()
            ));
        }
        for (name, v) in speedups {
            if v < REG_SPEEDUP_FLOOR {
                return Err(format!(
                    "{name} is {v:.2}x, below the {REG_SPEEDUP_FLOOR}x register-backend floor"
                ));
            }
        }
    }
    if pr >= 10 {
        let bench_value = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|b| b.get("value").and_then(Json::as_f64))
        };
        let overhead = bench_value("regverify_overhead_ratio")
            .ok_or("PR >= 10 must record 'regverify_overhead_ratio'")?;
        if overhead > REGVERIFY_OVERHEAD_BUDGET {
            return Err(format!(
                "cold backend verification costs {overhead:.4} of the cold pipeline, \
                 over the {REGVERIFY_OVERHEAD_BUDGET} budget"
            ));
        }
        let hit_ratio = bench_value("regverify_warm_hit_ratio")
            .ok_or("PR >= 10 must record 'regverify_warm_hit_ratio'")?;
        if hit_ratio < REGVERIFY_WARM_HIT_FLOOR {
            return Err(format!(
                "warm regverify hit ratio {hit_ratio:.4} is below the \
                 {REGVERIFY_WARM_HIT_FLOOR} floor"
            ));
        }
    }
    Ok(benches.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_OUT);
        return match std::fs::read_to_string(path) {
            Ok(text) => match validate(&text) {
                Ok(n) => {
                    println!("{path}: ok ({n} benches)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: malformed trajectory document: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out = args.first().map(String::as_str).unwrap_or(DEFAULT_OUT);
    let mut benches = Vec::new();

    // Allocator churn, 8 contending threads: sharded heap vs first-fit.
    eprintln!("[1/8] alloc churn ({CHURN_THREADS} threads)...");
    let sharded = median_secs(|| {
        let h = Heap::new(0, ARENA);
        churn_mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    let first_fit = median_secs(|| {
        let h = FirstFitHeap::new(0, ARENA);
        churn_mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    benches.push(BenchValue {
        name: "alloc_churn_mt8_sharded_ms",
        unit: "ms",
        value: sharded * 1e3,
    });
    benches.push(BenchValue {
        name: "alloc_churn_mt8_speedup_vs_first_fit",
        unit: "ratio",
        value: first_fit / sharded,
    });

    // Back-to-back dispatch latency: persistent pool vs spawn-per-loop.
    eprintln!("[2/8] dispatch latency (200 back-to-back loops, {NTHREADS} threads)...");
    let compiled = compile_parallel(DISPATCH_SRC);
    let mut vm_pool = Vm::new(
        compiled.clone(),
        vm_config(ThreadMode::Pool, DoallSchedule::Stealing),
    )
    .expect("vm");
    let pool_times = sample_secs(|| {
        vm_pool.run().expect("run");
    });
    let pool = pool_times[pool_times.len() / 2];
    // Minimum over samples: the low-noise estimator for the cross-session
    // tracing-off gate — on this single-core host, scheduler preemption
    // only ever *adds* time, so the median swings far more than the min.
    let pool_best = pool_times[0];
    let mut vm_spawn = Vm::new(
        compiled,
        vm_config(ThreadMode::SpawnPerLoop, DoallSchedule::Stealing),
    )
    .expect("vm");
    let spawn = median_secs(|| {
        vm_spawn.run().expect("run");
    });
    benches.push(BenchValue {
        name: "dispatch_200_pool_ms",
        unit: "ms",
        value: pool * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_200_spawn_per_loop_ms",
        unit: "ms",
        value: spawn * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_speedup_pool_vs_spawn",
        unit: "ratio",
        value: spawn / pool,
    });

    // Steal imbalance: modeled makespan (ideal-core finish time) of the
    // skewed workload, static / stealing.
    eprintln!("[3/8] steal imbalance (skewed DOALL, {NTHREADS} threads)...");
    let skew = compile_parallel(SKEW_SRC);
    let steal_span = skew_makespan(&skew, DoallSchedule::Stealing);
    let static_span = skew_makespan(&skew, DoallSchedule::Static);
    benches.push(BenchValue {
        name: "skew_makespan_stealing_minstr",
        unit: "Minstr",
        value: steal_span as f64 / 1e6,
    });
    benches.push(BenchValue {
        name: "skew_speedup_stealing_vs_static",
        unit: "ratio",
        value: static_span as f64 / steal_span.max(1) as f64,
    });

    // The dsed daemon: cold vs warm request latency, throughput at 8
    // concurrent clients, and the warm cache-hit ratio.
    eprintln!("[4/8] daemon latency and throughput ({DAEMON_CLIENTS} clients)...");
    let cold = daemon_cold_secs();
    let server = std::sync::Arc::new(dse_server::Server::new(&dse_server::ServerConfig::default()));
    // Prime the cache, then measure steady state.
    assert!(
        server
            .handle(&daemon_request(
                "prime",
                dse_server::Cmd::Compile,
                DAEMON_SRC
            ))
            .ok
    );
    let warm = daemon_warm_secs(&server);
    let rps = daemon_rps(&server);
    let stats = server.stats();
    let (hits, lookups) = stats.phases.iter().fold((0u64, 0u64), |(h, t), p| {
        (h + p.hits + p.dedups, t + p.hits + p.dedups + p.misses)
    });
    benches.push(BenchValue {
        name: "daemon_cold_request_ms",
        unit: "ms",
        value: cold * 1e3,
    });
    benches.push(BenchValue {
        name: "daemon_warm_request_ms",
        unit: "ms",
        value: warm * 1e3,
    });
    benches.push(BenchValue {
        name: "daemon_warm_speedup",
        unit: "ratio",
        value: cold / warm,
    });
    benches.push(BenchValue {
        name: "daemon_rps_8_clients",
        unit: "req/s",
        value: rps,
    });
    benches.push(BenchValue {
        name: "daemon_warm_hit_ratio",
        unit: "ratio",
        value: hits as f64 / lookups.max(1) as f64,
    });

    // Tracing overhead on the dispatch bench: instruments compiled in but
    // off (this PR's hot path) vs the pre-instrumentation PR 7 number,
    // and the cost of actually turning tracing + profiling on.
    eprintln!("[5/8] tracing overhead (dispatch_200, {NTHREADS} threads)...");
    let trace_off_ms = pool * 1e3;
    let compiled = compile_parallel(DISPATCH_SRC);
    let mut vm_traced = Vm::new(
        compiled,
        VmConfig {
            trace: true,
            opcode_profile: true,
            ..vm_config(ThreadMode::Pool, DoallSchedule::Stealing)
        },
    )
    .expect("vm");
    let trace_on = median_secs(|| {
        vm_traced.run().expect("run");
        // Draining is part of the tracing cost.
        let _ = vm_traced.take_trace();
    });
    // Best-to-best where the previous document has a best time (PR 9 on);
    // older documents only recorded the noisier median.
    let prev_pool_ms = prev_bench(PREV_OUT, "dispatch_200_pool_best_ms")
        .or_else(|| prev_bench(PREV_OUT, "dispatch_200_pool_ms"))
        .unwrap_or(pool_best * 1e3);
    benches.push(BenchValue {
        name: "dispatch_200_trace_off_ms",
        unit: "ms",
        value: trace_off_ms,
    });
    benches.push(BenchValue {
        name: "dispatch_200_pool_best_ms",
        unit: "ms",
        value: pool_best * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_200_trace_on_ms",
        unit: "ms",
        value: trace_on * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_200_trace_off_overhead",
        unit: "ratio",
        value: pool_best * 1e3 / prev_pool_ms,
    });
    benches.push(BenchValue {
        name: "dispatch_200_trace_on_overhead",
        unit: "ratio",
        value: trace_on * 1e3 / trace_off_ms,
    });
    // Histogram record cost: the daemon calls this on every request.
    let mut hist = dse_telemetry::LogHistogram::new();
    let mut rng = Rng::seed_from_u64(0xbe_0008);
    const HIST_OPS: usize = 1_000_000;
    let hist_secs = median_secs(|| {
        for _ in 0..HIST_OPS {
            hist.record(rng.next_u64() >> 20);
        }
    });
    benches.push(BenchValue {
        name: "hist_record_ns",
        unit: "ns",
        value: hist_secs * 1e9 / HIST_OPS as f64,
    });

    // Register-backend raw loop throughput: hot serial kernels, stack
    // reference encoding vs fused threaded-dispatch register code.
    eprintln!(
        "[6/8] register backend loop throughput ({} kernels)...",
        REG_KERNELS.len()
    );
    for (name, src) in REG_KERNELS {
        let compiled = compile_serial(src);
        let (stack, reg) = kernel_secs_pair(&compiled);
        benches.push(BenchValue {
            name: match *name {
                "int_arith" => "regvm_int_arith_stack_ms",
                "float_mac" => "regvm_float_mac_stack_ms",
                _ => "regvm_mem_stream_stack_ms",
            },
            unit: "ms",
            value: stack * 1e3,
        });
        benches.push(BenchValue {
            name: match *name {
                "int_arith" => "regvm_int_arith_reg_ms",
                "float_mac" => "regvm_float_mac_reg_ms",
                _ => "regvm_mem_stream_reg_ms",
            },
            unit: "ms",
            value: reg * 1e3,
        });
        benches.push(BenchValue {
            name: match *name {
                "int_arith" => "regvm_int_arith_speedup_vs_stack",
                "float_mac" => "regvm_float_mac_speedup_vs_stack",
                _ => "regvm_mem_stream_speedup_vs_stack",
            },
            unit: "ratio",
            value: stack / reg,
        });
    }

    // Backend verification (DSE010-DSE015): the cold proof's cost relative
    // to the cold compile pipeline it gates, and the daemon's `regverify`
    // cache-hit ratio once warm — re-verifying an unchanged translation
    // would waste the whole point of keying the proof on the artifact.
    eprintln!("[7/8] backend verification gate (cold cost, warm hit ratio)...");
    let compiled = compile_parallel(DAEMON_SRC);
    let rp = dse_ir::regcode::translate(&compiled).expect("reglower");
    let verify = median_secs(|| {
        let report = dse_verify::check_backend(&compiled, &rp);
        assert_eq!(
            report.count(dse_verify::diag::Severity::Error),
            0,
            "bench program must verify clean"
        );
    });
    benches.push(BenchValue {
        name: "regverify_cold_ms",
        unit: "ms",
        value: verify * 1e3,
    });
    benches.push(BenchValue {
        name: "regverify_overhead_ratio",
        unit: "ratio",
        value: verify / cold,
    });
    let server = dse_server::Server::new(&dse_server::ServerConfig::default());
    const REGVERIFY_REQS: usize = 20;
    for i in 0..REGVERIFY_REQS {
        let mut req = daemon_request(&format!("rv{i}"), dse_server::Cmd::Run, DAEMON_SRC);
        req.exec_backend = BackendKind::Reg;
        let resp = server.handle(&req);
        assert!(resp.ok, "register-backend run failed: {:?}", resp.error);
    }
    let stats = server.stats();
    let rv = stats
        .phases
        .iter()
        .find(|p| p.phase == "regverify")
        .expect("daemon records the regverify phase");
    benches.push(BenchValue {
        name: "regverify_warm_hit_ratio",
        unit: "ratio",
        value: (rv.hits + rv.dedups) as f64 / (rv.hits + rv.dedups + rv.misses).max(1) as f64,
    });

    // Figure 11 (simulated): harmonic-mean total speedup on 8 cores over
    // the full workload suite.
    eprintln!("[8/8] figure speedups (simulated, 8 cores)...");
    let rows = dse_bench::fig11_sim(&dse_workloads::all(), Scale::Profile);
    let hmean = dse_bench::harmonic_mean(rows.iter().map(|r| *r.total.last().unwrap()));
    benches.push(BenchValue {
        name: "fig11_sim_total_speedup_8c_hmean",
        unit: "ratio",
        value: hmean,
    });

    let doc = build_document(&benches);
    let text = doc.to_string();
    validate(&text).expect("generated document validates");
    std::fs::write(out, format!("{text}\n")).expect("write trajectory document");
    println!("wrote {out}:");
    for b in &benches {
        println!("  {:<40} {:>10.3} {}", b.name, b.value, b.unit);
    }
    ExitCode::SUCCESS
}
