//! The recorded cross-PR performance trajectory.
//!
//! Runs the headline benches (allocator churn, dispatch latency, steal
//! imbalance, simulated figure speedups) and writes `BENCH_NNN.json` —
//! one document per PR, kept at the repo root so the numbers are diffable
//! across the stack. The schema is documented in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! perf_trajectory [OUT.json]        # run benches, write the document
//! perf_trajectory --check DOC.json  # validate an existing document
//! ```
//!
//! Sample count comes from `DSE_BENCH_SAMPLES` (default 5 here).

use dse_ir::bytecode::CompiledProgram;
use dse_ir::loops::ParMode;
use dse_ir::lower::{LowerMode, LowerOptions, ParLoopSpec};
use dse_runtime::{DoallSchedule, ExecBackend, FirstFitHeap, Heap, Vm, VmConfig};
use dse_telemetry::Json;
use dse_workloads::rng::Rng;
use dse_workloads::Scale;
use std::process::ExitCode;
use std::time::Instant;

/// Document schema identifier; bump on incompatible layout changes.
const SCHEMA: &str = "dse-bench-trajectory-v1";
/// The PR this binary's numbers belong to.
const PR: i64 = 6;
const DEFAULT_OUT: &str = "BENCH_006.json";

fn samples() -> usize {
    std::env::var("DSE_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// Median wall seconds of `f` over [`samples`] runs (one discarded warmup).
fn median_secs(mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples())
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

// -- allocator churn (the PR 4/5 number, re-recorded each PR) ---------------

const ARENA: u64 = 256 << 20;
const CHURN_OPS: usize = 40_000;
const CHURN_THREADS: usize = 8;

/// Mixed-size alloc/free churn with randomized free order (the
/// fragmenting pattern of `benches/alloc_churn.rs`).
fn churn(seed: u64, ops: usize, alloc: &(dyn Fn(u64) -> u64 + Sync), free: &(dyn Fn(u64) + Sync)) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::with_capacity(1024);
    for _ in 0..ops {
        if live.len() < 1024 && rng.gen_index(5) < 3 {
            let size = if rng.gen_index(16) == 0 {
                rng.gen_range(4097, 16 << 10) as u64
            } else {
                rng.gen_range(1, 2048) as u64
            };
            live.push(alloc(size));
        } else if !live.is_empty() {
            let i = rng.gen_index(live.len());
            free(live.swap_remove(i));
        }
    }
    for base in live {
        free(base);
    }
}

fn churn_mt(run: &(dyn Fn(u64, usize) + Sync)) {
    std::thread::scope(|scope| {
        for t in 0..CHURN_THREADS {
            scope.spawn(move || run(0x100 + t as u64, CHURN_OPS / CHURN_THREADS));
        }
    });
}

// -- executor benches --------------------------------------------------------

const NTHREADS: u32 = 8;

/// Same shapes as `benches/dispatch_latency.rs`.
const DISPATCH_SRC: &str = "int main() {
    int *a; a = malloc(64 * sizeof(int));
    for (int r = 0; r < 200; r++) {
        #pragma candidate tiny
        for (int i = 0; i < 64; i++) { a[i] = a[i] + r; }
    }
    int s; s = 0;
    for (int i = 0; i < 64; i++) { s += a[i]; }
    free(a);
    return s % 256; }";

const SKEW_SRC: &str = "int burn(int i) {
        int w; w = i < 64 ? 800 : 1;
        int acc; acc = 0;
        for (int k = 0; k < w; k++) { acc = acc + i + k; }
        return acc;
    }
    int main() {
    int *a; a = malloc(512 * sizeof(int));
    #pragma candidate skew
    for (int i = 0; i < 512; i++) { a[i] = burn(i); }
    int s; s = 0;
    for (int i = 0; i < 512; i++) { s += a[i]; }
    free(a);
    return s % 100000; }";

fn compile_parallel(src: &str) -> CompiledProgram {
    let ast = dse_lang::compile_to_ast(src).expect("frontend");
    let cands = dse_ir::loops::find_candidate_loops(&ast).expect("candidates");
    let mut opts = LowerOptions {
        mode: LowerMode::Parallel,
        ..Default::default()
    };
    for c in &cands {
        opts.par.insert(
            c.label.clone(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
    }
    dse_ir::lower_program(&ast, &opts).expect("lowering")
}

fn vm_config(backend: ExecBackend, schedule: DoallSchedule) -> VmConfig {
    VmConfig {
        mem_bytes: 16 << 20,
        stack_bytes: 256 << 10,
        nthreads: NTHREADS,
        exec_backend: backend,
        doall_schedule: schedule,
        ..Default::default()
    }
}

/// Maximum per-worker instruction count of one skew-loop run: the finish
/// time on ideal cores, which separates the schedules even on a
/// single-core host.
fn skew_makespan(compiled: &CompiledProgram, schedule: DoallSchedule) -> u64 {
    let mut vm = Vm::new(compiled.clone(), vm_config(ExecBackend::Pool, schedule)).expect("vm");
    let report = vm.run().expect("run");
    report.per_thread.iter().map(|c| c.work).max().unwrap_or(0)
}

// -- the document ------------------------------------------------------------

struct BenchValue {
    name: &'static str,
    unit: &'static str,
    value: f64,
}

fn build_document(benches: &[BenchValue]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.into())),
        ("pr", Json::Int(PR)),
        (
            "benches",
            Json::Arr(
                benches
                    .iter()
                    .map(|b| {
                        Json::obj(vec![
                            ("name", Json::Str(b.name.into())),
                            ("unit", Json::Str(b.unit.into())),
                            ("value", Json::Float(b.value)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Validates a trajectory document: schema string, positive PR number, and
/// a non-empty benches array of `{name, unit, value}` entries.
fn validate(text: &str) -> Result<usize, String> {
    let v = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unknown schema '{schema}' (expected '{SCHEMA}')"));
    }
    let pr = v
        .get("pr")
        .and_then(Json::as_i64)
        .ok_or("missing integer field 'pr'")?;
    if pr < 1 {
        return Err(format!("'pr' must be positive, got {pr}"));
    }
    let benches = v
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'benches'")?;
    if benches.is_empty() {
        return Err("'benches' is empty".into());
    }
    for (i, b) in benches.iter().enumerate() {
        b.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("benches[{i}] missing string 'name'"))?;
        b.get("unit")
            .and_then(Json::as_str)
            .ok_or(format!("benches[{i}] missing string 'unit'"))?;
        let val = b
            .get("value")
            .and_then(Json::as_f64)
            .ok_or(format!("benches[{i}] missing number 'value'"))?;
        if !val.is_finite() {
            return Err(format!("benches[{i}] value is not finite"));
        }
    }
    Ok(benches.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_OUT);
        return match std::fs::read_to_string(path) {
            Ok(text) => match validate(&text) {
                Ok(n) => {
                    println!("{path}: ok ({n} benches)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: malformed trajectory document: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out = args.first().map(String::as_str).unwrap_or(DEFAULT_OUT);
    let mut benches = Vec::new();

    // Allocator churn, 8 contending threads: sharded heap vs first-fit.
    eprintln!("[1/4] alloc churn ({CHURN_THREADS} threads)...");
    let sharded = median_secs(|| {
        let h = Heap::new(0, ARENA);
        churn_mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    let first_fit = median_secs(|| {
        let h = FirstFitHeap::new(0, ARENA);
        churn_mt(&|seed, ops| {
            churn(seed, ops, &|s| h.alloc(s).unwrap().base, &|b| {
                h.free(b).unwrap();
            })
        });
    });
    benches.push(BenchValue {
        name: "alloc_churn_mt8_sharded_ms",
        unit: "ms",
        value: sharded * 1e3,
    });
    benches.push(BenchValue {
        name: "alloc_churn_mt8_speedup_vs_first_fit",
        unit: "ratio",
        value: first_fit / sharded,
    });

    // Back-to-back dispatch latency: persistent pool vs spawn-per-loop.
    eprintln!("[2/4] dispatch latency (200 back-to-back loops, {NTHREADS} threads)...");
    let compiled = compile_parallel(DISPATCH_SRC);
    let mut vm_pool = Vm::new(
        compiled.clone(),
        vm_config(ExecBackend::Pool, DoallSchedule::Stealing),
    )
    .expect("vm");
    let pool = median_secs(|| {
        vm_pool.run().expect("run");
    });
    let mut vm_spawn = Vm::new(
        compiled,
        vm_config(ExecBackend::SpawnPerLoop, DoallSchedule::Stealing),
    )
    .expect("vm");
    let spawn = median_secs(|| {
        vm_spawn.run().expect("run");
    });
    benches.push(BenchValue {
        name: "dispatch_200_pool_ms",
        unit: "ms",
        value: pool * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_200_spawn_per_loop_ms",
        unit: "ms",
        value: spawn * 1e3,
    });
    benches.push(BenchValue {
        name: "dispatch_speedup_pool_vs_spawn",
        unit: "ratio",
        value: spawn / pool,
    });

    // Steal imbalance: modeled makespan (ideal-core finish time) of the
    // skewed workload, static / stealing.
    eprintln!("[3/4] steal imbalance (skewed DOALL, {NTHREADS} threads)...");
    let skew = compile_parallel(SKEW_SRC);
    let steal_span = skew_makespan(&skew, DoallSchedule::Stealing);
    let static_span = skew_makespan(&skew, DoallSchedule::Static);
    benches.push(BenchValue {
        name: "skew_makespan_stealing_minstr",
        unit: "Minstr",
        value: steal_span as f64 / 1e6,
    });
    benches.push(BenchValue {
        name: "skew_speedup_stealing_vs_static",
        unit: "ratio",
        value: static_span as f64 / steal_span.max(1) as f64,
    });

    // Figure 11 (simulated): harmonic-mean total speedup on 8 cores over
    // the full workload suite.
    eprintln!("[4/4] figure speedups (simulated, 8 cores)...");
    let rows = dse_bench::fig11_sim(&dse_workloads::all(), Scale::Profile);
    let hmean = dse_bench::harmonic_mean(rows.iter().map(|r| *r.total.last().unwrap()));
    benches.push(BenchValue {
        name: "fig11_sim_total_speedup_8c_hmean",
        unit: "ratio",
        value: hmean,
    });

    let doc = build_document(&benches);
    let text = doc.to_string();
    validate(&text).expect("generated document validates");
    std::fs::write(out, format!("{text}\n")).expect("write trajectory document");
    println!("wrote {out}:");
    for b in &benches {
        println!("  {:<40} {:>10.3} {}", b.name, b.value, b.unit);
    }
    ExitCode::SUCCESS
}
