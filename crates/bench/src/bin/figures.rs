//! Regenerates the paper's tables and figures on the workload models.
//!
//! Usage:
//!
//! ```text
//! figures [--scale profile|bench] [--repeats N] [--workload NAME]...
//!         [table4 table5 fig8 fig9 fig10 fig11 fig12 fig13 fig14 | all]
//! ```
//!
//! Run with `--release`; wall-clock experiments on a debug interpreter are
//! meaningless. Default scale is `bench`.
//!
//! Besides the printed tables, every requested artifact is also written as
//! machine-readable JSON to `results/figures.json` (keyed by artifact
//! name), so plots and regression checks don't have to scrape stdout.

use dse_bench::*;
use dse_core::OptLevel;
use dse_telemetry::Json;
use dse_workloads::{Scale, Workload};

struct Args {
    scale: Scale,
    repeats: u32,
    /// Use wall-clock timing for the speedup figures instead of the
    /// schedule simulator (needs >= 8 physical cores).
    wall: bool,
    workloads: Vec<Workload>,
    what: Vec<String>,
}

fn parse_args() -> Args {
    let mut scale = Scale::Bench;
    let mut repeats = 3;
    let mut names: Vec<String> = Vec::new();
    let mut what: Vec<String> = Vec::new();
    let mut wall = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("profile") => Scale::Profile,
                    Some("bench") => Scale::Bench,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--repeats" => {
                repeats = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--repeats needs a number");
                    std::process::exit(2);
                })
            }
            "--workload" => names.push(args.next().unwrap_or_else(|| {
                eprintln!("--workload needs a name");
                std::process::exit(2);
            })),
            "--wall" => wall = true,
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() || what.iter().any(|w| w == "all") {
        what = [
            "table4",
            "table5",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "ablation-chunk",
            "ablation-sync",
            "ablation-layout",
        ]
        .map(String::from)
        .to_vec();
    }
    let workloads = if names.is_empty() {
        dse_workloads::all()
    } else {
        names
            .iter()
            .map(|n| {
                dse_workloads::by_name(n).unwrap_or_else(|| {
                    eprintln!("unknown workload `{n}`");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    Args {
        scale,
        repeats,
        wall,
        workloads,
        what,
    }
}

fn main() {
    let args = parse_args();
    let mut artifacts: Vec<(String, Json)> = Vec::new();
    for what in &args.what {
        let json = match what.as_str() {
            "table4" => print_table4(&args),
            "table5" => print_table5(&args),
            "fig8" => print_fig8(&args),
            "fig9" => print_fig9(&args),
            "fig10" => print_fig10(&args),
            "fig11" => print_fig11(&args),
            "fig12" => print_fig12(&args),
            "fig13" => print_fig13(&args),
            "fig14" => print_fig14(&args),
            "ablation-chunk" => print_ablation_chunk(&args),
            "ablation-sync" => print_ablation_sync(&args),
            "ablation-layout" => print_ablation_layout(&args),
            other => {
                eprintln!("unknown artifact `{other}`");
                std::process::exit(2);
            }
        };
        artifacts.push((what.clone(), json));
        println!();
    }
    let doc = Json::obj(vec![
        (
            "scale",
            Json::Str(
                match args.scale {
                    Scale::Profile => "profile",
                    Scale::Bench => "bench",
                }
                .to_string(),
            ),
        ),
        ("wall", Json::Bool(args.wall)),
        ("artifacts", Json::Obj(artifacts)),
    ]);
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/figures.json", format!("{doc}\n")))
    {
        eprintln!("figures: could not write results/figures.json: {e}");
        std::process::exit(1);
    }
    eprintln!("[wrote results/figures.json]");
}

fn print_table4(args: &Args) -> Json {
    println!("== Table 4: benchmark characteristics ==");
    println!(
        "{:<10} {:<14} {:>9} {:>10} {:>6} {:>9} {:>8} {:>10}  function",
        "benchmark", "suite", "model-LOC", "paper-LOC", "level", "par", "%time", "paper%"
    );
    let rows = table4(&args.workloads);
    for r in &rows {
        println!(
            "{:<10} {:<14} {:>9} {:>10} {:>6} {:>9} {:>7.1}% {:>9.1}%  {}",
            r.name,
            r.suite,
            r.model_loc,
            r.paper_loc,
            r.level,
            r.parallelism,
            r.time_pct,
            r.paper_time_pct,
            r.function
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("suite", Json::Str(r.suite.into())),
                    ("model_loc", Json::Int(r.model_loc as i64)),
                    ("paper_loc", Json::Int(r.paper_loc as i64)),
                    ("function", Json::Str(r.function.into())),
                    ("level", Json::Int(r.level as i64)),
                    ("parallelism", Json::Str(r.parallelism.clone())),
                    ("time_pct", Json::Float(r.time_pct)),
                    ("paper_time_pct", Json::Float(r.paper_time_pct)),
                ])
            })
            .collect(),
    )
}

fn print_table5(args: &Args) -> Json {
    println!("== Table 5: dynamic data structures privatized ==");
    println!(
        "{:<10} {:>11} {:>7} {:>6}",
        "benchmark", "#privatized", "paper", "+scalars"
    );
    let rows = table5(&args.workloads);
    for r in &rows {
        println!(
            "{:<10} {:>11} {:>7} {:>6}",
            r.name, r.privatized, r.paper_privatized, r.scalars
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("privatized", Json::Int(r.privatized as i64)),
                    ("scalars", Json::Int(r.scalars as i64)),
                    ("paper_privatized", Json::Int(r.paper_privatized as i64)),
                ])
            })
            .collect(),
    )
}

fn print_fig8(args: &Args) -> Json {
    println!("== Figure 8: breakdown of dynamic memory accesses ==");
    println!(
        "{:<10} {:>16} {:>12} {:>16}",
        "benchmark", "free-of-carried", "expandable", "with-carried"
    );
    let rows = fig8(&args.workloads);
    for r in &rows {
        println!(
            "{:<10} {:>15.1}% {:>11.1}% {:>15.1}%",
            r.name,
            100.0 * r.free_of_carried,
            100.0 * r.expandable,
            100.0 * r.with_carried
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("free_of_carried", Json::Float(r.free_of_carried)),
                    ("expandable", Json::Float(r.expandable)),
                    ("with_carried", Json::Float(r.with_carried)),
                ])
            })
            .collect(),
    )
}

fn print_fig9(args: &Args) -> Json {
    let mut out = Vec::new();
    for (fig, opt) in [
        ("9a (no optimizations)", OptLevel::None),
        ("9b (optimized)", OptLevel::Full),
    ] {
        println!("== Figure {fig}: sequential slowdown of expanded code ==");
        println!(
            "{:<10} {:>13} {:>10}",
            "benchmark", "instructions", "wall-time"
        );
        let rows = fig9(&args.workloads, opt, args.scale);
        for r in &rows {
            println!(
                "{:<10} {:>12.3}x {:>9.3}x",
                r.name, r.slowdown_instructions, r.slowdown_time
            );
        }
        println!(
            "{:<10} {:>12.3}x {:>9.3}x   (harmonic mean; paper: {})",
            "h-mean",
            harmonic_mean(rows.iter().map(|r| r.slowdown_instructions)),
            harmonic_mean(rows.iter().map(|r| r.slowdown_time)),
            if matches!(opt, OptLevel::None) {
                "1.8x"
            } else {
                "<1.05x"
            },
        );
        println!();
        let key = if matches!(opt, OptLevel::None) {
            "none"
        } else {
            "full"
        };
        out.push((
            key.to_string(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            (
                                "slowdown_instructions",
                                Json::Float(r.slowdown_instructions),
                            ),
                            ("slowdown_time", Json::Float(r.slowdown_time)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(out)
}

fn print_fig10(args: &Args) -> Json {
    println!("== Figure 10: expansion vs runtime privatization (sequential overhead) ==");
    println!(
        "{:<10} {:>10} {:>13}",
        "benchmark", "expansion", "runtime-priv"
    );
    let rows = fig10(&args.workloads, args.scale);
    for r in &rows {
        println!(
            "{:<10} {:>9.3}x {:>12.3}x",
            r.name, r.expansion, r.runtime_priv
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("expansion", Json::Float(r.expansion)),
                    ("runtime_priv", Json::Float(r.runtime_priv)),
                ])
            })
            .collect(),
    )
}

fn speedups_json(rows: &[SpeedupRow]) -> Json {
    Json::obj(vec![
        (
            "core_counts",
            Json::Arr(CORE_COUNTS.iter().map(|&c| Json::Int(c as i64)).collect()),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            (
                                "loop_only",
                                Json::Arr(r.loop_only.iter().map(|&s| Json::Float(s)).collect()),
                            ),
                            (
                                "total",
                                Json::Arr(r.total.iter().map(|&s| Json::Float(s)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn print_speedups(rows: &[SpeedupRow], loop_label: &str, total_label: &str) {
    println!(
        "{:<10} {}",
        "benchmark",
        CORE_COUNTS
            .iter()
            .map(|n| format!("{n:>7}c"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("-- {loop_label} --");
    for r in rows {
        println!(
            "{:<10} {}",
            r.name,
            r.loop_only
                .iter()
                .map(|s| format!("{s:>7.2}x"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!("-- {total_label} --");
    for r in rows {
        println!(
            "{:<10} {}",
            r.name,
            r.total
                .iter()
                .map(|s| format!("{s:>7.2}x"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    let hms: Vec<String> = (0..CORE_COUNTS.len())
        .map(|i| format!("{:>7.2}x", harmonic_mean(rows.iter().map(|r| r.total[i]))))
        .collect();
    println!(
        "{:<10} {}   (total, harmonic mean)",
        "h-mean",
        hms.join(" ")
    );
}

fn print_fig11(args: &Args) -> Json {
    let rows = if args.wall {
        println!("== Figure 11: speedups (wall clock; needs >= 8 cores) ==");
        fig11(&args.workloads, args.scale, args.repeats)
    } else {
        println!("== Figure 11: speedups (schedule simulator) ==");
        fig11_sim(&args.workloads, args.scale)
    };
    print_speedups(&rows, "11a: loop speedup", "11b: total speedup");
    println!("(paper: harmonic mean total speedup 1.93x @4 cores, 2.24x @8 cores)");
    speedups_json(&rows)
}

fn print_fig12(args: &Args) -> Json {
    println!("== Figure 12: dynamic cost breakdown at 8 cores ==");
    println!(
        "{:<10} {:>7} {:>17} {:>10}",
        "benchmark", "work", "wait(do_wait/relax)", "sync-ops"
    );
    let rows = if args.wall {
        fig12(&args.workloads, args.scale)
    } else {
        fig12_sim(&args.workloads, args.scale)
    };
    for r in &rows {
        println!(
            "{:<10} {:>6.1}% {:>16.1}% {:>9.1}%",
            r.name,
            100.0 * r.work,
            100.0 * r.wait,
            100.0 * r.sync
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("work", Json::Float(r.work)),
                    ("wait", Json::Float(r.wait)),
                    ("sync", Json::Float(r.sync)),
                ])
            })
            .collect(),
    )
}

fn print_fig13(args: &Args) -> Json {
    println!("== Figure 13: loop speedup under runtime privatization ==");
    let rows = if args.wall {
        fig13(&args.workloads, args.scale, args.repeats)
    } else {
        fig13_sim(&args.workloads, args.scale)
    };
    println!(
        "{:<10} {}",
        "benchmark",
        CORE_COUNTS
            .iter()
            .map(|n| format!("{n:>7}c"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for r in &rows {
        println!(
            "{:<10} {}",
            r.name,
            r.total
                .iter()
                .map(|s| format!("{s:>7.2}x"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!("(paper: nearly no speedup for most benchmarks)");
    speedups_json(&rows)
}

fn print_fig14(args: &Args) -> Json {
    println!("== Figure 14: peak memory as a multiple of the original ==");
    println!(
        "{:<10} {:>24} {:>24}",
        "benchmark", "expansion (2/4/8c)", "runtime-priv (2/4/8c)"
    );
    let rows = fig14(&args.workloads, args.scale);
    for r in &rows {
        let e: Vec<String> = r.expansion.iter().map(|x| format!("{x:.2}")).collect();
        let p: Vec<String> = r.runtime_priv.iter().map(|x| format!("{x:.2}")).collect();
        println!("{:<10} {:>24} {:>24}", r.name, e.join("/"), p.join("/"));
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    (
                        "expansion",
                        Json::Arr(r.expansion.iter().map(|&x| Json::Float(x)).collect()),
                    ),
                    (
                        "runtime_priv",
                        Json::Arr(r.runtime_priv.iter().map(|&x| Json::Float(x)).collect()),
                    ),
                ])
            })
            .collect(),
    )
}

fn print_ablation_chunk(args: &Args) -> Json {
    println!("== Ablation: DOACROSS claim size (paper uses 1) ==");
    println!("simulated loop speedup at 8 cores");
    let rows = ablation_chunk(&args.workloads, args.scale);
    for r in &rows {
        let cells: Vec<String> = r
            .speedups
            .iter()
            .map(|(c, s)| format!("chunk{c}={s:.2}x"))
            .collect();
        println!("{:<10} {}", r.name, cells.join("  "));
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    (
                        "speedups",
                        Json::Arr(
                            r.speedups
                                .iter()
                                .map(|&(c, x)| {
                                    Json::obj(vec![
                                        ("chunk", Json::Int(c as i64)),
                                        ("speedup", Json::Float(x)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn print_ablation_layout(args: &Args) -> Json {
    println!("== Ablation: bonded vs interleaved layout (Section 3.1, Fig. 2) ==");
    println!("sequential instruction overhead vs the original program");
    let rows = ablation_layout(&args.workloads, args.scale);
    for r in &rows {
        match (&r.interleaved, &r.blocker) {
            (Some(i), _) => println!(
                "{:<10} bonded {:.3}x   interleaved {:.3}x",
                r.name, r.bonded, i
            ),
            (None, Some(b)) => {
                println!(
                    "{:<10} bonded {:.3}x   interleaved: IMPOSSIBLE",
                    r.name, r.bonded
                );
                println!("{:<10}   ({})", "", b);
            }
            (None, None) => unreachable!("either a number or a blocker"),
        }
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("bonded", Json::Float(r.bonded)),
                    (
                        "interleaved",
                        r.interleaved.map(Json::Float).unwrap_or(Json::Null),
                    ),
                    (
                        "blocker",
                        r.blocker.clone().map(Json::Str).unwrap_or(Json::Null),
                    ),
                ])
            })
            .collect(),
    )
}

fn print_ablation_sync(args: &Args) -> Json {
    println!("== Ablation: DOACROSS synchronization placement ==");
    println!("simulated 8-core loop speedup: computed window vs whole-body ordering");
    let rows = ablation_sync(&args.workloads, args.scale);
    for r in &rows {
        println!(
            "{:<10} window={:.2}x   whole-body={:.2}x",
            r.name, r.with_window, r.without_window
        );
    }
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.into())),
                    ("with_window", Json::Float(r.with_window)),
                    ("without_window", Json::Float(r.without_window)),
                ])
            })
            .collect(),
    )
}
