//! # dse-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's Section 4 over the
//! eight workload models:
//!
//! | artifact | runner | paper reference |
//! |---|---|---|
//! | Table 4 | [`table4`] | benchmark characteristics |
//! | Table 5 | [`table5`] | privatized structure counts |
//! | Figure 8 | [`fig8`] | dynamic-access breakdown |
//! | Figure 9a/9b | [`fig9`] | expansion overhead without/with opts |
//! | Figure 10 | [`fig10`] | expansion vs runtime privatization overhead |
//! | Figure 11a/11b | [`fig11`] | loop and total speedups vs cores |
//! | Figure 12 | [`fig12`] | instruction breakdown on 8 cores |
//! | Figure 13 | [`fig13`] | runtime-privatization speedup |
//! | Figure 14 | [`fig14`] | memory use multiple |
//!
//! Wall-clock numbers come from the VM running on real OS threads; run the
//! `figures` binary with `--release`. Absolute times are
//! interpreter-scale — EXPERIMENTS.md compares *shapes* against the paper.

pub mod harness;
pub mod sim;

use dse_core::{Analysis, OptLevel};
use dse_runtime::{Counters, Vm};
use dse_workloads::{Scale, Workload};
use std::time::{Duration, Instant};

/// Thread counts used by the speedup experiments (the paper's X axis).
pub const CORE_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// A VM configuration for *timing* runs: bench-scale inputs with a lean
/// memory arena, so the measured time is the program, not `Vm::new`
/// zeroing a large default arena.
pub fn timing_vm_config(w: &Workload, scale: Scale) -> dse_runtime::VmConfig {
    let mut cfg = w.vm_config(scale);
    cfg.mem_bytes = 16 << 20;
    cfg.stack_bytes = 256 << 10;
    cfg
}

/// Builds the analysis (profile + classification) for a workload.
///
/// # Panics
///
/// Panics when the pipeline fails on a bundled workload (a bug).
pub fn analyze(w: &Workload) -> Analysis {
    Analysis::from_source(w.source, w.vm_config(Scale::Profile))
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

fn timed_run(
    compiled: &dse_ir::bytecode::CompiledProgram,
    w: &Workload,
    scale: Scale,
    nthreads: u32,
) -> (Duration, dse_runtime::RunReport, Vec<i64>) {
    let mut cfg = w.vm_config(scale);
    cfg.nthreads = nthreads;
    let mut vm = Vm::new(compiled.clone(), cfg).expect("vm");
    let t0 = Instant::now();
    let report = vm.run().unwrap_or_else(|e| panic!("{} run: {e}", w.name));
    (t0.elapsed(), report, vm.outputs_int())
}

// ---------------------------------------------------------------------------
// Table 4 — benchmark characteristics
// ---------------------------------------------------------------------------

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    pub name: &'static str,
    pub suite: &'static str,
    /// LOC of our Cee model (the paper's column is the original C size,
    /// reported alongside).
    pub model_loc: usize,
    pub paper_loc: u32,
    pub function: &'static str,
    pub level: u32,
    /// Parallelism as classified by the pass (must match the paper).
    pub parallelism: String,
    /// Measured candidate-loop share of execution (instructions).
    pub time_pct: f64,
    pub paper_time_pct: f64,
}

/// Regenerates Table 4 for the given workloads.
pub fn table4(workloads: &[Workload]) -> Vec<Table4Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            // `in_loops` is counted by the profiler over the stack encoding
            // (profiling always pins the reference backend), so the
            // whole-program denominator must retire the same encoding no
            // matter what DSE_EXEC_BACKEND says — the register backend
            // retires far fewer instructions for the same program.
            let mut cfg = w.vm_config(Scale::Profile);
            cfg.nthreads = 1;
            cfg.backend = dse_runtime::BackendKind::Stack;
            let mut vm = Vm::new(analysis.serial.clone(), cfg).expect("vm");
            let report = vm.run().unwrap_or_else(|e| panic!("{} run: {e}", w.name));
            let in_loops: u64 = analysis.profile.loops.iter().map(|l| l.instructions).sum();
            let mode = analysis.classifications[0].mode;
            Table4Row {
                name: w.name,
                suite: w.paper.suite,
                model_loc: w.model_loc(),
                paper_loc: w.paper.loc,
                function: w.paper.function,
                level: w.paper.level,
                parallelism: mode.to_string(),
                time_pct: 100.0 * in_loops as f64 / report.counters.work as f64,
                paper_time_pct: w.paper.time_pct,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 5 — privatized structures
// ---------------------------------------------------------------------------

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    pub name: &'static str,
    /// Data structures privatized by our pass (alloc sites + globals +
    /// aggregate locals).
    pub privatized: usize,
    /// Expanded scalars (classic scalar expansion, reported separately).
    pub scalars: usize,
    pub paper_privatized: u32,
}

/// Regenerates Table 5.
pub fn table5(workloads: &[Workload]) -> Vec<Table5Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let t = analysis.transform(OptLevel::Full, 4).expect("transform");
            Table5Row {
                name: w.name,
                privatized: t.report.privatized_structures(),
                scalars: t.report.expanded_scalar_locals,
                paper_privatized: w.paper.privatized,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 — dynamic access breakdown
// ---------------------------------------------------------------------------

/// One bar of Figure 8 (fractions sum to 1).
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub name: &'static str,
    pub free_of_carried: f64,
    pub expandable: f64,
    pub with_carried: f64,
}

/// Regenerates Figure 8: the breakdown of each loop's dynamic accesses
/// into "free of loop-carried dep", "expandable" and "with loop-carried
/// dep" (summed over a program's candidate loops).
pub fn fig8(workloads: &[Workload]) -> Vec<Fig8Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let mut total = dse_core::AccessBreakdown::default();
            for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
                let b = cls.access_breakdown(ddg);
                total.free += b.free;
                total.expandable += b.expandable;
                total.carried += b.carried;
            }
            let (f, e, c) = total.fractions();
            Fig8Row {
                name: w.name,
                free_of_carried: f,
                expandable: e,
                with_carried: c,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 9 — expansion overhead (sequential)
// ---------------------------------------------------------------------------

/// One bar of Figure 9a or 9b.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub name: &'static str,
    /// Transformed-over-original instruction ratio (sequential run).
    pub slowdown_instructions: f64,
    /// Transformed-over-original wall-time ratio.
    pub slowdown_time: f64,
}

/// Regenerates Figure 9: sequential slowdown of the transformed program at
/// the given optimization level ([`OptLevel::None`] → Figure 9a,
/// [`OptLevel::Full`] → Figure 9b).
pub fn fig9(workloads: &[Workload], opt: OptLevel, scale: Scale) -> Vec<Fig9Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (tb, rb, ob) = timed_run(&analysis.serial, w, scale, 1);
            let t = analysis.transform(opt, 1).expect("transform");
            let (tt, rt, ot) = timed_run(&t.parallel, w, scale, 1);
            assert_eq!(ob, ot, "{}: transformed output differs", w.name);
            Fig9Row {
                name: w.name,
                slowdown_instructions: rt.counters.work as f64 / rb.counters.work as f64,
                slowdown_time: tt.as_secs_f64() / tb.as_secs_f64(),
            }
        })
        .collect()
}

/// Harmonic mean of a positive series (the paper's average of choice).
pub fn harmonic_mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut n, mut s) = (0usize, 0.0);
    for x in xs {
        n += 1;
        s += 1.0 / x;
    }
    n as f64 / s
}

// ---------------------------------------------------------------------------
// Figure 10 — expansion vs runtime privatization overhead
// ---------------------------------------------------------------------------

/// One pair of bars of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub name: &'static str,
    /// Sequential slowdown of the expanded program (instructions).
    pub expansion: f64,
    /// Sequential slowdown of the runtime-privatization program.
    pub runtime_priv: f64,
}

/// Regenerates Figure 10: static expansion vs dynamic privatization
/// overhead, both run sequentially.
pub fn fig10(workloads: &[Workload], scale: Scale) -> Vec<Fig10Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (_, rb, _) = timed_run(&analysis.serial, w, scale, 1);
            let t = analysis.transform(OptLevel::Full, 1).expect("transform");
            let (_, rt, _) = timed_run(&t.parallel, w, scale, 1);
            let b = analysis.baseline_parallel(1).expect("baseline");
            let (_, rp, _) = timed_run(&b.parallel, w, scale, 1);
            // The baseline's cost model: every monitored private access
            // (heap translations and statically privatized accesses alike,
            // per SpiceC's all-accesses monitoring) costs a runtime lookup
            // (≈ 20 native instructions), plus the bytes copied in/out.
            let base = rb.counters.work as f64;
            let priv_cost = rp.counters.work as f64
                + 20.0 * (rp.counters.localize_calls + rp.counters.private_direct) as f64
                + 0.25 * rp.counters.localize_copied_bytes as f64;
            Fig10Row {
                name: w.name,
                expansion: rt.counters.work as f64 / base,
                runtime_priv: priv_cost / base,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 — speedups
// ---------------------------------------------------------------------------

/// One workload's speedup series (indexed like [`CORE_COUNTS`]).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub name: &'static str,
    /// Whole-program speedup per core count.
    pub total: Vec<f64>,
    /// Candidate-loop speedup per core count (derived from the measured
    /// serial loop share).
    pub loop_only: Vec<f64>,
}

/// Per-loop iteration-cost traces: one cost vector per dynamic loop entry.
pub type LoopTraces = std::collections::HashMap<u32, Vec<Vec<dse_runtime::vm::IterCost>>>;
/// Scheduling mode per loop id.
pub type LoopModes = std::collections::HashMap<u32, dse_ir::loops::ParMode>;

/// Runs a program serially with iteration-cost recording, returning the
/// instruction total, per-loop traces, and per-loop modes.
fn record_traces(
    compiled: &dse_ir::bytecode::CompiledProgram,
    w: &Workload,
    scale: Scale,
) -> (u64, LoopTraces, LoopModes, Counters) {
    let mut cfg = w.vm_config(scale);
    cfg.nthreads = 1;
    cfg.record_iteration_costs = true;
    let mut vm = Vm::new(compiled.clone(), cfg).expect("vm");
    let report = vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let modes = compiled
        .loops
        .iter()
        .enumerate()
        .map(|(i, l)| (i as u32, l.mode.unwrap_or(dse_ir::loops::ParMode::DoAll)))
        .collect();
    (
        report.counters.work,
        vm.iteration_costs(),
        modes,
        report.counters,
    )
}

/// Regenerates Figure 11 through the multicore **schedule simulator** (see
/// [`sim`]): per-iteration costs are measured in the VM, then replayed
/// under the executor's DOALL/DOACROSS policies at each core count. This
/// is the default on hosts without 8 physical cores.
pub fn fig11_sim(workloads: &[Workload], scale: Scale) -> Vec<SpeedupRow> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (_, rb, _) = timed_run(&analysis.serial, w, scale, 1);
            let serial_ref = rb.counters.work as f64;
            let mut total = Vec::new();
            let mut loop_only = Vec::new();
            for &n in &CORE_COUNTS {
                let t = analysis.transform(OptLevel::Full, n).expect("transform");
                let (tot, traces, modes, _) = record_traces(&t.parallel, w, scale);
                let ps = sim::simulate_program(tot, &traces, &modes, n, false);
                total.push(serial_ref / ps.total_time);
                loop_only.push(ps.loop_serial / ps.loop_time.max(1e-9));
            }
            SpeedupRow {
                name: w.name,
                total,
                loop_only,
            }
        })
        .collect()
}

/// Regenerates Figure 13 through the schedule simulator, charging each
/// `Localize` call its modeled runtime cost.
pub fn fig13_sim(workloads: &[Workload], scale: Scale) -> Vec<SpeedupRow> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (_, rb, _) = timed_run(&analysis.serial, w, scale, 1);
            let serial_ref = rb.counters.work as f64;
            let mut total = Vec::new();
            let mut loop_only = Vec::new();
            for &n in &CORE_COUNTS {
                let b = analysis.baseline_parallel(n).expect("baseline");
                let (tot, traces, modes, c) = record_traces(&b.parallel, w, scale);
                // Charge out-of-loop localize cost too (rare).
                let _ = c;
                let ps = sim::simulate_program(tot, &traces, &modes, n, true);
                total.push(serial_ref / ps.total_time);
                loop_only.push(ps.loop_serial / ps.loop_time.max(1e-9));
            }
            SpeedupRow {
                name: w.name,
                total,
                loop_only,
            }
        })
        .collect()
}

/// Regenerates Figure 12 from the schedule simulation at 8 cores: how the
/// workers' cycles split between useful work, waiting (the paper's
/// `do_wait`/`cpu_relax`), and synchronization calls.
pub fn fig12_sim(workloads: &[Workload], scale: Scale) -> Vec<Fig12Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let t = analysis.transform(OptLevel::Full, 8).expect("transform");
            let (tot, traces, modes, counters) = record_traces(&t.parallel, w, scale);
            let ps = sim::simulate_program(tot, &traces, &modes, 8, false);
            let outside = (tot as f64
                - traces
                    .values()
                    .flatten()
                    .flatten()
                    .map(|c| (c.pre + c.window + c.post) as f64)
                    .sum::<f64>())
            .max(0.0);
            let sync = counters.sync_ops as f64;
            let work = outside + ps.busy - sync;
            let total = work + ps.idle + sync;
            Fig12Row {
                name: w.name,
                work: work / total,
                wait: ps.idle / total,
                sync: sync / total,
            }
        })
        .collect()
}

/// Regenerates Figure 11 by wall-clock timing (requires a host with as
/// many physical cores as the largest core count; see [`fig11_sim`]).
pub fn fig11(workloads: &[Workload], scale: Scale, repeats: u32) -> Vec<SpeedupRow> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let serial = best_time(&analysis.serial, w, scale, 1, repeats);
            // Measured loop share of the serial program (instructions).
            let (_, rb, _) = timed_run(&analysis.serial, w, Scale::Profile, 1);
            let in_loops: u64 = analysis.profile.loops.iter().map(|l| l.instructions).sum();
            let loop_frac = (in_loops as f64 / rb.counters.work as f64).clamp(0.0, 1.0);
            let mut total = Vec::new();
            let mut loop_only = Vec::new();
            for &n in &CORE_COUNTS {
                let t = analysis.transform(OptLevel::Full, n).expect("transform");
                let par = best_time(&t.parallel, w, scale, n, repeats);
                let sp_total = serial.as_secs_f64() / par.as_secs_f64();
                total.push(sp_total);
                // T_par = T_serial*(1-frac) + T_loop_serial/sp_loop
                let serial_rest = serial.as_secs_f64() * (1.0 - loop_frac);
                let loop_par = (par.as_secs_f64() - serial_rest).max(1e-9);
                loop_only.push(serial.as_secs_f64() * loop_frac / loop_par);
            }
            SpeedupRow {
                name: w.name,
                total,
                loop_only,
            }
        })
        .collect()
}

fn best_time(
    compiled: &dse_ir::bytecode::CompiledProgram,
    w: &Workload,
    scale: Scale,
    nthreads: u32,
    repeats: u32,
) -> Duration {
    (0..repeats.max(1))
        .map(|_| timed_run(compiled, w, scale, nthreads).0)
        .min()
        .expect("at least one repeat")
}

// ---------------------------------------------------------------------------
// Figure 12 — instruction breakdown at 8 cores
// ---------------------------------------------------------------------------

/// One bar of Figure 12 (fractions of total dynamic cost).
#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub name: &'static str,
    /// Useful instructions.
    pub work: f64,
    /// Spin iterations waiting on cross-iteration ordering (the paper's
    /// `do_wait` / `cpu_relax` share).
    pub wait: f64,
    /// Post/wait synchronization operations.
    pub sync: f64,
}

/// Regenerates Figure 12: where the cycles go on 8 cores.
pub fn fig12(workloads: &[Workload], scale: Scale) -> Vec<Fig12Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let t = analysis.transform(OptLevel::Full, 8).expect("transform");
            let (_, report, _) = timed_run(&t.parallel, w, scale, 8);
            let c: Counters = report.counters;
            let total = (c.work + c.wait_spins + c.sync_ops) as f64;
            Fig12Row {
                name: w.name,
                work: c.work as f64 / total,
                wait: c.wait_spins as f64 / total,
                sync: c.sync_ops as f64 / total,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 13 — runtime-privatization speedup
// ---------------------------------------------------------------------------

/// Regenerates Figure 13: loop/total speedup when the runtime
/// privatization baseline is used instead of expansion. The VM charges
/// each `Localize` call its abstract runtime cost (see [`fig10`]) by
/// padding the wall-time with the modeled overhead ratio.
pub fn fig13(workloads: &[Workload], scale: Scale, repeats: u32) -> Vec<SpeedupRow> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let serial = best_time(&analysis.serial, w, scale, 1, repeats);
            let mut total = Vec::new();
            for &n in &CORE_COUNTS {
                let b = analysis.baseline_parallel(n).expect("baseline");
                let mut cfg = w.vm_config(scale);
                cfg.nthreads = n;
                let mut vm = Vm::new(b.parallel.clone(), cfg).expect("vm");
                let t0 = Instant::now();
                let report = vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let elapsed = t0.elapsed().as_secs_f64();
                // Scale elapsed time by the modeled per-call runtime cost
                // that the interpreter's Localize undercharges.
                let c = report.counters;
                let work = c.work.max(1) as f64;
                let factor =
                    (work + 20.0 * c.localize_calls as f64 + 0.25 * c.localize_copied_bytes as f64)
                        / work;
                total.push(serial.as_secs_f64() / (elapsed * factor));
            }
            SpeedupRow {
                name: w.name,
                loop_only: total.clone(),
                total,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 14 — memory use
// ---------------------------------------------------------------------------

/// One group of Figure 14 bars.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    pub name: &'static str,
    /// Peak heap multiple of the expanded program at 2/4/8 threads.
    pub expansion: Vec<f64>,
    /// Peak heap multiple of the runtime-privatization baseline.
    pub runtime_priv: Vec<f64>,
}

/// Regenerates Figure 14: peak memory as a multiple of the original
/// program's, for 2/4/8 threads.
pub fn fig14(workloads: &[Workload], scale: Scale) -> Vec<Fig14Row> {
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (_, rb, _) = timed_run(&analysis.serial, w, scale, 1);
            let base = rb.peak_heap_bytes.max(1) as f64;
            let mut expansion = Vec::new();
            let mut runtime_priv = Vec::new();
            for n in [2u32, 4, 8] {
                let t = analysis.transform(OptLevel::Full, n).expect("transform");
                let (_, rt, _) = timed_run(&t.parallel, w, scale, n);
                expansion.push(rt.peak_heap_bytes as f64 / base);
                let b = analysis.baseline_parallel(n).expect("baseline");
                let (_, rp, _) = timed_run(&b.parallel, w, scale, n);
                runtime_priv.push(rp.peak_heap_bytes as f64 / base);
            }
            Fig14Row {
                name: w.name,
                expansion,
                runtime_priv,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One row of the DOACROSS chunk-size ablation: simulated loop speedup at
/// 8 cores for each chunk size.
#[derive(Debug, Clone)]
pub struct ChunkAblationRow {
    pub name: &'static str,
    /// (chunk size, loop speedup at 8 cores).
    pub speedups: Vec<(usize, f64)>,
}

/// Sweeps the DOACROSS claim size (the paper fixes it at 1, Section 4.3)
/// for the DOACROSS workloads.
pub fn ablation_chunk(workloads: &[Workload], scale: Scale) -> Vec<ChunkAblationRow> {
    workloads
        .iter()
        .filter(|w| w.paper.parallelism == dse_ir::loops::ParMode::DoAcross)
        .map(|w| {
            let analysis = analyze(w);
            let t = analysis.transform(OptLevel::Full, 8).expect("transform");
            let (_, traces, modes, _) = record_traces(&t.parallel, w, scale);
            let mut speedups = Vec::new();
            for chunk in [1usize, 2, 4, 8, 16] {
                let mut serial = 0.0;
                let mut time = 0.0;
                for (loop_id, entries) in &traces {
                    let mode = modes[loop_id];
                    for entry in entries {
                        let iters: Vec<sim::SimIter> =
                            entry.iter().map(|c| sim::to_sim_iter(c, false)).collect();
                        serial += iters.iter().map(sim::SimIter::total).sum::<f64>();
                        time += sim::simulate_entry_chunked(mode, &iters, 8, chunk).time;
                    }
                }
                speedups.push((chunk, serial / time.max(1e-9)));
            }
            ChunkAblationRow {
                name: w.name,
                speedups,
            }
        })
        .collect()
}

/// One row of the sync-placement ablation.
#[derive(Debug, Clone)]
pub struct SyncAblationRow {
    pub name: &'static str,
    /// Simulated 8-core loop speedup with the computed Wait/Post window.
    pub with_window: f64,
    /// Simulated 8-core loop speedup with no window (the executor's
    /// fallback: every iteration posts only when it finishes, i.e. the
    /// whole body is the ordered section).
    pub without_window: f64,
}

/// Quantifies the DOACROSS synchronization *placement* (Section 4.3: "we
/// also place necessary inter-thread synchronization"): the computed
/// window around the shared carried accesses vs the trivial placement
/// that orders whole iterations.
pub fn ablation_sync(workloads: &[Workload], scale: Scale) -> Vec<SyncAblationRow> {
    workloads
        .iter()
        .filter(|w| w.paper.parallelism == dse_ir::loops::ParMode::DoAcross)
        .map(|w| {
            let analysis = analyze(w);
            let t = analysis.transform(OptLevel::Full, 8).expect("transform");
            let (_, traces, modes, _) = record_traces(&t.parallel, w, scale);
            let speedup = |widen: bool| {
                let mut serial = 0.0;
                let mut time = 0.0;
                for (loop_id, entries) in &traces {
                    let mode = modes[loop_id];
                    for entry in entries {
                        let iters: Vec<sim::SimIter> = entry
                            .iter()
                            .map(|c| {
                                let mut it = sim::to_sim_iter(c, false);
                                if widen {
                                    // No window: the whole iteration is
                                    // ordered (auto-post at iteration end).
                                    it.window += it.pre + it.post;
                                    it.pre = 0.0;
                                    it.post = 0.0;
                                }
                                it
                            })
                            .collect();
                        serial += iters.iter().map(sim::SimIter::total).sum::<f64>();
                        time += sim::simulate_entry(mode, &iters, 8).time;
                    }
                }
                serial / time.max(1e-9)
            };
            SyncAblationRow {
                name: w.name,
                with_window: speedup(false),
                without_window: speedup(true),
            }
        })
        .collect()
}

/// One row of the bonded-vs-interleaved layout ablation.
#[derive(Debug, Clone)]
pub struct LayoutAblationRow {
    pub name: &'static str,
    /// Sequential instruction overhead of bonded expansion (vs original).
    pub bonded: f64,
    /// Sequential overhead of interleaved expansion, when it is possible.
    pub interleaved: Option<f64>,
    /// Why interleaving is impossible, when it is.
    pub blocker: Option<String>,
}

/// Runs the Section 3.1 layout comparison: both layouts where interleaving
/// is structurally possible, and the paper's bonded-only argument (untyped
/// heap blocks, recasts, interior pointers) where it is not.
pub fn ablation_layout(workloads: &[Workload], scale: Scale) -> Vec<LayoutAblationRow> {
    use dse_core::LayoutMode;
    workloads
        .iter()
        .map(|w| {
            let analysis = analyze(w);
            let (_, rb, _) = timed_run(&analysis.serial, w, scale, 1);
            let base = rb.counters.work as f64;
            let overhead = |t: &dse_core::Transformed| {
                let mut cfg = w.vm_config(scale);
                cfg.nthreads = 1;
                let mut vm = Vm::new(t.parallel.clone(), cfg).expect("vm");
                vm.run().expect("run").counters.work as f64 / base
            };
            let bonded = overhead(
                &analysis
                    .transform_with_layout(OptLevel::Full, 1, LayoutMode::Bonded)
                    .expect("bonded transform"),
            );
            let (interleaved, blocker) =
                match analysis.transform_with_layout(OptLevel::Full, 1, LayoutMode::Interleaved) {
                    Ok(t) => (Some(overhead(&t)), None),
                    Err(e) => (None, Some(e.to_string())),
                };
            LayoutAblationRow {
                name: w.name,
                bonded,
                interleaved,
                blocker,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workloads::by_name;

    fn small() -> Vec<Workload> {
        vec![by_name("md5").unwrap(), by_name("hmmer").unwrap()]
    }

    #[test]
    fn table4_rows_are_complete() {
        let rows = table4(&small());
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.time_pct > 0.0 && r.time_pct <= 100.0);
            assert!(!r.parallelism.is_empty());
            assert!(r.model_loc > 20);
        }
    }

    #[test]
    fn table5_counts_positive() {
        for r in table5(&small()) {
            assert!(r.privatized >= 1, "{}", r.name);
        }
    }

    #[test]
    fn fig8_fractions_sum_to_one() {
        for r in fig8(&small()) {
            let s = r.free_of_carried + r.expandable + r.with_carried;
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", r.name);
            assert!(r.expandable > 0.0, "{}: nothing expandable", r.name);
        }
    }

    #[test]
    fn fig9_full_cheaper_than_none() {
        let ws = small();
        let none = fig9(&ws, OptLevel::None, Scale::Profile);
        let full = fig9(&ws, OptLevel::Full, Scale::Profile);
        for (n, f) in none.iter().zip(&full) {
            assert!(
                f.slowdown_instructions < n.slowdown_instructions,
                "{}",
                n.name
            );
        }
    }

    #[test]
    fn fig10_runtime_priv_costlier_for_hot_privatization() {
        // hmmer localizes its DP matrix on every access: runtime
        // privatization must cost more than expansion. (md5, whose scratch
        // is a global and therefore statically privatized even in the
        // baseline, is one of the paper's "cheap for runtime
        // privatization" cases.)
        let ws = vec![by_name("hmmer").unwrap()];
        let rows = fig10(&ws, Scale::Profile);
        assert!(
            rows[0].runtime_priv > rows[0].expansion,
            "priv={} exp={}",
            rows[0].runtime_priv,
            rows[0].expansion
        );
    }

    #[test]
    fn fig12_fractions_valid() {
        for r in fig12(&small(), Scale::Profile) {
            assert!(r.work > 0.0 && r.work <= 1.0);
            assert!((r.work + r.wait + r.sync - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fig14_expansion_memory_grows() {
        let ws = vec![by_name("md5").unwrap()];
        let rows = fig14(&ws, Scale::Profile);
        // More threads, more copies.
        assert!(rows[0].expansion[2] >= rows[0].expansion[0]);
    }

    #[test]
    fn ablation_sync_window_never_worse() {
        let ws = vec![by_name("hmmer").unwrap()];
        let rows = ablation_sync(&ws, Scale::Profile);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].with_window + 1e-9 >= rows[0].without_window);
        assert!(rows[0].without_window > 0.0);
    }

    #[test]
    fn harmonic_mean_matches_definition() {
        let hm = harmonic_mean([1.0, 2.0, 4.0]);
        assert!((hm - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
    }
}
