//! DSE010/DSE011 — static verification of the stack bytecode.
//!
//! The register translator ([`dse_ir::regcode`]) emits under the
//! *constant-depth discipline*: every reachable pc has one statically known
//! operand-stack depth and type vector, jumps land inside the code, and
//! direct frame accesses stay inside the owning function's declared frame.
//! This pass proves those assumptions independently, so a violation is a
//! lint finding (`dsec check --backend`) instead of a translation panic or
//! a silent miscompile:
//!
//! * **DSE011 (structural)** — jump targets, call indices, and loop ids are
//!   range-checked before any dataflow runs, so the flow itself cannot walk
//!   out of bounds.
//! * **DSE010 (discipline)** — the constant-depth/type dataflow of
//!   [`dse_ir::analyze_stack`] is re-run; any join mismatch, underflow, or
//!   ill-typed operand it reports becomes a finding.
//! * **DSE011 (frame bounds)** — every direct frame access observed by the
//!   flow (`offset`, widest width) must lie inside `frame_size` of the
//!   function owning the region.

use dse_ir::analyze_stack;
use dse_ir::bytecode::{CompiledProgram, Instr};

use crate::diag::{Code, Diagnostic, Report};

/// Runs the structural pre-pass and, when it is clean, the depth dataflow
/// and the frame-bounds check. Returns `true` when no error was added (the
/// register checks downstream may rely on the flow converging).
pub fn check(prog: &CompiledProgram, report: &mut Report) -> bool {
    let before = report.count(crate::diag::Severity::Error);
    structural(prog, report);
    if report.count(crate::diag::Severity::Error) > before {
        // The dataflow assumes in-bounds control flow; do not run it over
        // code the structural pass already rejected.
        return false;
    }
    match analyze_stack(prog) {
        Err(e) => {
            report.push(Diagnostic::new(
                Code::StackDiscipline,
                format!("stack pc {}: {}", e.pc, e.msg),
            ));
            return false;
        }
        Ok(flow) => {
            let mut bad: Vec<((u32, u32), u8)> = Vec::new();
            for (&(owner, off), shape) in &flow.accesses {
                let Some(f) = flow.owner_func(prog, owner) else {
                    continue;
                };
                let end = off as u64 + shape.max_width as u64;
                if end > f.frame_size as u64 {
                    bad.push(((owner, off), shape.max_width));
                }
            }
            bad.sort_unstable();
            for ((owner, off), width) in bad {
                let f = flow.owner_func(prog, owner).expect("checked above");
                report.push(Diagnostic::new(
                    Code::StackBounds,
                    format!(
                        "direct frame access at offset {off} (width {width}) in {} \
                         exceeds the declared frame of {} bytes",
                        flow.owner_name(prog, owner),
                        f.frame_size
                    ),
                ));
            }
        }
    }
    report.count(crate::diag::Severity::Error) == before
}

/// Range-checks every positional reference in the instruction stream and
/// the function/loop tables.
fn structural(prog: &CompiledProgram, report: &mut Report) {
    let n = prog.code.len();
    for (fi, f) in prog.funcs.iter().enumerate() {
        if f.entry as usize >= n {
            report.push(Diagnostic::new(
                Code::StackBounds,
                format!(
                    "function `{}` (index {fi}) enters at pc {} past the end of code ({n})",
                    f.name, f.entry
                ),
            ));
        }
    }
    for (li, l) in prog.loops.iter().enumerate() {
        if l.mode.is_some() && l.body_entry as usize >= n {
            report.push(Diagnostic::new(
                Code::StackBounds,
                format!(
                    "loop `{}` (index {li}) body enters at pc {} past the end of code ({n})",
                    l.label, l.body_entry
                ),
            ));
        }
        if l.func as usize >= prog.funcs.len() {
            report.push(Diagnostic::new(
                Code::StackBounds,
                format!(
                    "loop `{}` (index {li}) names function {} of {}",
                    l.label,
                    l.func,
                    prog.funcs.len()
                ),
            ));
        }
    }
    for (pc, ins) in prog.code.iter().enumerate() {
        match *ins {
            Instr::Jump(t) | Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) if t as usize >= n => {
                report.push(Diagnostic::new(
                    Code::StackBounds,
                    format!("stack pc {pc}: jump to pc {t} past the end of code ({n})"),
                ));
            }
            Instr::Call(fi) if fi as usize >= prog.funcs.len() => {
                report.push(Diagnostic::new(
                    Code::StackBounds,
                    format!(
                        "stack pc {pc}: call to function {fi} of {}",
                        prog.funcs.len()
                    ),
                ));
            }
            Instr::ParLoop(id) if prog.loops.get(id as usize).is_none_or(|l| l.mode.is_none()) => {
                report.push(Diagnostic::new(
                    Code::StackBounds,
                    format!("stack pc {pc}: ParLoop names loop {id} with no parallel body"),
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_ir::bytecode::{FuncInfo, RetKind};

    fn prog(frame_size: u32, code: Vec<Instr>) -> CompiledProgram {
        CompiledProgram {
            code,
            funcs: vec![FuncInfo {
                name: "main".into(),
                entry: 0,
                frame_size,
                params: vec![],
                ret: RetKind::Scalar,
                ret_float: false,
            }],
            ..Default::default()
        }
    }

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let p = prog(0, vec![Instr::PushI(1), Instr::Ret]);
        let mut r = Report::default();
        assert!(check(&p, &mut r));
        assert!(r.diagnostics.is_empty(), "{:?}", codes(&r));
    }

    #[test]
    fn depth_mismatch_is_dse010() {
        let p = prog(
            0,
            vec![
                Instr::PushI(1),
                Instr::JumpIfZ(4),
                Instr::PushI(7),
                Instr::Jump(4),
                Instr::Halt,
            ],
        );
        let mut r = Report::default();
        assert!(!check(&p, &mut r));
        assert_eq!(codes(&r), vec![Code::StackDiscipline]);
    }

    #[test]
    fn out_of_bounds_jump_is_dse011_and_skips_flow() {
        let p = prog(0, vec![Instr::Jump(99)]);
        let mut r = Report::default();
        assert!(!check(&p, &mut r));
        assert_eq!(codes(&r), vec![Code::StackBounds]);
    }

    #[test]
    fn frame_access_past_declared_frame_is_dse011() {
        let p = prog(
            4,
            vec![
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8, // reads bytes 0..8 of a 4-byte frame
                    is_float: false,
                    site: 1,
                },
                Instr::Ret,
            ],
        );
        let mut r = Report::default();
        assert!(!check(&p, &mut r));
        assert_eq!(codes(&r), vec![Code::StackBounds]);
    }

    #[test]
    fn missing_callee_is_dse011() {
        let p = prog(0, vec![Instr::Call(3), Instr::Halt]);
        let mut r = Report::default();
        assert!(!check(&p, &mut r));
        assert!(codes(&r).contains(&Code::StackBounds));
    }
}
