//! DSE012/DSE013 — static verification of the register bytecode.
//!
//! Two properties of a [`dse_ir::RegProgram`] are proven here, matching
//! what the register VM silently assumes:
//!
//! * **DSE012 (window bounds)** — every register an instruction reads or
//!   writes lies below the declared window size (`frame_regs`), and every
//!   control transfer (jump, fused branch, call target, entry-map entry)
//!   lands inside the register code.
//! * **DSE013 (def-before-use)** — a forward *must-defined* dataflow over
//!   the register CFG, seeded empty at every entry (function entries and
//!   outlined parallel-body entries: the calling convention passes
//!   arguments through frame memory, never through live-in registers),
//!   proves no instruction reads a register that some path leaves
//!   undefined. Calls clobber every register at or above their window base
//!   (the callee window overlaps), parallel regions clobber at or above
//!   the body window base, and builtins — which run inline — define only
//!   their result register. On top of the dataflow, the *spill pairing*
//!   structure is checked: each call site inside a region with promoted
//!   scalars must be immediately preceded by the region's full spill
//!   sequence and followed by its full reload sequence, and each function
//!   prologue must load every promoted slot, exactly as
//!   [`dse_ir::PromotionPlan::spills`] declares.

use dse_ir::bytecode::{CompiledProgram, RetKind};
use dse_ir::sites::NO_SITE;
use dse_ir::{builtin_sig, for_each_dst, for_each_src, RInstr, RegProgram, StackFlow, NO_OWNER};

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Runs the window-bounds pass and, when it is clean, the def-before-use
/// dataflow plus the spill-pairing structure check. Returns `true` when no
/// error was added.
pub fn check(
    prog: &CompiledProgram,
    rp: &RegProgram,
    flow: &StackFlow,
    report: &mut Report,
) -> bool {
    let before = report.count(Severity::Error);
    bounds(prog, rp, report);
    if report.count(Severity::Error) > before {
        // The dataflow dereferences call targets and function indices; do
        // not run it over code the bounds pass already rejected.
        return false;
    }
    def_before_use(prog, rp, report);
    spill_pairing(prog, rp, flow, report);
    report.count(Severity::Error) == before
}

fn bounds(prog: &CompiledProgram, rp: &RegProgram, report: &mut Report) {
    let n = rp.code.len();
    let regs = rp.frame_regs;
    for (pc, ins) in rp.code.iter().enumerate() {
        let origin = rp.origin_pc(pc);
        let mut worst: Option<u16> = None;
        for_each_dst(ins, &mut |r| {
            if r as u32 >= regs {
                worst = Some(worst.map_or(r, |w| w.max(r)));
            }
        });
        if let RInstr::Call { fi, .. } = *ins {
            if fi as usize >= prog.funcs.len() {
                report.push(Diagnostic::new(
                    Code::RegWindowBounds,
                    format!(
                        "reg pc {pc} (stack pc {origin}): call to function {fi} of {}",
                        prog.funcs.len()
                    ),
                ));
                continue; // for_each_src would index the missing function
            }
        }
        for_each_src(ins, prog, &mut |r| {
            if r as u32 >= regs {
                worst = Some(worst.map_or(r, |w| w.max(r)));
            }
        });
        if let Some(r) = worst {
            report.push(Diagnostic::new(
                Code::RegWindowBounds,
                format!(
                    "reg pc {pc} (stack pc {origin}): register r{r} outside the \
                     declared window of {regs}"
                ),
            ));
        }
        if let Some(t) = branch_target(ins) {
            if t as usize >= n {
                report.push(Diagnostic::new(
                    Code::RegWindowBounds,
                    format!("reg pc {pc} (stack pc {origin}): jump to reg pc {t} of {n}"),
                ));
            }
        }
    }
    for (&stack_pc, &t) in &rp.entry_map {
        if t as usize >= n {
            report.push(Diagnostic::new(
                Code::RegWindowBounds,
                format!("entry for stack pc {stack_pc} maps to reg pc {t} of {n}"),
            ));
        }
    }
}

fn branch_target(ins: &RInstr) -> Option<u32> {
    match *ins {
        RInstr::Jump { t }
        | RInstr::JumpIfZ { t, .. }
        | RInstr::JumpIfNZ { t, .. }
        | RInstr::JumpICmp { t, .. }
        | RInstr::JumpICmpImm { t, .. }
        | RInstr::JumpFCmp { t, .. }
        | RInstr::Call { target: t, .. } => Some(t),
        _ => None,
    }
}

/// Dense bitset over the register window.
#[derive(Clone, PartialEq)]
struct Defined(Vec<u64>);

impl Defined {
    fn empty(regs: u32) -> Defined {
        Defined(vec![0; (regs as usize).div_ceil(64)])
    }
    fn has(&self, r: u16) -> bool {
        self.0[r as usize / 64] >> (r as usize % 64) & 1 != 0
    }
    fn set(&mut self, r: u16) {
        self.0[r as usize / 64] |= 1 << (r as usize % 64);
    }
    fn clear_from(&mut self, base: u16) {
        for r in base as usize..self.0.len() * 64 {
            self.0[r / 64] &= !(1u64 << (r % 64));
        }
    }
    /// Intersects, returning `true` when anything changed.
    fn meet(&mut self, other: &Defined) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

fn successors(ins: &RInstr, pc: usize, out: &mut Vec<usize>) {
    out.clear();
    match *ins {
        RInstr::Jump { t } => out.push(t as usize),
        RInstr::JumpIfZ { t, .. }
        | RInstr::JumpIfNZ { t, .. }
        | RInstr::JumpICmp { t, .. }
        | RInstr::JumpICmpImm { t, .. }
        | RInstr::JumpFCmp { t, .. } => {
            out.push(t as usize);
            out.push(pc + 1);
        }
        RInstr::Ret { .. } | RInstr::Halt { .. } | RInstr::Unreachable => {}
        // A call transfers to the callee entry, but the *window's* dataflow
        // resumes at the return point; the callee is its own seeded entry.
        _ => out.push(pc + 1),
    }
}

/// Applies an instruction's define/clobber behavior to a must-defined set.
fn transfer(ins: &RInstr, prog: &CompiledProgram, set: &mut Defined) {
    match *ins {
        RInstr::Call { fi, abase, .. } => {
            set.clear_from(abase);
            if prog.func(fi).ret == RetKind::Scalar {
                set.set(abase);
            }
        }
        RInstr::CallBuiltin { b, abase, .. } => {
            if builtin_sig(b).1.is_some() {
                set.set(abase);
            }
        }
        RInstr::ParLoop { lo, .. } => set.clear_from(lo),
        _ => for_each_dst(ins, &mut |r| set.set(r)),
    }
}

fn def_before_use(prog: &CompiledProgram, rp: &RegProgram, report: &mut Report) {
    let n = rp.code.len();
    let mut state: Vec<Option<Defined>> = vec![None; n];
    let mut work: Vec<usize> = Vec::new();
    for &e in rp.entry_map.values() {
        // Joins intersect, so seeding an entry twice stays empty.
        if state[e as usize].is_none() {
            state[e as usize] = Some(Defined::empty(rp.frame_regs));
            work.push(e as usize);
        }
    }
    let mut succ: Vec<usize> = Vec::new();
    while let Some(pc) = work.pop() {
        let mut set = state[pc].clone().expect("on worklist implies visited");
        transfer(&rp.code[pc], prog, &mut set);
        successors(&rp.code[pc], pc, &mut succ);
        for &s in &succ {
            if s >= n {
                continue; // bounds pass already reported it
            }
            match &mut state[s] {
                slot @ None => {
                    *slot = Some(set.clone());
                    work.push(s);
                }
                Some(existing) => {
                    if existing.meet(&set) {
                        work.push(s);
                    }
                }
            }
        }
    }
    for (pc, ins) in rp.code.iter().enumerate() {
        let Some(set) = &state[pc] else { continue };
        let mut undef: Vec<u16> = Vec::new();
        for_each_src(ins, prog, &mut |r| {
            if !set.has(r) && !undef.contains(&r) {
                undef.push(r);
            }
        });
        for r in undef {
            report.push(Diagnostic::new(
                Code::RegDefUse,
                format!(
                    "reg pc {pc} (stack pc {}): r{r} is read but not defined on \
                     every path from the region entry",
                    rp.origin_pc(pc)
                ),
            ));
        }
    }
}

/// Checks the spill/reload sequences around calls and the prologue loads
/// at function entries against the promotion plan's declared spill lists.
fn spill_pairing(prog: &CompiledProgram, rp: &RegProgram, flow: &StackFlow, report: &mut Report) {
    let spill_at = |pc: usize, k: usize| -> Option<&RInstr> { rp.code.get(pc.checked_sub(k)?) };
    for (pc, ins) in rp.code.iter().enumerate() {
        let RInstr::Call { .. } = ins else { continue };
        let owner = flow
            .owner
            .get(rp.origin_pc(pc) as usize)
            .copied()
            .unwrap_or(NO_OWNER);
        let Some(spills) = rp.promo.spills.get(owner as usize) else {
            continue;
        };
        let m = spills.len();
        for (k, &(sreg, off, width, is_float)) in spills.iter().enumerate() {
            let stored = matches!(
                spill_at(pc, m - k),
                Some(&RInstr::StFrame {
                    off: o,
                    width: w,
                    is_float: f,
                    site: NO_SITE,
                    ..
                }) if o == off && w == width && f == is_float
            );
            if !stored {
                report.push(Diagnostic::new(
                    Code::RegDefUse,
                    format!(
                        "call at reg pc {pc} (stack pc {}) is missing the spill of \
                         promoted slot r{sreg} (frame offset {off}) declared by the \
                         promotion plan",
                        rp.origin_pc(pc)
                    ),
                ));
            }
            let reloaded = matches!(
                rp.code.get(pc + 1 + k),
                Some(&RInstr::LdFrame {
                    d,
                    off: o,
                    width: w,
                    is_float: f,
                    site: NO_SITE,
                }) if d == sreg && o == off && w == width && f == is_float
            );
            if !reloaded {
                report.push(Diagnostic::new(
                    Code::RegDefUse,
                    format!(
                        "call at reg pc {pc} (stack pc {}) is missing the reload of \
                         promoted slot r{sreg} (frame offset {off}) declared by the \
                         promotion plan",
                        rp.origin_pc(pc)
                    ),
                ));
            }
        }
    }
    for (fi, f) in prog.funcs.iter().enumerate() {
        let Some(spills) = rp.promo.spills.get(fi) else {
            continue;
        };
        let Some(&entry) = rp.entry_map.get(&f.entry) else {
            continue;
        };
        for (k, &(sreg, off, width, is_float)) in spills.iter().enumerate() {
            let loaded = matches!(
                rp.code.get(entry as usize + k),
                Some(&RInstr::LdFrame {
                    d,
                    off: o,
                    width: w,
                    is_float: fl,
                    site: NO_SITE,
                }) if d == sreg && o == off && w == width && fl == is_float
            );
            if !loaded {
                report.push(Diagnostic::new(
                    Code::RegDefUse,
                    format!(
                        "prologue of `{}` is missing the load of promoted slot r{sreg} \
                         (frame offset {off}) declared by the promotion plan",
                        f.name
                    ),
                ));
            }
        }
    }
}
