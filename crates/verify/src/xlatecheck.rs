//! DSE014/DSE015 — translation validation of the register backend.
//!
//! The stack→register translator ([`dse_ir::regcode`]) fuses opcodes,
//! promotes clean frame scalars into dedicated registers, and coalesces
//! copies. Rather than trusting those rewrites, this pass *symbolically
//! executes* every stack basic block next to its register translation (the
//! origin map gives the block correspondence) and proves the two abstract
//! machines equivalent at every block exit:
//!
//! * live operand slots hold identical value terms (`slot k` ↔ `r[k]`),
//! * every promoted scalar's logical value matches its dedicated register,
//! * the memory/observer *effect* sequences (stores, copies, calls,
//!   parallel regions, synchronization, loop marks) are identical, site
//!   ids included, and
//! * the exits themselves correspond — same kind, same branch condition
//!   and polarity, and the register target is exactly the translation of
//!   the stack target (branches into a promoted function entry must land
//!   *after* the prologue loads).
//!
//! Terms live in one hash-consed arena shared by both sides, so
//! equivalence is pointer equality. Unknown memory reads are `Load` terms
//! stamped with the effect-list length at read time (two loads of one
//! address separated by a store get distinct terms); call results and
//! post-call/post-region register contents are opaque per-event terms.
//!
//! Divergence is `DSE014`. Two precision cases report `DSE015`: a narrow
//! promoted store whose register image misses the sign-extension
//! canonicalization (one side's term is exactly `Sext` of the other), and
//! a declared promotion inside an outlined parallel body, whose frame is
//! shared across threads and must never promote. The declared
//! [`dse_ir::PromotionPlan`] is also re-derived from the stack flow and
//! compared, so an illegal *plan* is caught even when the code matches it.

use std::collections::HashMap;

use dse_ir::bytecode::{
    Builtin, CmpOp, CompiledProgram, FBinOp, IBinOp, Instr, LoopEvent, Pc, RetKind,
};
use dse_ir::sites::{SiteId, NO_SITE};
use dse_ir::{builtin_sig, promotion_plan, RInstr, Reg, RegProgram, StackFlow, Ty, NO_OWNER};

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Validates the translation. Returns `true` when no error was added.
/// Assumes the stack and register structural checks already passed (the
/// block walk indexes both programs freely).
pub fn check(
    prog: &CompiledProgram,
    rp: &RegProgram,
    flow: &StackFlow,
    report: &mut Report,
) -> bool {
    let before = report.count(Severity::Error);
    if !check_plan(prog, rp, flow, report) {
        return false;
    }
    let mut v = Validator::new(prog, rp, flow);
    for block in v.blocks() {
        v.check_block(block, report);
    }
    report.count(Severity::Error) == before
}

/// Re-derives the promotion plan from the stack flow and compares it with
/// the plan the translation declares. A declared promotion the flow cannot
/// justify is a miscompile even if code and plan agree.
fn check_plan(
    prog: &CompiledProgram,
    rp: &RegProgram,
    flow: &StackFlow,
    report: &mut Report,
) -> bool {
    let nf = prog.funcs.len();
    let mut body_promos: Vec<(u32, u32)> = rp
        .promo
        .promoted
        .keys()
        .copied()
        .filter(|&(own, _)| own as usize >= nf)
        .collect();
    body_promos.sort_unstable();
    for (own, off) in &body_promos {
        report.push(Diagnostic::new(
            Code::TranslationPrecision,
            format!(
                "frame offset {off} is declared promoted inside {}, an outlined \
                 parallel body whose frame is shared across worker threads",
                flow.owner_name(prog, *own)
            ),
        ));
    }
    if !body_promos.is_empty() {
        return false;
    }
    let derived = promotion_plan(prog, flow);
    if derived != rp.promo {
        report.push(Diagnostic::new(
            Code::TranslationDivergence,
            "the declared promotion plan differs from the plan the stack \
             dataflow justifies"
                .to_string(),
        ));
        return false;
    }
    true
}

type TermId = u32;

/// A value in the shared abstract domain. Operands are arena ids, so
/// structural equality is id equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Term {
    /// Operand slot `k`'s value at block entry.
    SlotVar(u16),
    /// Promoted slot `off`'s logical value at (non-entry) block entry.
    PromVar(u32),
    /// Frame memory at `off` on function entry (zeroed or argument-carrying).
    FrameVar(u32),
    /// The (stale) frame home of promoted slot `off` at non-entry block
    /// entry — on the register side the home only syncs at spill points.
    StaleVar(u32),
    /// Register `r` after clobbering event number `e` (call or region).
    Havoc {
        e: u32,
        r: u16,
    },
    /// The scalar result of call event number `e`.
    CallRet(u32),
    /// A register the block reads without any binding (caught by DSE013;
    /// kept opaque here so validation can continue).
    Unbound(u16),
    ConstI(i64),
    /// Float constant, by bit pattern (hashable).
    ConstF(u64),
    FrameAddr(u32),
    GlobalAddr(u32),
    TidScaled(i64),
    TidSpanScaled {
        z: i64,
        span: TermId,
    },
    FrameAddrTid {
        offset: u32,
        stride: i64,
    },
    GlobalAddrTid {
        addr: u32,
        stride: i64,
    },
    IterIdx(u8),
    Tid,
    NThreads,
    IBin(IBinOp, TermId, TermId),
    FBin(FBinOp, TermId, TermId),
    ICmp(CmpOp, TermId, TermId),
    FCmp(CmpOp, TermId, TermId),
    INeg(TermId),
    FNeg(TermId),
    BNot(TermId),
    LNot(TermId),
    I2F(TermId),
    F2I(TermId),
    Sext(u8, TermId),
    Fsqrt(TermId),
    Fabs(TermId),
    Localize(TermId),
    /// An unknown memory read: address, shape, site, and the number of
    /// effects already emitted (so reads across stores stay distinct).
    Load {
        addr: TermId,
        width: u8,
        is_float: bool,
        site: SiteId,
        epoch: u32,
    },
}

/// One observable event. Both sides must emit identical sequences.
#[derive(Debug, Clone, PartialEq)]
enum Effect {
    Store {
        a: TermId,
        v: TermId,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    MemCpy {
        dst: TermId,
        src: TermId,
        size: u32,
        load_site: SiteId,
        store_site: SiteId,
    },
    Call {
        fi: u32,
        args: Vec<TermId>,
    },
    CallBuiltin {
        b: Builtin,
        args: Vec<TermId>,
        pc: Pc,
    },
    ParLoop {
        id: u32,
        lo: TermId,
        hi: TermId,
    },
    Wait(u32),
    Post(u32),
    LoopMark(LoopEvent, u32),
    Localize {
        a: TermId,
        site: SiteId,
    },
}

#[derive(Default)]
struct Arena {
    terms: Vec<Term>,
    map: HashMap<Term, TermId>,
}

impl Arena {
    fn mk(&mut self, t: Term) -> TermId {
        // Width-8 sign extension is the identity; canonicalize so an
        // explicit full-width Sext on one side cannot cause false alarms.
        if let Term::Sext(8, inner) = t {
            return inner;
        }
        if let Some(&id) = self.map.get(&t) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(t);
        self.map.insert(t, id);
        id
    }

    fn get(&self, id: TermId) -> Term {
        self.terms[id as usize]
    }

    /// True when one term is exactly a sign-extension of the other — the
    /// signature of a skipped narrow-store canonicalization (DSE015).
    fn sext_of(&self, a: TermId, b: TermId) -> bool {
        matches!(self.get(a), Term::Sext(_, inner) if inner == b)
            || matches!(self.get(b), Term::Sext(_, inner) if inner == a)
    }
}

/// How a block hands control onward, with targets still in each side's own
/// pc space.
#[derive(Debug, Clone, PartialEq)]
enum Exit {
    /// Falls into the next leader.
    Fall,
    Jump(u32),
    Cond {
        c: TermId,
        on_true: bool,
        t: u32,
    },
    Ret {
        val: Option<TermId>,
        is_float: bool,
    },
    Halt {
        val: Option<TermId>,
        is_float: bool,
    },
}

/// One stack basic block: `[start, end]` inclusive of the terminator.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: usize,
    /// One past the last stack pc of the block.
    end: usize,
}

struct Validator<'p> {
    prog: &'p CompiledProgram,
    rp: &'p RegProgram,
    flow: &'p StackFlow,
    arena: Arena,
    /// Stack pc → function index, for prologue-skipping branch targets.
    func_entry: HashMap<Pc, u32>,
    leaders: Vec<usize>,
}

impl<'p> Validator<'p> {
    fn new(prog: &'p CompiledProgram, rp: &'p RegProgram, flow: &'p StackFlow) -> Validator<'p> {
        let mut func_entry = HashMap::new();
        for (fi, f) in prog.funcs.iter().enumerate() {
            func_entry.insert(f.entry, fi as u32);
        }
        let mut v = Validator {
            prog,
            rp,
            flow,
            arena: Arena::default(),
            func_entry,
            leaders: Vec::new(),
        };
        v.leaders = v.compute_leaders();
        v
    }

    fn compute_leaders(&self) -> Vec<usize> {
        let n = self.prog.code.len();
        let mut leader = vec![false; n];
        for f in &self.prog.funcs {
            leader[f.entry as usize] = true;
        }
        for l in &self.prog.loops {
            if l.mode.is_some() {
                leader[l.body_entry as usize] = true;
            }
        }
        for (pc, ins) in self.prog.code.iter().enumerate() {
            if self.flow.states[pc].is_none() {
                continue;
            }
            match *ins {
                Instr::Jump(t) => leader[t as usize] = true,
                Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => {
                    leader[t as usize] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                _ => {}
            }
        }
        (0..n)
            .filter(|&pc| leader[pc] && self.flow.states[pc].is_some())
            .collect()
    }

    fn blocks(&self) -> Vec<Block> {
        let n = self.prog.code.len();
        let mut out = Vec::with_capacity(self.leaders.len());
        for &start in &self.leaders {
            let mut pc = start;
            loop {
                let term = matches!(
                    self.prog.code[pc],
                    Instr::Jump(_)
                        | Instr::JumpIfZ(_)
                        | Instr::JumpIfNZ(_)
                        | Instr::Ret
                        | Instr::Halt
                );
                pc += 1;
                if term
                    || pc >= n
                    || self.leaders.binary_search(&pc).is_ok()
                    || self.flow.states[pc].is_none()
                {
                    break;
                }
            }
            out.push(Block { start, end: pc });
        }
        out
    }

    /// First register pc whose origin is ≥ the given stack pc. The origin
    /// map is nondecreasing by construction (emission order), so this is
    /// the translation boundary of the stack pc.
    fn reg_lo(&self, stack_pc: usize) -> usize {
        self.rp.origin.partition_point(|&o| (o as usize) < stack_pc)
    }

    /// The register pc a *branch* to `t` must land on: past the promoted
    /// prologue when `t` is a function entry (calls enter at
    /// [`Validator::reg_lo`] instead and run the prologue).
    fn expected_branch_target(&self, t: usize) -> usize {
        let base = self.reg_lo(t);
        match self.func_entry.get(&(t as Pc)) {
            Some(&fi) => base + self.rp.promo.spills[fi as usize].len(),
            None => base,
        }
    }

    fn check_block(&mut self, b: Block, report: &mut Report) {
        let own = self.flow.owner[b.start];
        let entry_block = self.func_entry.contains_key(&(b.start as Pc));
        let depth0 = self.flow.states[b.start]
            .as_ref()
            .map(|s| s.len())
            .unwrap_or(0);

        // Block-entry bindings: slot k and r[k] are the same fresh
        // variable; a slot with surviving address provenance is bound to
        // the exact address term on both sides (the register may never
        // materialize a promoted slot's dead address — such slots are
        // exempt from exit comparison below).
        let mut stack_vals: Vec<TermId> = Vec::with_capacity(depth0);
        let mut regs: Vec<Option<TermId>> = vec![None; self.rp.frame_regs as usize];
        for (k, reg) in regs.iter_mut().enumerate().take(depth0) {
            let slot = self.flow.states[b.start].as_ref().expect("reachable")[k];
            let t = match slot.addr_of {
                Some(off) => self.arena.mk(Term::FrameAddr(off)),
                None => self.arena.mk(Term::SlotVar(k as u16)),
            };
            stack_vals.push(t);
            *reg = Some(t);
        }
        let promoted: Vec<(u32, Reg, u8, bool)> = {
            let mut v: Vec<_> = self
                .rp
                .promo
                .promoted
                .iter()
                .filter(|((o, _), _)| *o == own)
                .map(|(&(_, off), &(sreg, w, isf))| (off, sreg, w, isf))
                .collect();
            v.sort_unstable();
            v
        };
        let mut logical: HashMap<u32, TermId> = HashMap::new();
        let mut home: HashMap<u32, TermId> = HashMap::new();
        for &(off, sreg, _, _) in &promoted {
            if entry_block {
                // The prologue loads bind r[sreg] from the frame below.
                let init = self.arena.mk(Term::FrameVar(off));
                logical.insert(off, init);
                home.insert(off, init);
            } else {
                let cur = self.arena.mk(Term::PromVar(off));
                logical.insert(off, cur);
                regs[sreg as usize] = Some(cur);
                home.insert(off, self.arena.mk(Term::StaleVar(off)));
            }
        }

        let stack_side = self.run_stack(b, own, stack_vals, logical);
        let reg_side = self.run_reg(b, own, regs, home, report);

        let loc = format!("stack block {}..{}", b.start, b.end);

        // Effects must agree exactly, in order.
        let ne = stack_side.effects.len().min(reg_side.effects.len());
        let mut effects_diverged = false;
        for i in 0..ne {
            if stack_side.effects[i] != reg_side.effects[i] {
                report.push(Diagnostic::new(
                    Code::TranslationDivergence,
                    format!(
                        "{loc}: effect {i} differs between backends \
                         (stack: {:?}; register: {:?})",
                        stack_side.effects[i], reg_side.effects[i]
                    ),
                ));
                effects_diverged = true;
                break;
            }
        }
        if !effects_diverged && stack_side.effects.len() != reg_side.effects.len() {
            report.push(Diagnostic::new(
                Code::TranslationDivergence,
                format!(
                    "{loc}: {} effect(s) on the stack side but {} on the register side",
                    stack_side.effects.len(),
                    reg_side.effects.len()
                ),
            ));
        }

        // Live operand slots.
        for (k, &s) in stack_side.stack.iter().enumerate() {
            if let Term::FrameAddr(off) = self.arena.get(s) {
                if self.rp.promo.promoted.contains_key(&(own, off)) {
                    continue; // dead address of a promoted slot
                }
            }
            let r = reg_side.regs.get(k).copied().flatten();
            if r != Some(s) {
                report.push(Diagnostic::new(
                    Code::TranslationDivergence,
                    format!(
                        "{loc}: operand slot {k} exits with different values \
                         under the two backends"
                    ),
                ));
            }
        }

        // Promoted scalars: logical value vs dedicated register.
        for &(off, sreg, _, _) in &promoted {
            let s = stack_side.logical[&off];
            let r = reg_side.regs[sreg as usize];
            if r == Some(s) {
                continue;
            }
            match r {
                Some(r) if self.arena.sext_of(s, r) => {
                    report.push(Diagnostic::new(
                        Code::TranslationPrecision,
                        format!(
                            "{loc}: promoted slot r{sreg} (frame offset {off}) exits \
                             without the sign-extension canonicalization of its \
                             narrow store"
                        ),
                    ));
                }
                _ => {
                    report.push(Diagnostic::new(
                        Code::TranslationDivergence,
                        format!(
                            "{loc}: promoted slot r{sreg} (frame offset {off}) exits \
                             out of sync with its stack-side value"
                        ),
                    ));
                }
            }
        }

        // Exit correspondence.
        self.check_exits(&loc, &stack_side.exit, &reg_side.exit, report);
    }

    fn check_exits(&self, loc: &str, s: &Exit, r: &Exit, report: &mut Report) {
        let diverge = |report: &mut Report, why: String| {
            report.push(Diagnostic::new(
                Code::TranslationDivergence,
                format!("{loc}: {why}"),
            ));
        };
        match (s, r) {
            (Exit::Fall, Exit::Fall) => {}
            (Exit::Jump(t), Exit::Jump(rt)) => {
                let want = self.expected_branch_target(*t as usize);
                if *rt as usize != want {
                    diverge(
                        report,
                        format!(
                            "jump resolves to reg pc {rt}, but stack target {t} \
                             translates to reg pc {want}"
                        ),
                    );
                }
            }
            (
                Exit::Cond { c, on_true, t },
                Exit::Cond {
                    c: rc,
                    on_true: r_on_true,
                    t: rt,
                },
            ) => {
                if c != rc || on_true != r_on_true {
                    diverge(
                        report,
                        "branch condition or polarity differs between backends".to_string(),
                    );
                }
                let want = self.expected_branch_target(*t as usize);
                if *rt as usize != want {
                    diverge(
                        report,
                        format!(
                            "branch resolves to reg pc {rt}, but stack target {t} \
                             translates to reg pc {want}"
                        ),
                    );
                }
            }
            (
                Exit::Ret { val, is_float },
                Exit::Ret {
                    val: rv,
                    is_float: rf,
                },
            )
            | (
                Exit::Halt { val, is_float },
                Exit::Halt {
                    val: rv,
                    is_float: rf,
                },
            ) => {
                if val != rv || is_float != rf {
                    diverge(
                        report,
                        "return/halt value differs between backends".to_string(),
                    );
                }
            }
            _ => diverge(
                report,
                format!("exit kinds differ between backends ({s:?} vs {r:?})"),
            ),
        }
    }

    // ---- stack side -----------------------------------------------------

    fn run_stack(
        &mut self,
        b: Block,
        own: u32,
        stack: Vec<TermId>,
        logical: HashMap<u32, TermId>,
    ) -> StackSide {
        let mut s = StackSide {
            stack,
            logical,
            effects: Vec::new(),
            exit: Exit::Fall,
        };
        for pc in b.start..b.end {
            let depth = s.stack.len();
            match self.prog.code[pc] {
                Instr::PushI(v) => s.push(self.arena.mk(Term::ConstI(v))),
                Instr::PushF(v) => s.push(self.arena.mk(Term::ConstF(v.to_bits()))),
                Instr::Dup => {
                    let t = s.top();
                    s.push(t);
                }
                Instr::Drop => {
                    s.pop();
                }
                Instr::Tuck => {
                    let b2 = s.pop();
                    let a = s.pop();
                    s.push(b2);
                    s.push(a);
                    s.push(b2);
                }
                Instr::FrameAddr(off) => s.push(self.arena.mk(Term::FrameAddr(off))),
                Instr::GlobalAddr(a) => s.push(self.arena.mk(Term::GlobalAddr(a))),
                Instr::IterIdx(d) => s.push(self.arena.mk(Term::IterIdx(d))),
                Instr::TidScaled(k) => s.push(self.arena.mk(Term::TidScaled(k))),
                Instr::TidSpanScaled(z) => {
                    let span = s.pop();
                    s.push(self.arena.mk(Term::TidSpanScaled { z, span }));
                }
                Instr::FrameAddrTid { offset, stride } => {
                    s.push(self.arena.mk(Term::FrameAddrTid { offset, stride }))
                }
                Instr::GlobalAddrTid { addr, stride } => {
                    s.push(self.arena.mk(Term::GlobalAddrTid { addr, stride }))
                }
                Instr::Load {
                    width,
                    is_float,
                    site,
                } => {
                    let addr = s.pop();
                    let promoted_off = match self.arena.get(addr) {
                        Term::FrameAddr(off)
                            if self.rp.promo.promoted.contains_key(&(own, off)) =>
                        {
                            Some(off)
                        }
                        _ => None,
                    };
                    let t = match promoted_off {
                        Some(off) => *s.logical.get(&off).expect("promoted offsets are pre-bound"),
                        None => {
                            let epoch = s.effects.len() as u32;
                            self.arena.mk(Term::Load {
                                addr,
                                width,
                                is_float,
                                site,
                                epoch,
                            })
                        }
                    };
                    s.push(t);
                }
                Instr::Store {
                    width,
                    is_float,
                    site,
                } => {
                    let v = s.pop();
                    let a = s.pop();
                    let promoted_off = match self.arena.get(a) {
                        Term::FrameAddr(off)
                            if self.rp.promo.promoted.contains_key(&(own, off)) =>
                        {
                            Some(off)
                        }
                        _ => None,
                    };
                    match promoted_off {
                        Some(off) => {
                            // Narrow stores truncate in memory and reloads
                            // sign-extend; the logical value is canonical.
                            let stored = if !is_float && width < 8 {
                                self.arena.mk(Term::Sext(width, v))
                            } else {
                                v
                            };
                            s.logical.insert(off, stored);
                        }
                        None => s.effects.push(Effect::Store {
                            a,
                            v,
                            width,
                            is_float,
                            site,
                        }),
                    }
                }
                Instr::MemCpy {
                    size,
                    load_site,
                    store_site,
                } => {
                    let dst = s.pop();
                    let src = s.pop();
                    s.effects.push(Effect::MemCpy {
                        dst,
                        src,
                        size,
                        load_site,
                        store_site,
                    });
                }
                Instr::IBin(op) => {
                    let r = s.pop();
                    let l = s.pop();
                    s.push(self.arena.mk(Term::IBin(op, l, r)));
                }
                Instr::FBin(op) => {
                    let r = s.pop();
                    let l = s.pop();
                    s.push(self.arena.mk(Term::FBin(op, l, r)));
                }
                Instr::ICmp(op) => {
                    let r = s.pop();
                    let l = s.pop();
                    s.push(self.arena.mk(Term::ICmp(op, l, r)));
                }
                Instr::FCmp(op) => {
                    let r = s.pop();
                    let l = s.pop();
                    s.push(self.arena.mk(Term::FCmp(op, l, r)));
                }
                Instr::INeg => s.in_place(&mut self.arena, Term::INeg),
                Instr::FNeg => s.in_place(&mut self.arena, Term::FNeg),
                Instr::BNot => s.in_place(&mut self.arena, Term::BNot),
                Instr::LNot => s.in_place(&mut self.arena, Term::LNot),
                Instr::I2F => s.in_place(&mut self.arena, Term::I2F),
                Instr::F2I => s.in_place(&mut self.arena, Term::F2I),
                Instr::SextTrunc(w) => {
                    let t = s.pop();
                    s.push(self.arena.mk(Term::Sext(w, t)));
                }
                Instr::Jump(t) => s.exit = Exit::Jump(t),
                Instr::JumpIfZ(t) => {
                    let c = s.pop();
                    s.exit = Exit::Cond {
                        c,
                        on_true: false,
                        t,
                    };
                }
                Instr::JumpIfNZ(t) => {
                    let c = s.pop();
                    s.exit = Exit::Cond {
                        c,
                        on_true: true,
                        t,
                    };
                }
                Instr::Call(fi) => {
                    let nargs = self.prog.func(fi).params.len();
                    let args = s.stack.split_off(depth - nargs);
                    s.effects.push(Effect::Call { fi, args });
                    if self.prog.func(fi).ret == RetKind::Scalar {
                        let uid = s.effects.len() as u32 - 1;
                        s.push(self.arena.mk(Term::CallRet(uid)));
                    }
                }
                Instr::CallBuiltin(b2) => match b2 {
                    Builtin::Fsqrt => s.in_place(&mut self.arena, Term::Fsqrt),
                    Builtin::Fabs => s.in_place(&mut self.arena, Term::Fabs),
                    Builtin::Tid => s.push(self.arena.mk(Term::Tid)),
                    Builtin::NThreads => s.push(self.arena.mk(Term::NThreads)),
                    _ => {
                        let args = s.stack.split_off(depth - b2.arity());
                        s.effects.push(Effect::CallBuiltin {
                            b: b2,
                            args,
                            pc: pc as Pc,
                        });
                        if builtin_sig(b2).1.is_some() {
                            let uid = s.effects.len() as u32 - 1;
                            s.push(self.arena.mk(Term::CallRet(uid)));
                        }
                    }
                },
                Instr::Ret => {
                    let is_float = depth == 1
                        && self.flow.states[pc].as_ref().expect("reachable")[0].ty == Ty::F;
                    let val = (depth == 1).then(|| s.pop());
                    s.exit = Exit::Ret { val, is_float };
                }
                Instr::LoopMark(ev, id) => s.effects.push(Effect::LoopMark(ev, id)),
                Instr::ParLoop(id) => {
                    let hi = s.pop();
                    let lo = s.pop();
                    s.effects.push(Effect::ParLoop { id, lo, hi });
                }
                Instr::Wait(id) => s.effects.push(Effect::Wait(id)),
                Instr::Post(id) => s.effects.push(Effect::Post(id)),
                Instr::Localize { site } => {
                    let a = s.pop();
                    s.effects.push(Effect::Localize { a, site });
                    s.push(self.arena.mk(Term::Localize(a)));
                }
                Instr::Halt => {
                    let st = self.flow.states[pc].as_ref().expect("reachable");
                    let is_float = depth >= 1 && st[depth - 1].ty == Ty::F;
                    let val = (depth >= 1).then(|| s.top());
                    s.exit = Exit::Halt { val, is_float };
                }
            }
        }
        s
    }

    // ---- register side --------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn run_reg(
        &mut self,
        b: Block,
        own: u32,
        regs: Vec<Option<TermId>>,
        home: HashMap<u32, TermId>,
        report: &mut Report,
    ) -> RegSide {
        let lo = self.reg_lo(b.start);
        let hi = self.reg_lo(b.end);
        let mut r = RegSide {
            regs,
            home,
            effects: Vec::new(),
            exit: Exit::Fall,
        };
        let loc = format!("stack block {}..{}", b.start, b.end);
        let mut ended = false;
        for pc in lo..hi {
            if ended {
                report.push(Diagnostic::new(
                    Code::TranslationDivergence,
                    format!("{loc}: register code continues past its terminator at reg pc {pc}"),
                ));
                break;
            }
            match self.rp.code[pc] {
                RInstr::LdcI { d, v } => r.w(d, self.arena.mk(Term::ConstI(v))),
                RInstr::LdcF { d, v } => r.w(d, self.arena.mk(Term::ConstF(v.to_bits()))),
                RInstr::Mov { d, s } => {
                    let t = r.read(&mut self.arena, s);
                    r.w(d, t);
                }
                RInstr::Tuck { d } => {
                    let a = r.read(&mut self.arena, d);
                    let b2 = r.read(&mut self.arena, d + 1);
                    r.w(d, b2);
                    r.w(d + 1, a);
                    r.w(d + 2, b2);
                }
                RInstr::FrameAddr { d, off } => r.w(d, self.arena.mk(Term::FrameAddr(off))),
                RInstr::GlobalAddr { d, addr } => r.w(d, self.arena.mk(Term::GlobalAddr(addr))),
                RInstr::TidScaled { d, k } => r.w(d, self.arena.mk(Term::TidScaled(k))),
                RInstr::TidSpanScaled { d, z } => {
                    let span = r.read(&mut self.arena, d);
                    r.w(d, self.arena.mk(Term::TidSpanScaled { z, span }));
                }
                RInstr::FrameAddrTid { d, offset, stride } => {
                    r.w(d, self.arena.mk(Term::FrameAddrTid { offset, stride }))
                }
                RInstr::GlobalAddrTid { d, addr, stride } => {
                    r.w(d, self.arena.mk(Term::GlobalAddrTid { addr, stride }))
                }
                RInstr::IterIdx { d, depth } => r.w(d, self.arena.mk(Term::IterIdx(depth))),
                RInstr::Load {
                    d,
                    width,
                    is_float,
                    site,
                } => {
                    let addr = r.read(&mut self.arena, d);
                    let epoch = r.effects.len() as u32;
                    r.w(
                        d,
                        self.arena.mk(Term::Load {
                            addr,
                            width,
                            is_float,
                            site,
                            epoch,
                        }),
                    );
                }
                RInstr::LdFrame {
                    d,
                    off,
                    width,
                    is_float,
                    site,
                } => {
                    if site == NO_SITE && self.rp.promo.promoted.contains_key(&(own, off)) {
                        let t = *r.home.get(&off).expect("promoted homes are pre-bound");
                        r.w(d, t);
                    } else {
                        let addr = self.arena.mk(Term::FrameAddr(off));
                        let epoch = r.effects.len() as u32;
                        r.w(
                            d,
                            self.arena.mk(Term::Load {
                                addr,
                                width,
                                is_float,
                                site,
                                epoch,
                            }),
                        );
                    }
                }
                RInstr::LdGlobal {
                    d,
                    addr,
                    width,
                    is_float,
                    site,
                } => {
                    let a = self.arena.mk(Term::GlobalAddr(addr));
                    let epoch = r.effects.len() as u32;
                    r.w(
                        d,
                        self.arena.mk(Term::Load {
                            addr: a,
                            width,
                            is_float,
                            site,
                            epoch,
                        }),
                    );
                }
                RInstr::Store {
                    a,
                    v,
                    width,
                    is_float,
                    site,
                } => {
                    let at = r.read(&mut self.arena, a);
                    let vt = r.read(&mut self.arena, v);
                    r.effects.push(Effect::Store {
                        a: at,
                        v: vt,
                        width,
                        is_float,
                        site,
                    });
                }
                RInstr::StFrame {
                    off,
                    v,
                    width,
                    is_float,
                    site,
                } => {
                    let vt = r.read(&mut self.arena, v);
                    if site == NO_SITE && self.rp.promo.promoted.contains_key(&(own, off)) {
                        r.home.insert(off, vt);
                    } else {
                        let a = self.arena.mk(Term::FrameAddr(off));
                        r.effects.push(Effect::Store {
                            a,
                            v: vt,
                            width,
                            is_float,
                            site,
                        });
                    }
                }
                RInstr::MemCpy {
                    dst,
                    src,
                    size,
                    load_site,
                    store_site,
                } => {
                    let d = r.read(&mut self.arena, dst);
                    let s2 = r.read(&mut self.arena, src);
                    r.effects.push(Effect::MemCpy {
                        dst: d,
                        src: s2,
                        size,
                        load_site,
                        store_site,
                    });
                }
                RInstr::IBin { op, d, l, r: rr } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    r.w(d, self.arena.mk(Term::IBin(op, lt, rt)));
                }
                RInstr::IBinImm { op, d, l, imm } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = self.arena.mk(Term::ConstI(imm));
                    r.w(d, self.arena.mk(Term::IBin(op, lt, rt)));
                }
                RInstr::FBin { op, d, l, r: rr } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    r.w(d, self.arena.mk(Term::FBin(op, lt, rt)));
                }
                RInstr::ICmp { op, d, l, r: rr } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    r.w(d, self.arena.mk(Term::ICmp(op, lt, rt)));
                }
                RInstr::ICmpImm { op, d, l, imm } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = self.arena.mk(Term::ConstI(imm));
                    r.w(d, self.arena.mk(Term::ICmp(op, lt, rt)));
                }
                RInstr::FCmp { op, d, l, r: rr } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    r.w(d, self.arena.mk(Term::FCmp(op, lt, rt)));
                }
                RInstr::INeg { d } => r.in_place(&mut self.arena, d, Term::INeg),
                RInstr::FNeg { d } => r.in_place(&mut self.arena, d, Term::FNeg),
                RInstr::BNot { d } => r.in_place(&mut self.arena, d, Term::BNot),
                RInstr::LNot { d } => r.in_place(&mut self.arena, d, Term::LNot),
                RInstr::I2F { d } => r.in_place(&mut self.arena, d, Term::I2F),
                RInstr::F2I { d } => r.in_place(&mut self.arena, d, Term::F2I),
                RInstr::Sext { d, w } => {
                    let t = r.read(&mut self.arena, d);
                    r.w(d, self.arena.mk(Term::Sext(w, t)));
                }
                RInstr::Fsqrt { d } => r.in_place(&mut self.arena, d, Term::Fsqrt),
                RInstr::Fabs { d } => r.in_place(&mut self.arena, d, Term::Fabs),
                RInstr::Tid { d } => r.w(d, self.arena.mk(Term::Tid)),
                RInstr::NThreads { d } => r.w(d, self.arena.mk(Term::NThreads)),
                RInstr::Jump { t } => {
                    r.exit = Exit::Jump(t);
                    ended = true;
                }
                RInstr::JumpIfZ { s, t } => {
                    let c = r.read(&mut self.arena, s);
                    r.exit = Exit::Cond {
                        c,
                        on_true: false,
                        t,
                    };
                    ended = true;
                }
                RInstr::JumpIfNZ { s, t } => {
                    let c = r.read(&mut self.arena, s);
                    r.exit = Exit::Cond {
                        c,
                        on_true: true,
                        t,
                    };
                    ended = true;
                }
                RInstr::JumpICmp {
                    op,
                    l,
                    r: rr,
                    t,
                    on_true,
                } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    let c = self.arena.mk(Term::ICmp(op, lt, rt));
                    r.exit = Exit::Cond { c, on_true, t };
                    ended = true;
                }
                RInstr::JumpICmpImm {
                    op,
                    l,
                    imm,
                    t,
                    on_true,
                } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = self.arena.mk(Term::ConstI(imm));
                    let c = self.arena.mk(Term::ICmp(op, lt, rt));
                    r.exit = Exit::Cond { c, on_true, t };
                    ended = true;
                }
                RInstr::JumpFCmp {
                    op,
                    l,
                    r: rr,
                    t,
                    on_true,
                } => {
                    let lt = r.read(&mut self.arena, l);
                    let rt = r.read(&mut self.arena, rr);
                    let c = self.arena.mk(Term::FCmp(op, lt, rt));
                    r.exit = Exit::Cond { c, on_true, t };
                    ended = true;
                }
                RInstr::Call { target, fi, abase } => {
                    let nargs = self.prog.func(fi).params.len() as u16;
                    let args: Vec<TermId> = (0..nargs)
                        .map(|k| r.read(&mut self.arena, abase + k))
                        .collect();
                    r.effects.push(Effect::Call { fi, args });
                    let uid = r.effects.len() as u32 - 1;
                    // The callee enters through the prologue.
                    let want = self.reg_lo(self.prog.func(fi).entry as usize);
                    if target as usize != want {
                        report.push(Diagnostic::new(
                            Code::TranslationDivergence,
                            format!(
                                "{loc}: call targets reg pc {target}, but function \
                                 {fi} enters at reg pc {want}"
                            ),
                        ));
                    }
                    // The callee window overlaps the caller's at or above
                    // the argument base.
                    for k in abase as usize..r.regs.len() {
                        r.regs[k] = Some(self.arena.mk(Term::Havoc {
                            e: uid,
                            r: k as u16,
                        }));
                    }
                    if self.prog.func(fi).ret == RetKind::Scalar {
                        r.w(abase, self.arena.mk(Term::CallRet(uid)));
                    }
                }
                RInstr::CallBuiltin {
                    b: b2,
                    abase,
                    orig_pc,
                } => {
                    let args: Vec<TermId> = (0..b2.arity() as u16)
                        .map(|k| r.read(&mut self.arena, abase + k))
                        .collect();
                    r.effects.push(Effect::CallBuiltin {
                        b: b2,
                        args,
                        pc: orig_pc,
                    });
                    if builtin_sig(b2).1.is_some() {
                        let uid = r.effects.len() as u32 - 1;
                        r.w(abase, self.arena.mk(Term::CallRet(uid)));
                    }
                }
                RInstr::Ret {
                    src,
                    has_val,
                    is_float,
                } => {
                    let val = has_val.then(|| r.read(&mut self.arena, src));
                    r.exit = Exit::Ret { val, is_float };
                    ended = true;
                }
                RInstr::LoopMark { ev, id } => r.effects.push(Effect::LoopMark(ev, id)),
                RInstr::ParLoop { id, lo: rl, hi } => {
                    let lt = r.read(&mut self.arena, rl);
                    let ht = r.read(&mut self.arena, hi);
                    r.effects.push(Effect::ParLoop { id, lo: lt, hi: ht });
                    let uid = r.effects.len() as u32 - 1;
                    // The body region's window starts at `lo`.
                    for k in rl as usize..r.regs.len() {
                        r.regs[k] = Some(self.arena.mk(Term::Havoc {
                            e: uid,
                            r: k as u16,
                        }));
                    }
                }
                RInstr::Wait { id } => r.effects.push(Effect::Wait(id)),
                RInstr::Post { id } => r.effects.push(Effect::Post(id)),
                RInstr::Localize { d, site } => {
                    let a = r.read(&mut self.arena, d);
                    r.effects.push(Effect::Localize { a, site });
                    r.w(d, self.arena.mk(Term::Localize(a)));
                }
                RInstr::Halt {
                    src,
                    has_val,
                    is_float,
                } => {
                    let val = has_val.then(|| r.read(&mut self.arena, src));
                    r.exit = Exit::Halt { val, is_float };
                    ended = true;
                }
                RInstr::Unreachable => {
                    report.push(Diagnostic::new(
                        Code::TranslationDivergence,
                        format!("{loc}: reachable stack code translates to a trap at reg pc {pc}"),
                    ));
                    ended = true;
                }
            }
        }
        r
    }
}

struct StackSide {
    stack: Vec<TermId>,
    logical: HashMap<u32, TermId>,
    effects: Vec<Effect>,
    exit: Exit,
}

impl StackSide {
    fn push(&mut self, t: TermId) {
        self.stack.push(t);
    }
    fn pop(&mut self) -> TermId {
        self.stack.pop().expect("stackcheck proved depths")
    }
    fn top(&self) -> TermId {
        *self.stack.last().expect("stackcheck proved depths")
    }
    fn in_place(&mut self, arena: &mut Arena, mk: fn(TermId) -> Term) {
        let t = self.pop();
        let t = arena.mk(mk(t));
        self.push(t);
    }
}

struct RegSide {
    regs: Vec<Option<TermId>>,
    home: HashMap<u32, TermId>,
    effects: Vec<Effect>,
    exit: Exit,
}

impl RegSide {
    fn read(&mut self, arena: &mut Arena, r: Reg) -> TermId {
        match self.regs.get(r as usize).copied().flatten() {
            Some(t) => t,
            None => arena.mk(Term::Unbound(r)),
        }
    }
    fn w(&mut self, r: Reg, t: TermId) {
        if let Some(slot) = self.regs.get_mut(r as usize) {
            *slot = Some(t);
        }
    }
    fn in_place(&mut self, arena: &mut Arena, d: Reg, mk: fn(TermId) -> Term) {
        let t = self.read(arena, d);
        let t = arena.mk(mk(t));
        self.w(d, t);
    }
}

// `NO_OWNER` guards unreachable leaders; blocks are only built for
// reachable pcs, so the owner lookup in `check_block` is always real.
const _: u32 = NO_OWNER;
