//! `dsec` — the data-structure-expansion compiler driver.
//!
//! ```text
//! dsec <program.cee> [--threads N] [--opt none|noconst|full] [--baseline]
//!      [--emit source|report|ddg|bytecode|trace|chrome-trace|flamegraph]
//!      [--run] [--serial] [--timing] [--metrics <path|->]
//!      [--in <ints,comma,separated>] [--daemon <socket>]
//! dsec check <program.cee> [--strict] [--json] [--backend] [--threads N]
//!      [--opt none|noconst|full] [--in <ints,comma,separated>]
//!      [--daemon <socket>]
//! dsec profile <program.cee> [--threads N] [--opt none|noconst|full]
//!      [--in <ints,comma,separated>]
//! ```
//!
//! Examples:
//!
//! ```text
//! dsec prog.cee --emit report                 # what would be privatized
//! dsec prog.cee --emit source --threads 4     # the transformed program
//! dsec prog.cee --run --threads 8             # transform and execute
//! dsec prog.cee --run --serial                # reference run
//! dsec prog.cee --run --timing --metrics -    # telemetry JSON on stdout
//! dsec prog.cee --emit trace > trace.jsonl    # serial execution as JSONL
//! dsec prog.cee --emit chrome-trace > t.json  # Perfetto-loadable timeline
//! dsec prog.cee --emit flamegraph > t.folded  # folded flamegraph stacks
//! dsec prog.cee --run --daemon /tmp/dsed.sock # execute via a dsed daemon
//! dsec check prog.cee                         # soundness lints, text
//! dsec check prog.cee --strict --json         # CI gate, machine-readable
//! dsec profile prog.cee --threads 8           # per-loop opcode hot table
//! ```
//!
//! `dsec check` runs the privatization-soundness verifier (see DESIGN.md,
//! "Verification"): pass 1 cross-checks the profiled classifications
//! against a conservative static dependence approximation, pass 2 checks
//! the transformed output against the Table 1–3 invariants. The same
//! verifier runs automatically before `--emit source|report|bytecode`,
//! `--run` and `--metrics`; error-severity findings abort the drive.
//! `dsec check --backend` additionally verifies both executable encodings
//! (see DESIGN.md, "Backend verification"): stack-bytecode discipline and
//! bounds (`DSE010`/`DSE011`), register window/def-use/spill safety
//! (`DSE012`/`DSE013`), and symbolic stack-vs-register translation
//! validation (`DSE014`/`DSE015`). The same verification gates every
//! register-backend execution automatically (cached as the `regverify`
//! phase); `--run --exec-backend reg --strict` makes the VM itself refuse
//! any translation the verifier has not marked clean.
//!
//! Exit codes: `0` clean; `1` verifier errors (or warnings under
//! `--strict`), compile or runtime failures; `2` usage or I/O errors.
//!
//! `--timing` prints the phase timeline (parse, lower, profile, classify,
//! plan, xform) to stderr. `--metrics` writes a `RunMetrics` JSON document
//! (see DESIGN.md, "Observability") to a file, or to stdout with `-`.
//! `--emit trace` executes the *serial* program under a trace observer and
//! streams each sited access, loop event and heap event as one JSON object
//! per line on stdout. `--emit chrome-trace` and `--emit flamegraph`
//! execute the *transformed* program with the runtime trace ring enabled
//! (see DESIGN.md, "Tracing & profiling") and print a Chrome trace-event
//! JSON document (pipeline phases and runtime events on one timeline) or
//! folded flamegraph stacks. `dsec profile` runs the transformed program
//! under the attributing opcode profiler and prints a hot-loop table:
//! wall time, iterations, instruction-class mix and per-iteration cost
//! quantiles per loop.
//!
//! Every drive runs through the content-addressed pipeline
//! ([`dse_core::Pipeline`]): phases are computed once per process and
//! shared by every consumer (`--emit` handlers, the executed program, the
//! verifier, the telemetry snapshot). `--daemon <socket>` sends the request
//! to a running `dsed` daemon instead (see DESIGN.md, "The dsed daemon"),
//! where the same cache is shared across *processes and requests*.

use dse_core::{Analysis, ArtifactStore, OptLevel, Pipeline, Trace, TransformArt};
use dse_runtime::{BackendKind, Vm, VmConfig};
use dse_telemetry::{Json, LintStats, RunMetrics, TraceObserver};
use dse_verify::diag::Severity;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

/// Verifier errors (or strict-mode warnings), compile and runtime failures.
const EXIT_DIAG: u8 = 1;
/// Bad command line, unreadable input, unwritable output.
const EXIT_USAGE: u8 = 2;

struct Opts {
    path: String,
    threads: u32,
    opt: OptLevel,
    baseline: bool,
    emit: Vec<String>,
    run: bool,
    serial: bool,
    timing: bool,
    metrics: Option<String>,
    inputs: Vec<i64>,
    daemon: Option<String>,
    backend: BackendKind,
    strict: bool,
}

/// A drive failure, split by which exit code it maps to.
enum Fail {
    /// File system problem: exit 2.
    Io(String),
    /// Compile or runtime problem: exit 1.
    Other(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: dsec <program.cee> [--threads N] [--opt none|noconst|full] \
         [--baseline] [--emit source|report|ddg|bytecode|trace|chrome-trace|flamegraph] \
         [--run] [--serial] [--exec-backend stack|reg] [--strict] \
         [--timing] [--metrics <path|->] [--in 1,2,3] [--daemon <socket>]\n\
         \x20      dsec check <program.cee> [--strict] [--json] [--backend] [--threads N] \
         [--opt none|noconst|full] [--in 1,2,3] [--daemon <socket>]\n\
         \x20      dsec profile <program.cee> [--threads N] \
         [--opt none|noconst|full] [--in 1,2,3]"
    );
    std::process::exit(EXIT_USAGE as i32)
}

fn parse_opt_level(s: Option<&str>) -> OptLevel {
    match s {
        Some("none") => OptLevel::None,
        Some("noconst") => OptLevel::NoConstSpan,
        Some("full") => OptLevel::Full,
        _ => usage(),
    }
}

fn opt_name(opt: OptLevel) -> &'static str {
    match opt {
        OptLevel::None => "none",
        OptLevel::NoConstSpan => "noconst",
        OptLevel::Full => "full",
    }
}

fn parse_inputs(list: &str) -> Vec<i64> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect()
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        path: String::new(),
        threads: 4,
        opt: OptLevel::Full,
        baseline: false,
        emit: Vec::new(),
        run: false,
        serial: false,
        timing: false,
        metrics: None,
        inputs: Vec::new(),
        daemon: None,
        // `--exec-backend` overrides; otherwise DSE_EXEC_BACKEND decides.
        backend: BackendKind::from_env(),
        strict: false,
    };
    let mut args = args.iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                o.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--opt" => o.opt = parse_opt_level(args.next().map(String::as_str)),
            "--baseline" => o.baseline = true,
            "--emit" => {
                let what = args.next().unwrap_or_else(|| usage()).clone();
                if !matches!(
                    what.as_str(),
                    "source"
                        | "report"
                        | "ddg"
                        | "bytecode"
                        | "trace"
                        | "chrome-trace"
                        | "flamegraph"
                ) {
                    eprintln!("dsec: unknown --emit `{what}`");
                    std::process::exit(EXIT_USAGE as i32);
                }
                // A repeated value would just print the same artifact twice.
                if !o.emit.contains(&what) {
                    o.emit.push(what);
                }
            }
            "--run" => o.run = true,
            "--serial" => o.serial = true,
            "--strict" => o.strict = true,
            "--timing" => o.timing = true,
            "--metrics" => o.metrics = Some(args.next().unwrap_or_else(|| usage()).clone()),
            "--in" => o.inputs = parse_inputs(args.next().unwrap_or_else(|| usage())),
            "--exec-backend" => {
                o.backend = args
                    .next()
                    .and_then(|s| BackendKind::parse(s))
                    .unwrap_or_else(|| usage())
            }
            "--daemon" => o.daemon = Some(args.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => usage(),
            other if o.path.is_empty() && !other.starts_with('-') => o.path = other.to_string(),
            _ => usage(),
        }
    }
    if o.path.is_empty() {
        usage();
    }
    o
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check") {
        return check_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return profile_main(&args[1..]);
    }
    let o = parse_opts(&args);
    let result = match &o.daemon {
        Some(sock) => daemon_drive(&o, sock),
        None => drive(&o),
    };
    match result {
        Ok(code) => code,
        Err(Fail::Io(msg)) => {
            eprintln!("dsec: {msg}");
            ExitCode::from(EXIT_USAGE)
        }
        Err(Fail::Other(msg)) => {
            eprintln!("dsec: {msg}");
            ExitCode::from(EXIT_DIAG)
        }
    }
}

/// `dsec check <file>`: run the verifier and print the report.
fn check_main(args: &[String]) -> ExitCode {
    let mut path = String::new();
    let mut strict = false;
    let mut json = false;
    let mut backend = false;
    let mut sabotage: Option<dse_verify::sabotage::Kind> = None;
    let mut threads: u32 = 4;
    let mut opt = OptLevel::Full;
    let mut inputs: Vec<i64> = Vec::new();
    let mut daemon: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--json" => json = true,
            "--backend" => backend = true,
            // Undocumented: seed one known miscompile before verifying, so
            // CI's mutation-smoke step can prove the checkers fire.
            "--sabotage" => {
                let kind = it.next().unwrap_or_else(|| usage());
                sabotage = Some(dse_verify::sabotage::Kind::parse(kind).unwrap_or_else(|| {
                    eprintln!("dsec: unknown --sabotage kind `{kind}`");
                    std::process::exit(EXIT_USAGE as i32)
                }));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--opt" => opt = parse_opt_level(it.next().map(String::as_str)),
            "--in" => inputs = parse_inputs(it.next().unwrap_or_else(|| usage())),
            "--daemon" => daemon = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => usage(),
            other if path.is_empty() && !other.starts_with('-') => path = other.to_string(),
            _ => usage(),
        }
    }
    if path.is_empty() {
        usage();
    }
    if sabotage.is_some() && !backend {
        eprintln!("dsec: --sabotage requires --backend");
        return ExitCode::from(EXIT_USAGE);
    }
    if backend && daemon.is_some() {
        eprintln!(
            "dsec: --backend runs standalone; the daemon verifies translations \
             automatically on every register-backend run"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dsec: {path}: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Some(sock) = daemon {
        let req = Json::obj(vec![
            ("id", Json::Str("dsec-check".into())),
            ("cmd", Json::Str("check".into())),
            ("source", Json::Str(source)),
            ("threads", Json::Int(threads as i64)),
            ("opt", Json::Str(opt_name(opt).into())),
            ("strict", Json::Bool(strict)),
            (
                "in",
                Json::Arr(inputs.iter().map(|&n| Json::Int(n)).collect()),
            ),
        ]);
        return match daemon_request(&sock, &req) {
            Ok(resp) => {
                // `check` renders the report on stdout like the standalone
                // path; failures already carry exit 1 in the response.
                for d in diagnostics_of(&resp) {
                    println!("{d}");
                }
                exit_of(&resp)
            }
            Err(Fail::Io(msg)) => {
                eprintln!("dsec: {msg}");
                ExitCode::from(EXIT_USAGE)
            }
            Err(Fail::Other(msg)) => {
                eprintln!("dsec: {msg}");
                ExitCode::from(EXIT_DIAG)
            }
        };
    }
    let cfg = VmConfig {
        inputs_int: inputs,
        ..Default::default()
    };
    let store = ArtifactStore::new();
    let pipeline = Pipeline::new(&store);
    let mut trace = Trace::new();
    let art = match pipeline.analyze(&source, &cfg, &mut trace) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dsec: {e}");
            return ExitCode::from(EXIT_DIAG);
        }
    };
    // Pass 2 checks the transform's output, so the check transforms too.
    // A transform failure still reports pass 1 before failing.
    let transformed = pipeline.transform(&art, opt, threads, false, &mut trace);
    let mut report = match &transformed {
        Ok(t) => (*dse_verify::check_cached(&store, &art.analysis, t, &mut trace)).clone(),
        Err(_) => dse_verify::check_all(&art.analysis, None),
    };
    if backend {
        match sabotage {
            None => {
                // Verify both executable encodings of both programs, through
                // the cached `regverify` phase like the implicit run gate.
                let mut progs = vec![art.analysis.serial.clone()];
                if let Ok(t) = &transformed {
                    progs.push(t.transformed.parallel.clone());
                }
                for prog in &progs {
                    match pipeline.reglower(prog, &mut trace) {
                        Ok(regart) => report.extend(
                            (*dse_verify::check_backend_cached(&store, prog, &regart, &mut trace))
                                .clone(),
                        ),
                        Err(e) => {
                            eprintln!("dsec: register lowering failed: {e}");
                            return ExitCode::from(EXIT_DIAG);
                        }
                    }
                }
            }
            Some(kind) => {
                let prog = art.analysis.serial.clone();
                let sab = if kind.is_stack() {
                    let mut p = prog.clone();
                    let hit = dse_verify::sabotage::sabotage_stack(&mut p, kind);
                    hit.then(|| dse_verify::check_stack(&p))
                } else {
                    match dse_ir::regcode::translate(&prog) {
                        Ok(mut rp) => {
                            let hit = dse_verify::sabotage::sabotage_reg(&prog, &mut rp, kind);
                            hit.then(|| dse_verify::check_backend(&prog, &rp))
                        }
                        Err(e) => {
                            eprintln!("dsec: register lowering failed: {e}");
                            return ExitCode::from(EXIT_DIAG);
                        }
                    }
                };
                match sab {
                    Some(r) => report.extend(r),
                    None => {
                        eprintln!(
                            "dsec: program offers no site for sabotage `{}`",
                            kind.name()
                        );
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
        }
        report.sort();
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if let Err(e) = &transformed {
        eprintln!("dsec: transform failed: {e}");
        return ExitCode::from(EXIT_DIAG);
    }
    if report.should_fail(strict) {
        ExitCode::from(EXIT_DIAG)
    } else {
        ExitCode::SUCCESS
    }
}

/// The implicit verification pass before any use of the transform: prints
/// findings to stderr and fails the drive on error-severity ones. Cached by
/// the transform's content key, like every other phase.
fn verify_transform(
    store: &ArtifactStore,
    analysis: &Analysis,
    xform: &TransformArt,
    path: &str,
    trace: &mut Trace,
) -> Result<LintStats, Fail> {
    let report = dse_verify::check_cached(store, analysis, xform, trace);
    for d in &report.diagnostics {
        eprintln!("dsec: {}", d.render());
    }
    let stats = LintStats {
        errors: report.count(Severity::Error) as u64,
        warnings: report.count(Severity::Warning) as u64,
        infos: report.count(Severity::Info) as u64,
    };
    if report.should_fail(false) {
        return Err(Fail::Other(format!(
            "verification failed with {} error(s); see `dsec check {path}`",
            stats.errors
        )));
    }
    Ok(stats)
}

/// Builds a VM honoring the requested execution backend. The register
/// lowering runs as a cached pipeline phase ("reglower"), so repeated
/// drives of the same bytecode share one translation — and every
/// translation is gated through the cached `regverify` phase
/// (`DSE010`–`DSE015`) before a VM may execute it.
fn make_vm(
    store: &ArtifactStore,
    pipeline: &Pipeline,
    backend: BackendKind,
    compiled: dse_ir::bytecode::CompiledProgram,
    mut config: VmConfig,
    trace: &mut Trace,
) -> Result<Vm, Fail> {
    config.backend = backend;
    match backend {
        BackendKind::Stack => Vm::new(compiled, config),
        BackendKind::Reg => {
            let art = pipeline
                .reglower(&compiled, trace)
                .map_err(|e| Fail::Other(e.to_string()))?;
            let report = dse_verify::check_backend_cached(store, &compiled, &art, trace);
            if report.count(Severity::Error) > 0 {
                for d in &report.diagnostics {
                    eprintln!("dsec: {}", d.render());
                }
                return Err(Fail::Other(format!(
                    "register translation failed verification with {} error(s) \
                     (DSE010-DSE015); refusing to execute it",
                    report.count(Severity::Error)
                )));
            }
            Vm::with_reg(compiled, Arc::clone(&art.reg), config)
        }
    }
    .map_err(|e| Fail::Other(e.to_string()))
}

fn drive(o: &Opts) -> Result<ExitCode, Fail> {
    let source =
        std::fs::read_to_string(&o.path).map_err(|e| Fail::Io(format!("{}: {e}", o.path)))?;
    let cfg = VmConfig {
        inputs_int: o.inputs.clone(),
        ..Default::default()
    };
    // One process-local artifact store: every consumer below (emit
    // handlers, the executed program, the verifier, telemetry) shares the
    // same phase artifacts instead of recomputing them.
    let store = ArtifactStore::new();
    let pipeline = Pipeline::new(&store);
    let mut trace = Trace::new();
    let art = pipeline
        .analyze(&source, &cfg, &mut trace)
        .map_err(|e| Fail::Other(e.to_string()))?;
    let analysis = &art.analysis;

    let needs_transform = (o.run && !o.serial)
        || o.timing
        || o.metrics.is_some()
        || o.emit.iter().any(|e| {
            matches!(
                e.as_str(),
                "report" | "source" | "bytecode" | "chrome-trace" | "flamegraph"
            )
        });
    let transformed: Option<Arc<TransformArt>> = if needs_transform {
        Some(
            pipeline
                .transform(&art, o.opt, o.threads, o.baseline, &mut trace)
                .map_err(|e| Fail::Other(e.to_string()))?,
        )
    } else {
        None
    };

    // Every transform is verified before its output is used.
    let lints: Option<LintStats> = match &transformed {
        Some(t) => Some(verify_transform(&store, analysis, t, &o.path, &mut trace)?),
        None => None,
    };

    for emit in &o.emit {
        match emit.as_str() {
            "ddg" => {
                for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
                    println!(
                        "loop `{}`: {} iterations, {} sites, {} edges, mode {:?}",
                        ddg.label,
                        ddg.iterations,
                        ddg.site_counts.len(),
                        ddg.edges.len(),
                        cls.mode
                    );
                    let b = cls.access_breakdown(ddg);
                    let (f, e, c) = b.fractions();
                    println!(
                        "  accesses: {:.1}% free, {:.1}% expandable, {:.1}% carried",
                        100.0 * f,
                        100.0 * e,
                        100.0 * c
                    );
                }
            }
            "report" => {
                let t = &transformed
                    .as_ref()
                    .expect("transform computed above")
                    .transformed;
                let r = &t.report;
                println!("expansion report (N = {}, {:?}):", o.threads, o.opt);
                println!(
                    "  privatized data structures: {}",
                    r.privatized_structures()
                );
                println!("    heap allocation sites:    {}", r.expanded_allocs);
                println!("    globals:                  {}", r.expanded_globals);
                println!("    aggregate locals:         {}", r.expanded_locals);
                println!("  expanded scalars:           {}", r.expanded_scalar_locals);
                println!("  fat pointer types:          {}", r.fat_pointer_types);
                println!("  span-carrying integers:     {}", r.fat_int_vars);
                println!(
                    "  span stores inserted:       {} ({} elided)",
                    r.span_stores_emitted, r.span_stores_elided
                );
                println!(
                    "  private accesses redirected: {}",
                    r.private_accesses_redirected
                );
                for (label, mode) in &t.modes {
                    println!("  loop `{label}` scheduled {mode:?}");
                }
            }
            "source" => {
                let t = &transformed
                    .as_ref()
                    .expect("transform computed above")
                    .transformed;
                print!("{}", dse_lang::printer::print_program(&t.program));
            }
            "bytecode" => {
                let t = &transformed
                    .as_ref()
                    .expect("transform computed above")
                    .transformed;
                print!("{}", dse_ir::disasm::disassemble(&t.parallel));
            }
            "chrome-trace" | "flamegraph" => {
                let t = &transformed
                    .as_ref()
                    .expect("transform computed above")
                    .transformed;
                let mut vm = make_vm(
                    &store,
                    &pipeline,
                    o.backend,
                    t.parallel.clone(),
                    VmConfig {
                        nthreads: o.threads,
                        inputs_int: o.inputs.clone(),
                        trace: true,
                        strict: o.strict,
                        ..Default::default()
                    },
                    &mut trace,
                )?;
                vm.run().map_err(|e| Fail::Other(e.to_string()))?;
                let (mut events, dropped) = vm.take_trace();
                if emit == "flamegraph" {
                    print!("{}", dse_telemetry::flamegraph_folded(&events));
                    eprintln!("[flamegraph: {} events]", events.len());
                } else {
                    // VM timestamps are measured from `Vm::new`; shift them
                    // onto the store's epoch so pipeline phase spans and
                    // runtime events share one timeline.
                    let shift = vm
                        .trace_epoch()
                        .map(|e| e.saturating_duration_since(store.epoch()).as_nanos() as u64)
                        .unwrap_or(0);
                    for ev in &mut events {
                        ev.ts_ns += shift;
                    }
                    let spans = pipeline_spans(&trace);
                    println!("{}", dse_telemetry::chrome_trace(&events, &spans, dropped));
                    eprintln!("[chrome-trace: {} events, {dropped} dropped]", events.len());
                }
            }
            "trace" => {
                // The observer sees what the profiler sees: a serial
                // execution (parallel regions run unobserved by design).
                let mut vm = Vm::new(analysis.serial.clone(), cfg.clone())
                    .map_err(|e| Fail::Other(e.to_string()))?;
                let stdout = std::io::stdout();
                let mut obs = TraceObserver::new(std::io::BufWriter::new(stdout.lock()));
                vm.run_with_observer(&mut obs)
                    .map_err(|e| Fail::Other(e.to_string()))?;
                let events = obs.events();
                obs.finish().map_err(|e| Fail::Other(e.to_string()))?;
                eprintln!("[trace: {events} events]");
            }
            other => unreachable!("--emit values validated in parse_opts: {other}"),
        }
    }

    let mut exit = ExitCode::SUCCESS;
    let mut run_report = None;
    if o.run {
        let compiled = if o.serial {
            analysis.serial.clone()
        } else {
            transformed
                .as_ref()
                .expect("transform computed above")
                .transformed
                .parallel
                .clone()
        };
        let n = if o.serial { 1 } else { o.threads };
        let mut vm = make_vm(
            &store,
            &pipeline,
            o.backend,
            compiled,
            VmConfig {
                nthreads: n,
                inputs_int: o.inputs.clone(),
                strict: o.strict,
                ..Default::default()
            },
            &mut trace,
        )?;
        let report = vm.run().map_err(|e| Fail::Other(e.to_string()))?;
        print!("{}", vm.console());
        let outs = vm.outputs_int();
        if !outs.is_empty() {
            println!("out_long: {outs:?}");
        }
        let fouts = vm.outputs_float();
        if !fouts.is_empty() {
            println!("out_float: {fouts:?}");
        }
        eprintln!(
            "[{} instructions, peak heap {} bytes]",
            report.counters.work, report.peak_heap_bytes
        );
        if report.pool.workers > 0 {
            eprintln!(
                "[pool: {} workers, {} dispatches, {} steals, {} parks, {} wakeups]",
                report.pool.workers,
                report.pool.dispatches,
                report.pool.steals,
                report.pool.parks,
                report.pool.wakeups
            );
        }
        if let Some(dse_runtime::Value::I(code)) = report.return_value {
            exit = ExitCode::from((code & 0xff) as u8);
        }
        run_report = Some(report);
    }

    // Phase timeline: analysis phases followed by transform phases.
    let phases: Vec<dse_telemetry::PhaseSpan> = analysis
        .phases
        .iter()
        .chain(transformed.iter().flat_map(|t| t.transformed.phases.iter()))
        .cloned()
        .collect();

    if o.timing {
        let mut out = String::new();
        for p in &phases {
            p.render(0, &mut out);
        }
        eprint!("{out}");
    }

    if let Some(dest) = &o.metrics {
        let mut server = store.stats();
        server.requests = 1;
        let metrics = RunMetrics {
            program: o.path.clone(),
            threads: if o.serial { 1 } else { o.threads },
            opt: opt_name(o.opt).to_string(),
            phases,
            loops: analysis.loop_stats(),
            expansion: transformed
                .as_ref()
                .map(|t| t.transformed.report.telemetry_stats()),
            lints,
            vm: run_report
                .as_ref()
                .map(dse_telemetry::metrics::VmStats::from_report),
            server: Some(server),
        };
        let mut text = metrics.to_json().to_string();
        text.push('\n');
        if dest == "-" {
            std::io::stdout().write_all(text.as_bytes())?;
        } else {
            std::fs::write(dest, text).map_err(|e| Fail::Io(format!("{dest}: {e}")))?;
        }
    }

    Ok(exit)
}

/// Pipeline phase outcomes in the chrome exporter's neutral span form,
/// named `phase (outcome)` and placed at their store-epoch offsets.
fn pipeline_spans(trace: &Trace) -> Vec<dse_telemetry::PipelineSpan> {
    trace
        .iter()
        .map(|p| dse_telemetry::PipelineSpan {
            name: format!("{} ({})", p.phase, p.outcome.as_str()),
            ts_ns: p.at.as_nanos() as u64,
            dur_ns: p.wall.as_nanos() as u64,
        })
        .collect()
}

/// `dsec profile <file>`: run the transformed program under the
/// attributing opcode profiler and print the hot-loop table.
fn profile_main(args: &[String]) -> ExitCode {
    let mut path = String::new();
    let mut threads: u32 = 4;
    let mut opt = OptLevel::Full;
    let mut inputs: Vec<i64> = Vec::new();
    let mut explicit_backend: Option<BackendKind> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--opt" => opt = parse_opt_level(it.next().map(String::as_str)),
            "--in" => inputs = parse_inputs(it.next().unwrap_or_else(|| usage())),
            "--exec-backend" => {
                explicit_backend = Some(
                    it.next()
                        .and_then(|s| BackendKind::parse(s))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other if path.is_empty() && !other.starts_with('-') => path = other.to_string(),
            _ => usage(),
        }
    }
    if path.is_empty() {
        usage();
    }
    // The opcode profiler attributes per stack opcode; the register
    // backend's fused super-instructions would skew the table (DSE009).
    // An explicit request is a usage error; the ambient environment
    // default is overridden with a warning so `DSE_EXEC_BACKEND=reg`
    // sweeps still profile meaningfully.
    let backend = match explicit_backend {
        Some(BackendKind::Reg) => {
            eprintln!(
                "dsec: error[DSE009]: {}",
                dse_verify::diag::Code::ProfileBackendMismatch.summary()
            );
            eprintln!(
                "dsec: hint: fused register super-instructions skew per-opcode \
                 attribution; drop `--exec-backend reg` to profile on the stack \
                 (reference) encoding"
            );
            return ExitCode::from(EXIT_USAGE);
        }
        Some(b) => b,
        None => match BackendKind::from_env() {
            BackendKind::Reg => {
                eprintln!(
                    "dsec: warning[DSE009]: DSE_EXEC_BACKEND=reg ignored for \
                     profiling; pinning to the stack backend"
                );
                BackendKind::Stack
            }
            b => b,
        },
    };
    match profile_drive(&path, threads, opt, inputs, backend) {
        Ok(code) => code,
        Err(Fail::Io(msg)) => {
            eprintln!("dsec: {msg}");
            ExitCode::from(EXIT_USAGE)
        }
        Err(Fail::Other(msg)) => {
            eprintln!("dsec: {msg}");
            ExitCode::from(EXIT_DIAG)
        }
    }
}

fn profile_drive(
    path: &str,
    threads: u32,
    opt: OptLevel,
    inputs: Vec<i64>,
    backend: BackendKind,
) -> Result<ExitCode, Fail> {
    let source = std::fs::read_to_string(path).map_err(|e| Fail::Io(format!("{path}: {e}")))?;
    let cfg = VmConfig {
        inputs_int: inputs.clone(),
        ..Default::default()
    };
    let store = ArtifactStore::new();
    let pipeline = Pipeline::new(&store);
    let mut trace = Trace::new();
    let art = pipeline
        .analyze(&source, &cfg, &mut trace)
        .map_err(|e| Fail::Other(e.to_string()))?;
    let t = pipeline
        .transform(&art, opt, threads, false, &mut trace)
        .map_err(|e| Fail::Other(e.to_string()))?;
    verify_transform(&store, &art.analysis, &t, path, &mut trace)?;
    let prog = &t.transformed.parallel;
    let mut vm = make_vm(
        &store,
        &pipeline,
        backend,
        prog.clone(),
        VmConfig {
            nthreads: threads,
            inputs_int: inputs,
            opcode_profile: true,
            ..Default::default()
        },
        &mut trace,
    )?;
    vm.run().map_err(|e| Fail::Other(e.to_string()))?;
    print!("{}", render_profile(&vm.opcode_profile(), prog));
    Ok(ExitCode::SUCCESS)
}

/// The hot-loop table: one row per loop (the VM pre-sorts by wall time,
/// then instructions), with the class mix and iteration-cost quantiles.
fn render_profile(
    profiles: &[dse_runtime::LoopProfile],
    prog: &dse_ir::bytecode::CompiledProgram,
) -> String {
    use dse_runtime::{CLASS_NAMES, SERIAL_LOOP};
    let total: u64 = profiles.iter().map(|p| p.total_instructions()).sum();
    let mut out = format!(
        "{:<16} {:>9} {:>10} {:>12} {:>6} {:>7} {:>7} {:>7}  top classes\n",
        "loop", "wall ms", "iters", "instr", "%", "p50", "p90", "p99"
    );
    for p in profiles {
        let name = if p.loop_id == SERIAL_LOOP {
            "(serial)".to_string()
        } else {
            prog.loops
                .get(p.loop_id as usize)
                .map(|l| format!("`{}`", l.label))
                .unwrap_or_else(|| format!("loop {}", p.loop_id))
        };
        let instr = p.total_instructions();
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * instr as f64 / total as f64
        };
        let mut classes: Vec<(usize, u64)> = p
            .class_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        classes.sort_by_key(|c| std::cmp::Reverse(c.1));
        let mix = classes
            .iter()
            .take(3)
            .map(|&(i, c)| {
                format!(
                    "{} {:.0}%",
                    CLASS_NAMES[i],
                    100.0 * c as f64 / instr.max(1) as f64
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<16} {:>9.3} {:>10} {:>12} {:>5.1}% {:>7} {:>7} {:>7}  {mix}\n",
            name,
            p.wall_ns as f64 / 1e6,
            p.iters,
            instr,
            pct,
            p.iter_hist.percentile(0.5),
            p.iter_hist.percentile(0.9),
            p.iter_hist.percentile(0.99),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// the daemon client
// ---------------------------------------------------------------------------

/// `dsec ... --daemon <socket>`: sends the request to a running `dsed`
/// instead of driving the pipeline in-process. Unsupported-over-the-wire
/// flags (`--emit`, `--timing`, `--metrics`) are rejected up front.
fn daemon_drive(o: &Opts, sock: &str) -> Result<ExitCode, Fail> {
    if !o.emit.is_empty() || o.timing || o.metrics.is_some() {
        return Err(Fail::Io(
            "--daemon supports plain compile/run requests; \
             use the standalone driver for --emit/--timing/--metrics"
                .into(),
        ));
    }
    let source =
        std::fs::read_to_string(&o.path).map_err(|e| Fail::Io(format!("{}: {e}", o.path)))?;
    let req = Json::obj(vec![
        ("id", Json::Str("dsec".into())),
        (
            "cmd",
            Json::Str(if o.run { "run" } else { "compile" }.into()),
        ),
        ("source", Json::Str(source)),
        ("threads", Json::Int(o.threads as i64)),
        ("opt", Json::Str(opt_name(o.opt).into())),
        ("baseline", Json::Bool(o.baseline)),
        ("serial", Json::Bool(o.serial)),
        ("exec_backend", Json::Str(o.backend.name().into())),
        (
            "in",
            Json::Arr(o.inputs.iter().map(|&n| Json::Int(n)).collect()),
        ),
    ]);
    let resp = daemon_request(sock, &req)?;
    for d in diagnostics_of(&resp) {
        eprintln!("dsec: {d}");
    }
    if let Some(err) = resp.get("error").and_then(Json::as_str) {
        eprintln!("dsec: {err}");
    }
    if let Some(console) = resp.get("console").and_then(Json::as_str) {
        print!("{console}");
    }
    if let Some(outs) = resp.get("out_long").and_then(Json::as_arr) {
        if !outs.is_empty() {
            let outs: Vec<i64> = outs.iter().filter_map(Json::as_i64).collect();
            println!("out_long: {outs:?}");
        }
    }
    if let Some(fouts) = resp.get("out_float").and_then(Json::as_arr) {
        if !fouts.is_empty() {
            let fouts: Vec<f64> = fouts.iter().filter_map(Json::as_f64).collect();
            println!("out_float: {fouts:?}");
        }
    }
    Ok(exit_of(&resp))
}

/// One request/response round trip over the daemon's unix socket.
fn daemon_request(sock: &str, req: &Json) -> Result<Json, Fail> {
    use std::io::{BufRead, BufReader};
    let mut stream = std::os::unix::net::UnixStream::connect(sock)
        .map_err(|e| Fail::Io(format!("{sock}: {e}")))?;
    let mut line = req.to_string();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| Fail::Io(format!("{sock}: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| Fail::Io(format!("{sock}: {e}")))?;
    if resp.trim().is_empty() {
        return Err(Fail::Other(
            "daemon closed the connection without a response".into(),
        ));
    }
    Json::parse(resp.trim()).map_err(|e| Fail::Other(format!("bad daemon response: {e}")))
}

fn diagnostics_of(resp: &Json) -> Vec<String> {
    resp.get("diagnostics")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

fn exit_of(resp: &Json) -> ExitCode {
    let code = resp.get("exit").and_then(Json::as_i64).unwrap_or(1);
    ExitCode::from((code & 0xff) as u8)
}

impl From<std::io::Error> for Fail {
    fn from(e: std::io::Error) -> Fail {
        Fail::Io(e.to_string())
    }
}
