//! Pass 2: mechanical verification of the transform's invariants.
//!
//! The expansion pass promises exactly what Tables 1–3 of the paper specify.
//! This pass re-checks the promises over the *output* — the transformed AST
//! and its parallel bytecode — rather than trusting the transform:
//!
//! * **Redirection (Table 2, `DSE003`/`DSE004`)** — an abstract
//!   interpretation over the bytecode tracks, per operand-stack slot,
//!   whether a value is derived from the worker id (`__tid()` and its
//!   strength-reduced forms). Every access whose provenance maps to a
//!   thread-private source access must compute its address from the tid;
//!   every other provenanced access must not (shared accesses resolve to
//!   replica 0).
//! * **Span maintenance (Table 3, `DSE005`)** — over the transformed AST:
//!   a store to a promoted pointer (shadow `__sp_x` in scope) must be paired
//!   with a span store, come from a span-returning call, or be a
//!   span-preserving self-update; a store to a fat cell's `.ptr` must have a
//!   sibling `.span` store on the same cell.
//! * **DOACROSS windows (`DSE006`)** — each DOACROSS body region must
//!   contain exactly one `Wait` before one `Post`, with every ordered shared
//!   access between them; DOALL bodies must contain no synchronization.

use std::collections::{HashMap, HashSet};

use dse_analysis::PtObj;
use dse_core::{Analysis, Transformed};
use dse_ir::bytecode::{Builtin, CompiledProgram, Instr, Pc, RetKind};
use dse_ir::loops::ParMode;
use dse_ir::sites::{SiteId, NO_SITE};
use dse_lang::ast::*;
use dse_lang::printer;
use dse_lang::source::SourceSpan;
use dse_lang::types::Type;

use crate::diag::{Code, Diagnostic, Report};
use crate::walk;

/// Runs all transform-invariant checks, appending findings to `report`.
pub fn check(analysis: &Analysis, t: &Transformed, report: &mut Report) {
    let spans = source_spans(&analysis.program);
    check_redirection(analysis, t, &spans, report);
    check_span_maintenance(t, report);
    check_sync_windows(analysis, t, &spans, report);
}

/// eid → span index over the original program, for pointing diagnostics at
/// the source access a transformed site descends from.
fn source_spans(program: &Program) -> HashMap<u32, SourceSpan> {
    walk::eid_index(program)
        .into_iter()
        .map(|(eid, e)| (eid, e.span))
        .collect()
}

// ---- Table 2: redirection (DSE003 / DSE004) --------------------------------

/// Per-pc abstract state: one taint flag per operand-stack slot (top last).
type Stack = Vec<bool>;

/// Fixpoint of the tid-taint dataflow over the whole code array. Regions are
/// rooted at every function entry and every parallel-loop body entry with an
/// empty stack (matching how the VM enters them).
fn taint_fixpoint(prog: &CompiledProgram) -> HashMap<Pc, Stack> {
    let mut states: HashMap<Pc, Stack> = HashMap::new();
    let mut work: Vec<Pc> = Vec::new();
    for f in &prog.funcs {
        states.insert(f.entry, Vec::new());
        work.push(f.entry);
    }
    for l in &prog.loops {
        if l.mode.is_some() {
            states.insert(l.body_entry, Vec::new());
            work.push(l.body_entry);
        }
    }
    while let Some(pc) = work.pop() {
        let Some(stack) = states.get(&pc).cloned() else {
            continue;
        };
        let (next, succs) = step(prog, pc, stack);
        for s in succs {
            let changed = match states.get_mut(&s) {
                Some(old) => merge(old, &next),
                None => {
                    states.insert(s, next.clone());
                    true
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    states
}

/// Joins `incoming` into `old` (pointwise OR, aligned from the stack top).
/// Returns true when `old` changed.
fn merge(old: &mut Stack, incoming: &Stack) -> bool {
    let mut changed = false;
    if old.len() > incoming.len() {
        // Mismatched depths cannot happen in well-formed lowering output;
        // keep the common top-aligned suffix to stay defined regardless.
        let drop = old.len() - incoming.len();
        old.drain(..drop);
        changed = true;
    }
    let skip = incoming.len() - old.len();
    for (o, i) in old.iter_mut().zip(incoming[skip..].iter()) {
        if *i && !*o {
            *o = true;
            changed = true;
        }
    }
    changed
}

/// Executes one instruction abstractly: returns the outgoing stack and the
/// successor pcs.
fn step(prog: &CompiledProgram, pc: Pc, mut st: Stack) -> (Stack, Vec<Pc>) {
    let pop = |st: &mut Stack| st.pop().unwrap_or(false);
    let next = vec![pc + 1];
    let succs = match prog.code[pc as usize] {
        Instr::PushI(_) | Instr::PushF(_) => {
            st.push(false);
            next
        }
        Instr::Dup => {
            let t = *st.last().unwrap_or(&false);
            st.push(t);
            next
        }
        Instr::Drop => {
            pop(&mut st);
            next
        }
        Instr::Tuck => {
            // [a, b] -> [b, a, b]
            let b = pop(&mut st);
            let a = pop(&mut st);
            st.push(b);
            st.push(a);
            st.push(b);
            next
        }
        Instr::FrameAddr(_) | Instr::GlobalAddr(_) | Instr::IterIdx(_) => {
            st.push(false);
            next
        }
        Instr::TidScaled(_) => {
            st.push(true);
            next
        }
        Instr::TidSpanScaled(_) => {
            pop(&mut st);
            st.push(true);
            next
        }
        Instr::FrameAddrTid { .. } | Instr::GlobalAddrTid { .. } => {
            st.push(true);
            next
        }
        Instr::Load { .. } => {
            pop(&mut st);
            st.push(false);
            next
        }
        Instr::Store { .. } => {
            pop(&mut st);
            pop(&mut st);
            next
        }
        Instr::MemCpy { .. } => {
            pop(&mut st);
            pop(&mut st);
            next
        }
        Instr::IBin(_) | Instr::FBin(_) | Instr::ICmp(_) | Instr::FCmp(_) => {
            let b = pop(&mut st);
            let a = pop(&mut st);
            st.push(a || b);
            next
        }
        Instr::INeg
        | Instr::FNeg
        | Instr::BNot
        | Instr::LNot
        | Instr::I2F
        | Instr::F2I
        | Instr::SextTrunc(_) => {
            let t = pop(&mut st);
            st.push(t);
            next
        }
        Instr::Jump(t) => vec![t],
        Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => {
            pop(&mut st);
            vec![t, pc + 1]
        }
        Instr::Call(f) => {
            for _ in 0..prog.func(f).params.len() {
                pop(&mut st);
            }
            // The callee's return value arrives via the shared operand
            // stack; redirection offsets are applied at access sites, so a
            // returned value is treated as tid-clean.
            if prog.func(f).ret == RetKind::Scalar {
                st.push(false);
            }
            next
        }
        Instr::CallBuiltin(b) => {
            for _ in 0..b.arity() {
                pop(&mut st);
            }
            if b.has_result() {
                st.push(b == Builtin::Tid);
            }
            next
        }
        Instr::Ret | Instr::Halt => Vec::new(),
        Instr::LoopMark(..) => next,
        Instr::ParLoop(_) => {
            pop(&mut st);
            pop(&mut st);
            next
        }
        Instr::Wait(_) | Instr::Post(_) => next,
        Instr::Localize { .. } => {
            // The runtime-privatization hook translates an address into the
            // current worker's private copy — tid-derived by definition.
            pop(&mut st);
            st.push(true);
            next
        }
    };
    (st, succs)
}

/// Taint of the address operand of the access at `pc`, given the incoming
/// stack. `Load` pops the address from the top; `Store` pops value, then
/// address; `MemCpy` pops destination, then source.
fn addr_taints(instr: Instr, st: &Stack) -> Vec<(SiteId, bool)> {
    let at = |depth: usize| st.iter().rev().nth(depth).copied().unwrap_or(false);
    match instr {
        Instr::Load { site, .. } => vec![(site, at(0))],
        Instr::Store { site, .. } => vec![(site, at(1))],
        Instr::MemCpy {
            load_site,
            store_site,
            ..
        } => vec![(store_site, at(0)), (load_site, at(1))],
        _ => Vec::new(),
    }
}

fn check_redirection(
    analysis: &Analysis,
    t: &Transformed,
    spans: &HashMap<u32, SourceSpan>,
    report: &mut Report,
) {
    let states = taint_fixpoint(&t.parallel);
    let orig_index = walk::eid_index(&analysis.program);
    // One finding per original access, not per bytecode occurrence.
    let mut flagged: HashSet<(u32, Code)> = HashSet::new();
    for (&pc, st) in &states {
        let instr = t.parallel.code[pc as usize];
        for (site, tainted) in addr_taints(instr, st) {
            if site == NO_SITE {
                continue;
            }
            let teid = t.parallel.sites.info(site).eid;
            if teid == NO_EID {
                continue;
            }
            let Some(&orig) = t.eid_provenance.get(&teid) else {
                continue;
            };
            let private = t.plan.private_eids.contains(&orig);
            if private {
                if tainted || !must_redirect(analysis, t, orig) {
                    continue;
                }
                if flagged.insert((orig, Code::PrivateNotRedirected)) {
                    let mut d = Diagnostic::new(
                        Code::PrivateNotRedirected,
                        format!(
                            "thread-private access `{}` is not redirected through \
                             the thread id after expansion (Table 2 violation)",
                            describe(orig, &orig_index, &analysis.program)
                        ),
                    );
                    if let Some(sp) = spans.get(&orig) {
                        d = d.with_span(*sp);
                    }
                    report.push(d);
                }
            } else if tainted && flagged.insert((orig, Code::SharedNotReplicaZero)) {
                let mut d = Diagnostic::new(
                    Code::SharedNotReplicaZero,
                    format!(
                        "shared access `{}` computes its address from the thread \
                         id; shared accesses must resolve to replica 0 \
                         (Table 2 violation)",
                        describe(orig, &orig_index, &analysis.program)
                    ),
                );
                if let Some(sp) = spans.get(&orig) {
                    d = d.with_span(*sp);
                }
                report.push(d);
            }
        }
    }
}

/// Whether a private access is actually required to carry a tid offset:
/// indirect accesses always are; direct accesses only when their variable
/// was expanded (pruned variables keep their single copy).
fn must_redirect(analysis: &Analysis, t: &Transformed, orig_eid: u32) -> bool {
    if analysis.pt.site_is_indirect(orig_eid) {
        return true;
    }
    analysis
        .pt
        .objects_of_site(orig_eid)
        .iter()
        .any(|o| matches!(o, PtObj::Var(_)) && t.plan.expanded.contains(o))
}

fn describe(eid: u32, index: &HashMap<u32, &Expr>, program: &Program) -> String {
    index
        .get(&eid)
        .map(|e| printer::expr(e, program))
        .unwrap_or_else(|| format!("eid#{eid}"))
}

// ---- Table 3: span maintenance (DSE005) ------------------------------------

fn check_span_maintenance(t: &Transformed, report: &mut Report) {
    let p = &t.program;
    // Promoted pointers are recognizable by their shadow span slots.
    let global_shadows: HashSet<String> = p
        .globals
        .iter()
        .filter_map(|g| g.name.strip_prefix("__sp_").map(str::to_string))
        .collect();
    for f in &p.functions {
        let mut shadows = global_shadows.clone();
        for prm in &f.params {
            if let Some(x) = prm.name.strip_prefix("__sp_") {
                shadows.insert(x.to_string());
            }
        }
        collect_local_shadows(&f.body, &mut shadows);
        check_block_spans(&f.body, &shadows, p, report);
    }
}

fn collect_local_shadows(b: &Block, out: &mut HashSet<String>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { name, .. } => {
                if let Some(x) = name.strip_prefix("__sp_") {
                    out.insert(x.to_string());
                }
            }
            StmtKind::If { then, els, .. } => {
                collect_local_shadows(then, out);
                if let Some(e) = els {
                    collect_local_shadows(e, out);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => collect_local_shadows(body, out),
            StmtKind::Block(inner) => collect_local_shadows(inner, out),
            _ => {}
        }
    }
}

fn check_block_spans(b: &Block, shadows: &HashSet<String>, p: &Program, report: &mut Report) {
    for (i, s) in b.stmts.iter().enumerate() {
        match &s.kind {
            StmtKind::Expr(e) => check_stmt_expr(e, i, b, shadows, p, report),
            StmtKind::If { then, els, .. } => {
                check_block_spans(then, shadows, p, report);
                if let Some(els) = els {
                    check_block_spans(els, shadows, p, report);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => check_block_spans(body, shadows, p, report),
            StmtKind::Block(inner) => check_block_spans(inner, shadows, p, report),
            _ => {}
        }
    }
}

fn check_stmt_expr(
    e: &Expr,
    idx: usize,
    block: &Block,
    shadows: &HashSet<String>,
    p: &Program,
    report: &mut Report,
) {
    let ExprKind::Assign {
        op: AssignOp::Set,
        lhs,
        rhs,
    } = &e.kind
    else {
        return;
    };
    match &lhs.kind {
        // Promoted scalar pointer / difference integer: `x = rhs` with a
        // `__sp_x` shadow in scope.
        ExprKind::Var { name, .. } if shadows.contains(name) => {
            let ok = later_stores_shadow(block, idx, name)
                || call_writes_shadow(rhs, name)
                || self_update(rhs, name);
            if !ok {
                report.push(
                    Diagnostic::new(
                        Code::SpanNotMaintained,
                        format!(
                            "promoted pointer `{name}` is assigned without updating \
                             its span shadow `__sp_{name}` (Table 3 violation)"
                        ),
                    )
                    .with_span(e.span),
                );
            }
        }
        // Fat cell: `cell.ptr = rhs` needs a sibling `cell.span = ...`.
        ExprKind::Field { base, field } if field == "ptr" && is_fat_struct(base, p) => {
            let key = printer::expr(base, p);
            let paired = block.stmts.iter().any(|s| {
                if let StmtKind::Expr(e2) = &s.kind {
                    if let ExprKind::Assign {
                        op: AssignOp::Set,
                        lhs: l2,
                        ..
                    } = &e2.kind
                    {
                        if let ExprKind::Field {
                            base: b2,
                            field: f2,
                        } = &l2.kind
                        {
                            return f2 == "span" && printer::expr(b2, p) == key;
                        }
                    }
                }
                false
            });
            if !paired {
                report.push(
                    Diagnostic::new(
                        Code::SpanNotMaintained,
                        format!(
                            "fat cell `{key}` has its `.ptr` field stored without a \
                             sibling `.span` store (Table 3 violation)"
                        ),
                    )
                    .with_span(e.span),
                );
            }
        }
        _ => {}
    }
}

/// Is `base` a value of one of the transform's `__fat_*` record types?
fn is_fat_struct(base: &Expr, p: &Program) -> bool {
    match base.ty.as_ref() {
        Some(Type::Struct(id)) => p.types.struct_def(*id).name.starts_with("__fat_"),
        _ => false,
    }
}

/// Does a later statement of the same block store `__sp_<name>` (directly or
/// as an expanded span cell `__sp_<name>[...]`)?
fn later_stores_shadow(block: &Block, idx: usize, name: &str) -> bool {
    let shadow = format!("__sp_{name}");
    block.stmts.iter().skip(idx + 1).any(|s| {
        if let StmtKind::Expr(e) = &s.kind {
            if let ExprKind::Assign {
                op: AssignOp::Set,
                lhs,
                ..
            } = &e.kind
            {
                let root = match &lhs.kind {
                    ExprKind::Index { base, .. } => base,
                    _ => lhs,
                };
                return matches!(&root.kind, ExprKind::Var { name: n, .. } if *n == shadow);
            }
        }
        false
    })
}

/// Is the right-hand side a call that receives `&__sp_<name>` as its span
/// out-parameter?
fn call_writes_shadow(rhs: &Expr, name: &str) -> bool {
    let shadow = format!("__sp_{name}");
    let ExprKind::Call { args, .. } = &rhs.kind else {
        return false;
    };
    args.iter().any(|a| {
        if let ExprKind::AddrOf(inner) = &a.kind {
            return matches!(&inner.kind, ExprKind::Var { name: n, .. } if *n == shadow);
        }
        false
    })
}

/// `x = x ± c` keeps the span (Table 3 "Pointer arithmetic 1"); the
/// transform elides the redundant span store under `-O full`.
fn self_update(rhs: &Expr, name: &str) -> bool {
    match &rhs.kind {
        ExprKind::Cast(_, inner) => self_update(inner, name),
        ExprKind::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            let is_dst = |x: &Expr| matches!(&x.kind, ExprKind::Var { name: n, .. } if n == name);
            (is_dst(l) && matches!(r.kind, ExprKind::IntLit(_)))
                || (is_dst(r) && matches!(l.kind, ExprKind::IntLit(_)))
        }
        _ => false,
    }
}

// ---- DOACROSS sync windows (DSE006) ----------------------------------------

fn check_sync_windows(
    analysis: &Analysis,
    t: &Transformed,
    spans: &HashMap<u32, SourceSpan>,
    report: &mut Report,
) {
    let ordered = analysis.shared_carried_eids();
    let orig_index = walk::eid_index(&analysis.program);
    for (loop_id, l) in t.parallel.loops.iter().enumerate() {
        let Some(mode) = l.mode else { continue };
        let region = body_region(&t.parallel, l.body_entry);
        let mut waits: Vec<Pc> = Vec::new();
        let mut posts: Vec<Pc> = Vec::new();
        let mut accesses: Vec<(Pc, u32)> = Vec::new();
        let ordered_eids = ordered.get(&l.label).cloned().unwrap_or_default();
        for pc in region.clone() {
            match t.parallel.code[pc as usize] {
                Instr::Wait(id) if id as usize == loop_id => waits.push(pc),
                Instr::Post(id) if id as usize == loop_id => posts.push(pc),
                Instr::Load { site, .. } | Instr::Store { site, .. } if site != NO_SITE => {
                    let teid = t.parallel.sites.info(site).eid;
                    if let Some(&orig) = t.eid_provenance.get(&teid) {
                        if ordered_eids.contains(&orig) {
                            accesses.push((pc, orig));
                        }
                    }
                }
                _ => {}
            }
        }
        match mode {
            ParMode::DoAll => {
                if !waits.is_empty() || !posts.is_empty() {
                    report.push(
                        Diagnostic::new(
                            Code::SyncWindowViolation,
                            "DOALL body contains Wait/Post synchronization",
                        )
                        .with_loop(&l.label),
                    );
                }
            }
            ParMode::DoAcross => {
                if waits.len() != 1 || posts.len() != 1 || waits[0] >= posts[0] {
                    report.push(
                        Diagnostic::new(
                            Code::SyncWindowViolation,
                            format!(
                                "DOACROSS body must contain exactly one Wait before \
                                 one Post (found {} Wait, {} Post)",
                                waits.len(),
                                posts.len()
                            ),
                        )
                        .with_loop(&l.label),
                    );
                    continue;
                }
                let (w, p) = (waits[0], posts[0]);
                for (pc, orig) in accesses {
                    if pc <= w || pc >= p {
                        let mut d = Diagnostic::new(
                            Code::SyncWindowViolation,
                            format!(
                                "ordered shared access `{}` lies outside the \
                                 Wait/Post window of its DOACROSS loop",
                                describe(orig, &orig_index, &analysis.program)
                            ),
                        )
                        .with_loop(&l.label);
                        if let Some(sp) = spans.get(&orig) {
                            d = d.with_span(*sp);
                        }
                        report.push(d);
                    }
                }
            }
        }
    }
}

/// The contiguous pc range of an outlined loop body: from its entry to the
/// first `Ret` at or beyond every jump target seen so far.
fn body_region(prog: &CompiledProgram, entry: Pc) -> std::ops::Range<Pc> {
    let mut max_target = entry;
    let mut pc = entry;
    loop {
        match prog.code[pc as usize] {
            Instr::Jump(t) | Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => {
                max_target = max_target.max(t);
            }
            Instr::Ret if pc >= max_target => return entry..pc + 1,
            _ => {}
        }
        pc += 1;
        if pc as usize >= prog.code.len() {
            return entry..pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_pointwise_or_from_top() {
        let mut a = vec![false, false];
        assert!(merge(&mut a, &vec![true, false, true]));
        assert_eq!(a, vec![false, true]);
        assert!(!merge(&mut a, &vec![false, false]));
    }

    #[test]
    fn self_update_recognizes_pointer_bump() {
        let p = Expr::new(
            ExprKind::Var {
                name: "p".into(),
                binding: None,
            },
            Default::default(),
        );
        let one = Expr::new(ExprKind::IntLit(1), Default::default());
        let rhs = Expr::new(
            ExprKind::Binary(BinOp::Add, Box::new(p), Box::new(one)),
            Default::default(),
        );
        assert!(self_update(&rhs, "p"));
        assert!(!self_update(&rhs, "q"));
    }
}
