//! Seeded miscompile injection for exercising the backend verifier.
//!
//! Each [`Kind`] applies one small, targeted mutation to an otherwise
//! correct program — the classic translation-validation smoke test: if the
//! checker family cannot catch a *known* miscompile, its proofs are
//! worthless. Every kind maps to exactly one lint code, and the cascade in
//! [`crate::check_backend`] (structural before flow, bounds before
//! dataflow, register checks before translation validation) guarantees the
//! mutation surfaces as that code and no earlier one.
//!
//! Used by the `backend_sabotage` test suite and exposed through the hidden
//! `dsec check --backend --sabotage <kind>` flag so CI's mutation-smoke
//! step can drive it end to end.

use dse_ir::bytecode::{CompiledProgram, Instr};
use dse_ir::sites::NO_SITE;
use dse_ir::{for_each_dst, for_each_src, RInstr, RegProgram};

use crate::diag::Code;

/// One seeded miscompile. `expected_code` names the checker that must fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Flip a push into a drop so paths reach a join at different depths.
    StackDepth,
    /// Retarget a stack jump past the end of the code.
    BadJump,
    /// Shrink the declared register window below the highest register used.
    ShrinkWindow,
    /// Overwrite the spill preceding a call, leaving the reload to
    /// resurrect a stale promoted value.
    DropSpill,
    /// Swap the operands of an integer binop.
    SwapReg,
    /// Replace a promoted narrow store's sign-extension with a no-op move.
    SkipSext,
}

/// All kinds, in lint-code order — the CI mutation-smoke step iterates this.
pub const ALL: [Kind; 6] = [
    Kind::StackDepth,
    Kind::BadJump,
    Kind::ShrinkWindow,
    Kind::DropSpill,
    Kind::SwapReg,
    Kind::SkipSext,
];

impl Kind {
    /// The command-line spelling (`--sabotage <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Kind::StackDepth => "stack-depth",
            Kind::BadJump => "bad-jump",
            Kind::ShrinkWindow => "shrink-window",
            Kind::DropSpill => "drop-spill",
            Kind::SwapReg => "swap-reg",
            Kind::SkipSext => "skip-sext",
        }
    }

    /// Parses the command-line spelling.
    pub fn parse(s: &str) -> Option<Kind> {
        ALL.into_iter().find(|k| k.name() == s)
    }

    /// The one lint code this mutation must surface as.
    pub fn expected_code(self) -> Code {
        match self {
            Kind::StackDepth => Code::StackDiscipline,
            Kind::BadJump => Code::StackBounds,
            Kind::ShrinkWindow => Code::RegWindowBounds,
            Kind::DropSpill => Code::RegDefUse,
            Kind::SwapReg => Code::TranslationDivergence,
            Kind::SkipSext => Code::TranslationPrecision,
        }
    }

    /// True when the mutation applies to the stack program (before
    /// translation) rather than the register translation.
    pub fn is_stack(self) -> bool {
        matches!(self, Kind::StackDepth | Kind::BadJump)
    }
}

/// Applies a stack-side mutation in place. Returns `false` when the program
/// offers no site for this kind (e.g. no jump to retarget).
pub fn sabotage_stack(prog: &mut CompiledProgram, kind: Kind) -> bool {
    let n = prog.code.len() as u32;
    match kind {
        Kind::StackDepth => {
            // Net +1 becomes net -1: some join or terminator sees the skew.
            for ins in prog.code.iter_mut() {
                if matches!(ins, Instr::PushI(_)) {
                    *ins = Instr::Drop;
                    return true;
                }
            }
            false
        }
        Kind::BadJump => {
            for ins in prog.code.iter_mut() {
                match ins {
                    Instr::Jump(t) | Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => {
                        *t = n + 16;
                        return true;
                    }
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}

/// Applies a register-side mutation in place. Returns `false` when the
/// translation offers no site for this kind (e.g. no promoted narrow store
/// to break). `prog` is the stack program the translation came from (needed
/// to enumerate call-argument source registers).
pub fn sabotage_reg(prog: &CompiledProgram, rp: &mut RegProgram, kind: Kind) -> bool {
    match kind {
        Kind::ShrinkWindow => {
            // frame_regs carries slack above the deepest live register, so
            // a naive -1 would go unnoticed; clamp to the highest register
            // any instruction actually touches.
            let mut max_used: Option<u16> = None;
            for ins in &rp.code {
                let mut note = |r: u16| max_used = Some(max_used.map_or(r, |m| m.max(r)));
                for_each_dst(ins, &mut note);
                for_each_src(ins, prog, &mut note);
            }
            match max_used {
                Some(m) => {
                    rp.frame_regs = m as u32;
                    true
                }
                None => false,
            }
        }
        Kind::DropSpill => {
            // A spill is the StFrame immediately before a Call; overwrite
            // it so the paired reload restores a stale value.
            for pc in 1..rp.code.len() {
                if matches!(rp.code[pc], RInstr::Call { .. })
                    && matches!(rp.code[pc - 1], RInstr::StFrame { site: NO_SITE, .. })
                {
                    rp.code[pc - 1] = RInstr::Mov { d: 0, s: 0 };
                    return true;
                }
            }
            false
        }
        Kind::SwapReg => {
            for ins in rp.code.iter_mut() {
                if let RInstr::IBin { l, r, .. } = ins {
                    if l != r {
                        std::mem::swap(l, r);
                        return true;
                    }
                }
            }
            false
        }
        Kind::SkipSext => {
            // Only the Sext instructions canonicalizing a promoted narrow
            // store feed the DSE015 path; collect the promoted registers
            // first and break the first Sext aimed at one of them.
            let sregs: Vec<u16> = rp
                .promo
                .promoted
                .values()
                .map(|&(sreg, _, _)| sreg)
                .collect();
            for ins in rp.code.iter_mut() {
                if let RInstr::Sext { d, w } = *ins {
                    if w < 8 && sregs.contains(&d) {
                        *ins = RInstr::Mov { d, s: d };
                        return true;
                    }
                }
            }
            false
        }
        _ => false,
    }
}
