//! Pass 1: static cross-check of the profiled classification.
//!
//! The paper's classification (Definition 5) is built from *one profiling
//! run*: a class is thread-private when that run saw every read preceded by
//! a same-iteration write. On a different input the store may not happen and
//! the "private" read becomes a loop-carried flow dependence — a race after
//! expansion. This pass re-derives, purely statically, which profiled-private
//! classes are *guaranteed* to be written before read in every iteration:
//!
//! * a scalar is covered once an unconditional top-level assignment (or its
//!   declaration initializer) kills it before the reads;
//! * an array/heap class is covered when its loads sit in a canonical
//!   `for (k = lo; k < hi; k++)` loop over `root[k]` and an earlier
//!   unconditional canonical store loop with *syntactically identical*
//!   bounds wrote `root[k]` — identical bounds make the argument
//!   per-element, so zero-trip loops are covered too;
//! * kills under `if`/non-canonical loops are discarded (they may not
//!   execute), and calls to user functions invalidate range kills (the
//!   callee may reassign the root pointer).
//!
//! Classes the profile calls private but this approximation cannot confirm
//! get `DSE001` (warning by default — the profile may well be right; the
//! point is that its soundness rests on input coverage). The pass also
//! reports `DSE002` when a private class and a shared access may alias in
//! the points-to graph despite the profile never observing it, and `DSE008`
//! for candidate loops whose profile run never iterated.

use std::collections::{HashMap, HashSet};

use dse_analysis::PtObj;
use dse_core::{Analysis, LoopClassification, SiteClass};
use dse_depprof::LoopDdg;
use dse_ir::loops::ParMode;
use dse_ir::sites::{AccessKind, SiteId};
use dse_lang::ast::*;
use dse_lang::printer;
use dse_lang::source::SourceSpan;

use crate::diag::{Code, Diagnostic, Report};
use crate::walk::{self, CandidateLoop};

/// One access class of a candidate loop, with the profiled verdict and the
/// static one side by side (the `inspect_ddg` example renders these).
#[derive(Debug, Clone)]
pub struct ClassDiff {
    /// Printed representative access, e.g. `scratch[(k)]`.
    pub repr: String,
    /// Expression ids of the class's access sites.
    pub eids: Vec<u32>,
    /// True when the profile classified the class thread-private.
    pub profiled_private: bool,
    /// True when the static coverage argument confirms every read is killed
    /// in-iteration (only meaningful for profiled-private classes).
    pub statically_confirmed: bool,
    /// Why confirmation failed, when it did.
    pub reason: Option<String>,
    /// Source location of the representative access.
    pub span: Option<SourceSpan>,
}

/// Static-vs-profiled summary for one candidate loop.
#[derive(Debug, Clone)]
pub struct LoopDiff {
    /// Loop label.
    pub label: String,
    /// Iterations observed while profiling.
    pub iterations: u64,
    /// Chosen parallelization mode.
    pub mode: ParMode,
    /// Access classes, largest first.
    pub classes: Vec<ClassDiff>,
}

/// Computes the static-vs-profiled dependence diff for every candidate loop.
pub fn loop_diffs(analysis: &Analysis) -> Vec<LoopDiff> {
    let cands = walk::candidate_loops(&analysis.program);
    let eids = walk::eid_index(&analysis.program);
    let mut out = Vec::new();
    for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
        let cand = cands.iter().find(|c| c.label == cls.label);
        out.push(diff_loop(analysis, ddg, cls, cand, &eids));
    }
    out
}

/// Runs the pass, appending findings to `report`.
pub fn check(analysis: &Analysis, report: &mut Report) {
    let cands = walk::candidate_loops(&analysis.program);
    let eids = walk::eid_index(&analysis.program);
    for (ddg, cls) in analysis.profile.loops.iter().zip(&analysis.classifications) {
        let cand = cands.iter().find(|c| c.label == cls.label);
        if ddg.iterations == 0 {
            let mut d = Diagnostic::new(
                Code::ZeroIterationProfile,
                "candidate loop executed 0 iterations under the profiling input; \
                 its classification is vacuous",
            )
            .with_loop(&cls.label);
            if let Some(c) = cand {
                d = d.with_span(c.span);
            }
            report.push(d);
            continue;
        }
        let diff = diff_loop(analysis, ddg, cls, cand, &eids);
        let shared_objs = shared_objects(analysis, cls);
        for class in &diff.classes {
            if !class.profiled_private {
                continue;
            }
            if !class.statically_confirmed {
                let reason = class
                    .reason
                    .clone()
                    .unwrap_or_else(|| "no guaranteed same-iteration store found".into());
                let mut d = Diagnostic::new(
                    Code::ProfileUnsound,
                    format!(
                        "profiled-private class `{}` is not provably written before \
                         read each iteration: {reason}; on other inputs this read \
                         may carry a flow dependence across iterations",
                        class.repr
                    ),
                )
                .with_loop(&cls.label);
                if let Some(span) = class.span {
                    d = d.with_span(span);
                }
                report.push(d);
            }
            let objs: HashSet<PtObj> = class
                .eids
                .iter()
                .flat_map(|&e| analysis.pt.objects_of_site(e))
                .collect();
            if objs.iter().any(|o| shared_objs.contains(o)) {
                let mut d = Diagnostic::new(
                    Code::MayAliasUnobserved,
                    format!(
                        "private class `{}` may alias a shared access of this loop \
                         in the points-to graph, though the profile never observed \
                         a dependence between them",
                        class.repr
                    ),
                )
                .with_loop(&cls.label);
                if let Some(span) = class.span {
                    d = d.with_span(span);
                }
                report.push(d);
            }
        }
    }
}

/// Union of abstract objects touched by the loop's shared sites.
fn shared_objects(analysis: &Analysis, cls: &LoopClassification) -> HashSet<PtObj> {
    cls.site_class
        .iter()
        .filter(|(_, c)| **c == SiteClass::Shared)
        .filter_map(|(s, _)| {
            let eid = analysis.serial.sites.info(*s).eid;
            (eid != NO_EID).then_some(eid)
        })
        .flat_map(|e| analysis.pt.objects_of_site(e))
        .collect()
}

fn diff_loop(
    analysis: &Analysis,
    ddg: &LoopDdg,
    cls: &LoopClassification,
    cand: Option<&CandidateLoop<'_>>,
    eid_index: &HashMap<u32, &Expr>,
) -> LoopDiff {
    // Group sites into classes.
    let mut groups: HashMap<SiteId, Vec<SiteId>> = HashMap::new();
    for (&site, &rep) in &cls.class_of {
        groups.entry(rep).or_default().push(site);
    }

    // Map load eid -> class rep for the private classes, then scan.
    let mut load_class: HashMap<u32, SiteId> = HashMap::new();
    for (&rep, sites) in &groups {
        if !cls.is_private(rep) {
            continue;
        }
        for &s in sites {
            let info = analysis.serial.sites.info(s);
            if info.kind == AccessKind::Load && info.eid != NO_EID {
                load_class.insert(info.eid, rep);
            }
        }
    }
    let coverage = cand.map(|c| {
        let mut scanner = Scanner {
            program: &analysis.program,
            load_class: &load_class,
            uncovered: HashMap::new(),
            seen_loads: HashSet::new(),
        };
        let mut st = KillState::default();
        scanner.scan_block(c.body, &mut st, None);
        // Loads the body scan never reached (e.g. inside called functions)
        // are beyond the coverage argument.
        for (&eid, &rep) in &load_class {
            if !scanner.seen_loads.contains(&eid) {
                let (span, repr) = describe(eid, eid_index, &analysis.program);
                scanner.uncovered.entry(rep).or_insert((
                    span,
                    format!("load `{repr}` is outside the loop body (reached through a call)"),
                ));
            }
        }
        scanner.uncovered
    });

    let mut classes: Vec<ClassDiff> = groups
        .iter()
        .map(|(&rep, sites)| {
            let mut eids: Vec<u32> = sites
                .iter()
                .map(|&s| analysis.serial.sites.info(s).eid)
                .filter(|&e| e != NO_EID)
                .collect();
            eids.sort_unstable();
            eids.dedup();
            // Prefer a load's expression as the class's face: store sites
            // can be keyed by initializer sub-expressions, which print as
            // bare literals.
            let repr_eid = sites
                .iter()
                .map(|&s| analysis.serial.sites.info(s))
                .filter(|i| i.kind == AccessKind::Load && i.eid != NO_EID)
                .map(|i| i.eid)
                .min()
                .or_else(|| eids.first().copied());
            let (span, repr) = repr_eid
                .map(|e| describe(e, eid_index, &analysis.program))
                .unwrap_or((None, format!("class#{rep}")));
            let profiled_private = cls.is_private(rep);
            let failure = coverage.as_ref().and_then(|u| u.get(&rep));
            let statically_confirmed = profiled_private && coverage.is_some() && failure.is_none();
            let (reason, span) = match failure {
                Some((fail_span, reason)) => (Some(reason.clone()), fail_span.or(span)),
                None if profiled_private && coverage.is_none() => (
                    Some("candidate loop not found in the source tree".into()),
                    span,
                ),
                None => (None, span),
            };
            ClassDiff {
                repr,
                eids,
                profiled_private,
                statically_confirmed,
                reason,
                span,
            }
        })
        .collect();
    classes.sort_by(|a, b| b.eids.len().cmp(&a.eids.len()).then(a.repr.cmp(&b.repr)));
    LoopDiff {
        label: cls.label.clone(),
        iterations: ddg.iterations,
        mode: cls.mode,
        classes,
    }
}

/// Span and printed form of the expression with the given eid.
fn describe(
    eid: u32,
    eid_index: &HashMap<u32, &Expr>,
    program: &Program,
) -> (Option<SourceSpan>, String) {
    match eid_index.get(&eid) {
        Some(e) => (Some(e.span), printer::expr(e, program)),
        None => (None, format!("eid#{eid}")),
    }
}

// ---- the coverage scanner ---------------------------------------------------

/// Kills established so far on the scan path (all guaranteed to execute
/// before the statement being scanned, once per iteration).
#[derive(Clone, Default)]
struct KillState {
    /// Scalars written by an unconditional plain assignment or initializer.
    scalars: HashSet<VarBinding>,
    /// Printed root expression -> set of printed `(lo, hi)` bound pairs
    /// fully stored by a canonical store loop.
    ranges: HashMap<String, HashSet<(String, String)>>,
}

/// The enclosing canonical loop, for justifying `root[k]` element loads.
struct CanonCtx {
    k: VarBinding,
    lo: String,
    hi: String,
}

struct Scanner<'a> {
    program: &'a Program,
    load_class: &'a HashMap<u32, SiteId>,
    /// First unjustified load per class: (span, explanation).
    uncovered: HashMap<SiteId, (Option<SourceSpan>, String)>,
    seen_loads: HashSet<u32>,
}

impl<'a> Scanner<'a> {
    fn scan_block(&mut self, b: &Block, st: &mut KillState, canon: Option<&CanonCtx>) {
        for s in &b.stmts {
            self.scan_stmt(s, st, canon);
        }
    }

    fn scan_stmt(&mut self, s: &Stmt, st: &mut KillState, canon: Option<&CanonCtx>) {
        match &s.kind {
            StmtKind::Decl {
                name, init, slot, ..
            } => {
                if let Some(e) = init {
                    self.scan_expr(e, st, canon);
                    if let Some(slot) = slot {
                        invalidate(st, name);
                        st.scalars.insert(VarBinding::Local(*slot));
                    }
                }
            }
            StmtKind::Expr(e) => {
                if let ExprKind::Assign {
                    op: AssignOp::Set,
                    lhs,
                    rhs,
                } = &e.kind
                {
                    if let ExprKind::Var { name, binding } = &lhs.kind {
                        self.scan_expr(rhs, st, canon);
                        invalidate(st, name);
                        if let Some(b) = binding {
                            st.scalars.insert(*b);
                        }
                        return;
                    }
                }
                self.scan_expr(e, st, canon);
            }
            StmtKind::If { cond, then, els } => {
                self.scan_expr(cond, st, canon);
                // Branch kills may not execute: scan with throwaway clones.
                let mut t = st.clone();
                self.scan_block(then, &mut t, canon);
                if let Some(b) = els {
                    let mut e2 = st.clone();
                    self.scan_block(b, &mut e2, canon);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => self.scan_for(init.as_deref(), cond.as_ref(), step.as_ref(), body, st),
            StmtKind::While { cond, body, .. } => {
                self.scan_expr(cond, st, canon);
                let mut b = st.clone();
                self.scan_block(body, &mut b, canon);
            }
            StmtKind::DoWhile { body, cond, .. } => {
                let mut b = st.clone();
                self.scan_block(body, &mut b, canon);
                self.scan_expr(cond, &mut b, canon);
            }
            StmtKind::Return(Some(e)) => self.scan_expr(e, st, canon),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.scan_block(b, st, canon),
        }
    }

    /// Scans a nested `for`. Canonical `for (k = lo; k < hi; k++)` loops get
    /// the element-wise treatment; anything else is a conditional region.
    fn scan_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
        st: &mut KillState,
    ) {
        let Some(ctx) = match_canonical(init, cond, step, self.program) else {
            let mut inner = st.clone();
            if let Some(s) = init {
                self.scan_stmt(s, &mut inner, None);
            }
            if let Some(c) = cond {
                self.scan_expr(c, &mut inner, None);
            }
            self.scan_block(body, &mut inner, None);
            if let Some(s) = step {
                self.scan_expr(s, &mut inner, None);
            }
            return;
        };

        // Bounds are evaluated unconditionally; the init kill of `k` holds
        // throughout the loop.
        if let Some(s) = init {
            self.scan_stmt(s, st, None);
        }
        let k_name = ctx.1.clone();
        let ctx = ctx.0;
        let mut inner = st.clone();
        invalidate(&mut inner, &k_name);
        inner.scalars.insert(ctx.k);
        if let Some(c) = cond {
            self.scan_expr(c, &mut inner, Some(&ctx));
        }

        // Scan body statements, recognizing `root[k] = rhs` full-range
        // stores. A store commits into `inner` immediately (it justifies
        // same-index loads later in this body) and is remembered so it can
        // be published to the outer state after the loop.
        let mut stored_roots: Vec<String> = Vec::new();
        for s in &body.stmts {
            if let StmtKind::Expr(e) = &s.kind {
                if let ExprKind::Assign {
                    op: AssignOp::Set,
                    lhs,
                    rhs,
                } = &e.kind
                {
                    if let ExprKind::Index { base, index } = &lhs.kind {
                        if is_var(index, ctx.k)
                            && stable_root(base)
                            && !mentions_binding(base, ctx.k)
                        {
                            self.scan_expr(base, &mut inner, Some(&ctx));
                            self.scan_expr(index, &mut inner, Some(&ctx));
                            self.scan_expr(rhs, &mut inner, Some(&ctx));
                            let root = printer::expr(base, self.program);
                            inner
                                .ranges
                                .entry(root.clone())
                                .or_default()
                                .insert((ctx.lo.clone(), ctx.hi.clone()));
                            stored_roots.push(root);
                            continue;
                        }
                    }
                }
            }
            self.scan_stmt(s, &mut inner, Some(&ctx));
        }
        if let Some(e) = step {
            self.scan_expr(e, &mut inner, Some(&ctx));
        }
        // Publish the canonical range kills; scalar kills made inside the
        // body stay conditional (the loop may run zero times). The range
        // kill is safe even then: it only ever justifies loads under
        // syntactically identical bounds, which then also run zero times.
        for root in stored_roots {
            st.ranges
                .entry(root)
                .or_default()
                .insert((ctx.lo.clone(), ctx.hi.clone()));
        }
    }

    /// Walks an expression, auditing every load that belongs to a
    /// profiled-private class.
    fn scan_expr(&mut self, e: &Expr, st: &mut KillState, canon: Option<&CanonCtx>) {
        if let Some(&rep) = self.load_class.get(&e.eid) {
            self.seen_loads.insert(e.eid);
            if !self.justified(e, st, canon) {
                let repr = printer::expr(e, self.program);
                self.uncovered.entry(rep).or_insert((
                    Some(e.span),
                    format!("load `{repr}` has no guaranteed same-iteration store before it"),
                ));
            }
        }
        // User-defined callees may reassign the pointers canonical kills
        // are rooted at; builtins cannot.
        if let ExprKind::Call { name, .. } = &e.kind {
            if self.program.function(name).is_some() {
                st.ranges.clear();
            }
        }
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::Var { .. }
            | ExprKind::SizeofType(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::Deref(a)
            | ExprKind::AddrOf(a)
            | ExprKind::Cast(_, a)
            | ExprKind::SizeofExpr(a)
            | ExprKind::IncDec { target: a, .. } => self.scan_expr(a, st, canon),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign { lhs: a, rhs: b, .. }
            | ExprKind::Index { base: a, index: b } => {
                self.scan_expr(a, st, canon);
                self.scan_expr(b, st, canon);
            }
            ExprKind::Cond(a, b, c) => {
                self.scan_expr(a, st, canon);
                self.scan_expr(b, st, canon);
                self.scan_expr(c, st, canon);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.scan_expr(a, st, canon);
                }
            }
            ExprKind::Field { base, .. } => self.scan_expr(base, st, canon),
        }
    }

    /// Is this load provably preceded by a same-iteration store?
    fn justified(&self, e: &Expr, st: &KillState, canon: Option<&CanonCtx>) -> bool {
        match &e.kind {
            ExprKind::Var { binding, .. } => {
                binding.map(|b| st.scalars.contains(&b)).unwrap_or(false)
            }
            ExprKind::Index { base, index } => {
                let Some(ctx) = canon else { return false };
                if !is_var(index, ctx.k) || !stable_root(base) || mentions_binding(base, ctx.k) {
                    return false;
                }
                let root = printer::expr(base, self.program);
                st.ranges
                    .get(&root)
                    .map(|spans| spans.contains(&(ctx.lo.clone(), ctx.hi.clone())))
                    .unwrap_or(false)
            }
            _ => false,
        }
    }
}

/// Matches `for (k = lo; k < hi; k++)` in its common spellings; returns the
/// context plus `k`'s name (for invalidation).
fn match_canonical(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    program: &Program,
) -> Option<(CanonCtx, String)> {
    let (k, k_name, lo) = match init.map(|s| &s.kind) {
        Some(StmtKind::Decl {
            name,
            init: Some(lo),
            slot: Some(slot),
            ..
        }) => (VarBinding::Local(*slot), name.clone(), lo),
        Some(StmtKind::Expr(Expr {
            kind:
                ExprKind::Assign {
                    op: AssignOp::Set,
                    lhs,
                    rhs,
                },
            ..
        })) => match &lhs.kind {
            ExprKind::Var {
                name,
                binding: Some(b),
            } => (*b, name.clone(), &**rhs),
            _ => return None,
        },
        _ => return None,
    };
    let hi = match cond.map(|c| &c.kind) {
        Some(ExprKind::Binary(BinOp::Lt, l, hi)) if is_var(l, k) => hi,
        _ => return None,
    };
    let step_ok = match step.map(|s| &s.kind) {
        Some(ExprKind::IncDec {
            inc: true, target, ..
        }) => is_var(target, k),
        Some(ExprKind::Assign {
            op: AssignOp::Compound(BinOp::Add),
            lhs,
            rhs,
        }) => is_var(lhs, k) && matches!(rhs.kind, ExprKind::IntLit(1)),
        Some(ExprKind::Assign {
            op: AssignOp::Set,
            lhs,
            rhs,
        }) => {
            is_var(lhs, k)
                && match &rhs.kind {
                    ExprKind::Binary(BinOp::Add, a, b) => {
                        is_var(a, k) && matches!(b.kind, ExprKind::IntLit(1))
                    }
                    _ => false,
                }
        }
        _ => return None,
    };
    if !step_ok {
        return None;
    }
    // Bounds must not depend on the induction variable itself.
    if mentions_binding(hi, k) || mentions_binding(lo, k) {
        return None;
    }
    Some((
        CanonCtx {
            k,
            lo: printer::expr(lo, program),
            hi: printer::expr(hi, program),
        },
        k_name,
    ))
}

/// True when `e` is exactly a reference to the binding `b`.
fn is_var(e: &Expr, b: VarBinding) -> bool {
    matches!(&e.kind, ExprKind::Var { binding: Some(x), .. } if *x == b)
}

/// True when any variable reference under `e` resolves to `b`.
fn mentions_binding(e: &Expr, b: VarBinding) -> bool {
    let mut found = false;
    walk::exprs(e, &mut |n| {
        if is_var(n, b) {
            found = true;
        }
    });
    found
}

/// Roots we can key a range kill on: side-effect-free lvalue spines whose
/// printed form identifies the storage.
fn stable_root(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var { .. } => true,
        ExprKind::Field { base, .. } => stable_root(base),
        ExprKind::Deref(p) => stable_root(p),
        ExprKind::Index { base, index } => {
            stable_root(base) && matches!(index.kind, ExprKind::IntLit(_))
        }
        _ => false,
    }
}

/// Drops range kills whose root or bounds mention `name` — the variable was
/// just reassigned, so those printed strings no longer denote the same
/// storage or the same iteration space.
fn invalidate(st: &mut KillState, name: &str) {
    let mut dead: Vec<String> = Vec::new();
    for (root, spans) in st.ranges.iter_mut() {
        if mentions_ident(root, name) {
            dead.push(root.clone());
            continue;
        }
        spans.retain(|(lo, hi)| !mentions_ident(lo, name) && !mentions_ident(hi, name));
        if spans.is_empty() {
            dead.push(root.clone());
        }
    }
    for r in dead {
        st.ranges.remove(&r);
    }
}

/// Whole-identifier containment test over printed expression strings.
fn mentions_ident(s: &str, name: &str) -> bool {
    if name.is_empty() {
        return false;
    }
    let bytes = s.as_bytes();
    s.match_indices(name).any(|(i, _)| {
        let before = i == 0 || {
            let c = bytes[i - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let end = i + name.len();
        let after = end >= s.len() || {
            let c = bytes[end];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        before && after
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_mention_is_whole_word() {
        assert!(mentions_ident("(scratch[(k)])", "scratch"));
        assert!(mentions_ident("(a + b)", "b"));
        assert!(!mentions_ident("(scratch2[(k)])", "scratch"));
        assert!(!mentions_ident("(backlog)", "log"));
    }
}
