//! Diagnostic model for the privatization-soundness verifier.
//!
//! Every finding the verifier emits is a [`Diagnostic`] carrying a stable
//! lint code (`DSE0xx`), a severity, an optional source span, and the loop
//! it concerns. Findings are collected into a [`Report`] which renders as
//! human-readable text or as JSON (via the workspace's dependency-free
//! [`dse_telemetry::Json`] value type) and rolls up per-severity counts for
//! telemetry.

use std::fmt;

use dse_lang::source::SourceSpan;
use dse_telemetry::Json;

/// Stable lint codes. Codes are append-only: a code's meaning never changes
/// once shipped, so tooling can filter on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// Profile says thread-private, but the static approximation cannot rule
    /// out a loop-carried flow dependence: the classification is only as good
    /// as the profiling input.
    ProfileUnsound,
    /// A thread-private object and a shared object may alias statically even
    /// though the profile never observed them at a common site.
    MayAliasUnobserved,
    /// A transformed access to a thread-private site is not redirected
    /// through the thread id (Table 2 violation).
    PrivateNotRedirected,
    /// A transformed access to a shared site does not resolve to replica 0
    /// (Table 2 violation).
    SharedNotReplicaZero,
    /// A store to an expanded pointer is not paired with the span bookkeeping
    /// Table 3 requires.
    SpanNotMaintained,
    /// A DOACROSS synchronization window does not cover an ordered shared
    /// access, or a DOALL body contains synchronization.
    SyncWindowViolation,
    /// Two loops classify the same site inconsistently (private in one merge
    /// partition, shared in another).
    ClassificationConflict,
    /// A candidate loop executed zero iterations during profiling, so its
    /// classification is vacuous.
    ZeroIterationProfile,
    /// The opcode profiler was asked to run under the register backend,
    /// whose fused super-instructions would skew the per-opcode table;
    /// profiles are only meaningful on the stack (reference) encoding.
    ProfileBackendMismatch,
    /// The stack bytecode violates the constant-depth discipline the
    /// register translation assumes: a depth or type mismatch at a
    /// control-flow join, an operand-stack underflow, or a return with
    /// residual operands.
    StackDiscipline,
    /// A stack instruction references something out of bounds: a jump past
    /// the end of the code, a call to a missing function, or a direct
    /// frame access outside the owning function's declared frame.
    StackBounds,
    /// A register instruction touches a register at or beyond the declared
    /// window size (`frame_regs`), or jumps outside the register code.
    RegWindowBounds,
    /// A register is read on some path before any instruction defines it,
    /// or a call site's promoted-slot spill/reload sequence is broken.
    RegDefUse,
    /// Symbolic execution of a stack block and its register translation
    /// reached different abstract states: diverging register/slot values,
    /// promoted values out of sync with frame memory, mismatched effect
    /// sequences, or a promotion the stack flow does not justify.
    TranslationDivergence,
    /// A precision case of translation validation: a narrow promoted store
    /// missing its sign-extension canonicalization, or scalar promotion
    /// inside an outlined parallel body whose frame is shared across
    /// threads.
    TranslationPrecision,
}

impl Code {
    /// The stable `DSE0xx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ProfileUnsound => "DSE001",
            Code::MayAliasUnobserved => "DSE002",
            Code::PrivateNotRedirected => "DSE003",
            Code::SharedNotReplicaZero => "DSE004",
            Code::SpanNotMaintained => "DSE005",
            Code::SyncWindowViolation => "DSE006",
            Code::ClassificationConflict => "DSE007",
            Code::ZeroIterationProfile => "DSE008",
            Code::ProfileBackendMismatch => "DSE009",
            Code::StackDiscipline => "DSE010",
            Code::StackBounds => "DSE011",
            Code::RegWindowBounds => "DSE012",
            Code::RegDefUse => "DSE013",
            Code::TranslationDivergence => "DSE014",
            Code::TranslationPrecision => "DSE015",
        }
    }

    /// One-line description used in `dsec check` explanations.
    pub fn summary(self) -> &'static str {
        match self {
            Code::ProfileUnsound => "profiled-private classification not statically sound",
            Code::MayAliasUnobserved => "private and shared objects may alias outside the profile",
            Code::PrivateNotRedirected => {
                "private access not redirected by thread id after expansion"
            }
            Code::SharedNotReplicaZero => "shared access not pinned to replica 0 after expansion",
            Code::SpanNotMaintained => "expanded pointer span not maintained",
            Code::SyncWindowViolation => "DOACROSS sync window violation",
            Code::ClassificationConflict => "conflicting classifications for one site",
            Code::ZeroIterationProfile => "candidate loop never iterated in profile",
            Code::ProfileBackendMismatch => "opcode profiling requires the stack backend",
            Code::StackDiscipline => "operand-stack discipline violation",
            Code::StackBounds => "stack bytecode jump, call, or frame access out of bounds",
            Code::RegWindowBounds => "register outside the declared window",
            Code::RegDefUse => "register read before definition or broken spill pairing",
            Code::TranslationDivergence => "stack and register translations diverge",
            Code::TranslationPrecision => {
                "narrow-store canonicalization or parallel-body promotion violation"
            }
        }
    }

    /// The severity this code carries under the default (non-strict) policy.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::ProfileUnsound => Severity::Warning,
            Code::MayAliasUnobserved => Severity::Info,
            Code::PrivateNotRedirected
            | Code::SharedNotReplicaZero
            | Code::SpanNotMaintained
            | Code::SyncWindowViolation
            | Code::ClassificationConflict => Severity::Error,
            Code::ZeroIterationProfile => Severity::Warning,
            // Backend-verification findings are miscompiles, never advisory.
            Code::ProfileBackendMismatch
            | Code::StackDiscipline
            | Code::StackBounds
            | Code::RegWindowBounds
            | Code::RegDefUse
            | Code::TranslationDivergence
            | Code::TranslationPrecision => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is. `Error` findings make `dsec check` (and the
/// implicit pre-transform check) fail; `Warning` only fails under `--strict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    /// Lowercase name as printed in text output and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Source location of the offending access, when one can be attributed.
    pub span: Option<SourceSpan>,
    /// Label of the loop the finding concerns (e.g. `main#0`), if any.
    pub loop_label: Option<String>,
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: None,
            loop_label: None,
            message: message.into(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: SourceSpan) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches the loop label the finding concerns.
    pub fn with_loop(mut self, label: impl Into<String>) -> Diagnostic {
        self.loop_label = Some(label.into());
        self
    }

    /// Renders one line of text output, e.g.
    /// `warning[DSE001] 5:3: message (loop `main#0`)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if let Some(span) = self.span {
            out.push_str(&format!(" {}", span));
        }
        out.push_str(&format!(": {}", self.message));
        if let Some(label) = &self.loop_label {
            out.push_str(&format!(" (loop `{}`)", label));
        }
        out
    }

    /// JSON form of a single diagnostic.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::Str(self.code.as_str().to_string())),
            ("severity", Json::Str(self.severity.as_str().to_string())),
            (
                "span",
                match self.span {
                    Some(s) => Json::Str(s.to_string()),
                    None => Json::Null,
                },
            ),
            (
                "loop",
                match &self.loop_label {
                    Some(l) => Json::Str(l.clone()),
                    None => Json::Null,
                },
            ),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// A collection of diagnostics from one verifier run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorbs all findings from another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True when the run should fail: any error, or any warning under strict.
    pub fn should_fail(&self, strict: bool) -> bool {
        self.count(Severity::Error) > 0 || (strict && self.count(Severity::Warning) > 0)
    }

    /// Sorts findings into stable display order: severity (errors first),
    /// then code, then source position.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.cmp(&b.code))
                .then(a.span.map(|s| s.start).cmp(&b.span.map(|s| s.start)))
                .then(a.message.cmp(&b.message))
        });
    }

    /// Full multi-line text rendering, ending with a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s), {} info(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out
    }

    /// JSON rendering: diagnostics plus the summary counts.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            (
                "counts",
                Json::obj(vec![
                    ("errors", Json::Int(self.count(Severity::Error) as i64)),
                    ("warnings", Json::Int(self.count(Severity::Warning) as i64)),
                    ("infos", Json::Int(self.count(Severity::Info) as i64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::source::SourcePos;

    #[test]
    fn render_includes_code_span_and_loop() {
        let d = Diagnostic::new(Code::ProfileUnsound, "store may race")
            .with_span(SourceSpan::at(SourcePos::new(5, 3)))
            .with_loop("main#0");
        assert_eq!(
            d.render(),
            "warning[DSE001] 5:3: store may race (loop `main#0`)"
        );
    }

    #[test]
    fn report_counts_and_failure_policy() {
        let mut r = Report::default();
        r.push(Diagnostic::new(Code::ProfileUnsound, "w"));
        assert!(!r.should_fail(false));
        assert!(r.should_fail(true));
        r.push(Diagnostic::new(Code::PrivateNotRedirected, "e"));
        assert!(r.should_fail(false));
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut r = Report::default();
        r.push(Diagnostic::new(Code::ProfileUnsound, "w"));
        r.push(Diagnostic::new(Code::SyncWindowViolation, "e"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, Code::SyncWindowViolation);
    }

    #[test]
    fn json_has_counts() {
        let mut r = Report::default();
        r.push(Diagnostic::new(Code::ZeroIterationProfile, "z"));
        let j = r.to_json();
        let counts = j.get("counts").unwrap();
        assert_eq!(counts.get("warnings").and_then(Json::as_i64), Some(1));
        assert_eq!(counts.get("errors").and_then(Json::as_i64), Some(0));
    }
}
