//! Read-only AST traversal helpers.
//!
//! `dse_lang::ast` ships mutable visitors (they exist to renumber eids);
//! the verifier only inspects programs, so these walkers borrow the tree
//! immutably and can hand out `&'a Expr` references that outlive the
//! traversal.

use dse_lang::ast::*;
use dse_lang::source::SourceSpan;

/// Calls `f` on `e` and every expression below it, parents before children.
pub fn exprs<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::Var { .. }
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, a)
        | ExprKind::Deref(a)
        | ExprKind::AddrOf(a)
        | ExprKind::Cast(_, a)
        | ExprKind::SizeofExpr(a)
        | ExprKind::IncDec { target: a, .. } => exprs(a, f),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign { lhs: a, rhs: b, .. }
        | ExprKind::Index { base: a, index: b } => {
            exprs(a, f);
            exprs(b, f);
        }
        ExprKind::Cond(a, b, c) => {
            exprs(a, f);
            exprs(b, f);
            exprs(c, f);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                exprs(a, f);
            }
        }
        ExprKind::Field { base, .. } => exprs(base, f),
    }
}

/// Calls `f` on every expression in the statement, in program order.
pub fn exprs_in_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                exprs(e, f);
            }
        }
        StmtKind::Expr(e) => exprs(e, f),
        StmtKind::If { cond, then, els } => {
            exprs(cond, f);
            exprs_in_block(then, f);
            if let Some(b) = els {
                exprs_in_block(b, f);
            }
        }
        StmtKind::While { cond, body, .. } => {
            exprs(cond, f);
            exprs_in_block(body, f);
        }
        StmtKind::DoWhile { body, cond, .. } => {
            exprs_in_block(body, f);
            exprs(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(s) = init {
                exprs_in_stmt(s, f);
            }
            if let Some(c) = cond {
                exprs(c, f);
            }
            if let Some(s) = step {
                exprs(s, f);
            }
            exprs_in_block(body, f);
        }
        StmtKind::Return(Some(e)) => exprs(e, f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => exprs_in_block(b, f),
    }
}

/// Calls `f` on every expression in the block, in program order.
pub fn exprs_in_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Expr)) {
    for s in &block.stmts {
        exprs_in_stmt(s, f);
    }
}

/// Builds an eid → expression index over a whole program.
pub fn eid_index(program: &Program) -> std::collections::HashMap<u32, &Expr> {
    let mut map = std::collections::HashMap::new();
    for f in &program.functions {
        exprs_in_block(&f.body, &mut |e| {
            if e.eid != NO_EID {
                map.insert(e.eid, e);
            }
        });
    }
    map
}

/// A `#pragma candidate` loop located in the AST.
pub struct CandidateLoop<'a> {
    /// Loop label (explicit, or `fn#ordinal` like the lowering assigns).
    pub label: String,
    /// Index of the enclosing function in `program.functions`.
    pub func: usize,
    /// The `for` init statement, if any.
    pub init: Option<&'a Stmt>,
    /// The `for` condition, if any.
    pub cond: Option<&'a Expr>,
    /// The `for` step expression, if any.
    pub step: Option<&'a Expr>,
    /// Loop body.
    pub body: &'a Block,
    /// Source location of the loop statement.
    pub span: SourceSpan,
}

/// Finds every candidate loop, assigning the same `fn#ordinal` fallback
/// labels the lowering uses (one ordinal counter across the whole program,
/// pre-order).
pub fn candidate_loops(program: &Program) -> Vec<CandidateLoop<'_>> {
    fn scan<'a>(
        block: &'a Block,
        func: usize,
        fn_name: &str,
        ordinal: &mut usize,
        out: &mut Vec<CandidateLoop<'a>>,
    ) {
        for s in &block.stmts {
            match &s.kind {
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                    mark,
                } => {
                    if mark.candidate {
                        let this = *ordinal;
                        *ordinal += 1;
                        let label = mark
                            .label
                            .clone()
                            .unwrap_or_else(|| format!("{fn_name}#{this}"));
                        out.push(CandidateLoop {
                            label,
                            func,
                            init: init.as_deref(),
                            cond: cond.as_ref(),
                            step: step.as_ref(),
                            body,
                            span: s.span,
                        });
                    }
                    scan(body, func, fn_name, ordinal, out);
                }
                StmtKind::If { then, els, .. } => {
                    scan(then, func, fn_name, ordinal, out);
                    if let Some(b) = els {
                        scan(b, func, fn_name, ordinal, out);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    scan(body, func, fn_name, ordinal, out)
                }
                StmtKind::Block(b) => scan(b, func, fn_name, ordinal, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    let mut ordinal = 0usize;
    for (fi, f) in program.functions.iter().enumerate() {
        scan(&f.body, fi, &f.name, &mut ordinal, &mut out);
    }
    out
}
