//! # dse-verify — static privatization-soundness verifier and lint framework
//!
//! The expansion pipeline trusts two oracles: the *profiler* (whose
//! classifications are only as sound as the profiling input, §2 of the
//! paper) and the *transform* (whose Table 1–3 rewrites are assumed
//! correct). This crate cross-examines both:
//!
//! 1. **Profile soundness ([`staticdep`], pass 1)** — a conservative static
//!    approximation of may-dependences, built from the points-to analysis
//!    and the source tree, is compared against the profiled DDG. A class
//!    the profile calls thread-private that the static pass cannot confirm
//!    is flagged `DSE001` (warning by default, failing under `--strict`).
//! 2. **Transform invariants ([`invariants`], pass 2)** — the transformed
//!    AST and parallel bytecode are mechanically checked against Tables
//!    1–3: tid redirection of private sites (`DSE003`), replica-0
//!    resolution of shared sites (`DSE004`), span maintenance (`DSE005`),
//!    and DOACROSS synchronization windows (`DSE006`).
//! 3. **Lint framework ([`diag`])** — findings carry stable `DSE0xx` codes,
//!    severities, and spans; reports render as text or JSON and roll up
//!    counts for telemetry. The `dsec check` subcommand (and the implicit
//!    pre-transform check in `dsec --transform`/`--run`) is built on it.
//! 4. **Backend verification ([`stackcheck`], [`regcheck`], [`xlatecheck`],
//!    `DSE010`–`DSE015`)** — static proofs over both executable encodings:
//!    the stack bytecode's constant-depth discipline and bounds, the
//!    register translation's window/def-use/spill safety, and a symbolic
//!    translation validator proving the two backends equivalent block by
//!    block. Runs via `dsec check --backend`, and automatically (cached, as
//!    the `regverify` phase) after every `reglower`. [`sabotage`] seeds
//!    known miscompiles to prove each checker actually fires.

pub mod diag;
pub mod invariants;
pub mod regcheck;
pub mod sabotage;
pub mod stackcheck;
pub mod staticdep;
pub mod walk;
pub mod xlatecheck;

use std::collections::HashMap;
use std::sync::Arc;

use dse_core::cache::Trace;
use dse_core::phases::{RegArt, TransformArt};
use dse_core::{Analysis, ArtifactStore, SiteClass, Transformed};
use dse_ir::bytecode::CompiledProgram;
use dse_ir::RegProgram;
use dse_lang::ast::NO_EID;
use dse_telemetry::ContentHasher;

use diag::{Code, Diagnostic, Report};

/// Policy knobs for a verifier run.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Treat warnings as failures (`dsec check --strict`).
    pub strict: bool,
}

/// Pass 1: checks the profiled classifications against the static
/// approximation (`DSE001`/`DSE002`/`DSE008`) and for cross-loop
/// consistency (`DSE007`). Runs before planning, on the [`Analysis`] alone.
pub fn check_analysis(analysis: &Analysis, report: &mut Report) {
    staticdep::check(analysis, report);
    check_classification_conflicts(analysis, report);
}

/// Pass 2: checks the transform's output against its Table 1–3 invariants
/// (`DSE003`–`DSE006`).
pub fn check_transformed(analysis: &Analysis, t: &Transformed, report: &mut Report) {
    invariants::check(analysis, t, report);
}

/// Runs every applicable pass and returns the sorted report: pass 1 always,
/// pass 2 when a transformed program is supplied.
pub fn check_all(analysis: &Analysis, transformed: Option<&Transformed>) -> Report {
    let mut report = Report::default();
    check_analysis(analysis, &mut report);
    if let Some(t) = transformed {
        check_transformed(analysis, t, &mut report);
    }
    report.sort();
    report
}

/// [`check_all`] through the artifact store: the verify pass is itself a
/// cached phase, keyed `H("verify", xform_key)`. The xform key chains
/// through the plan, classification, profile, bytecode and AST hashes, so
/// any input that could change the report changes the key; a repeated
/// request re-uses the sorted report without re-running either pass.
pub fn check_cached(
    store: &ArtifactStore,
    analysis: &Analysis,
    xform: &TransformArt,
    trace: &mut Trace,
) -> Arc<Report> {
    let key = ContentHasher::new("verify").hash(xform.key).finish();
    store
        .get_or_compute("verify", key, trace, || {
            Ok::<_, std::convert::Infallible>(check_all(analysis, Some(&xform.transformed)))
        })
        .unwrap_or_else(|e| match e {})
}

/// Backend pass over the stack bytecode alone (`DSE010`/`DSE011`): the
/// constant-depth discipline and structural bounds the register translation
/// assumes. Useful before a `reglower` exists.
pub fn check_stack(prog: &CompiledProgram) -> Report {
    let mut report = Report::default();
    stackcheck::check(prog, &mut report);
    report.sort();
    report
}

/// Full backend verification (`DSE010`–`DSE015`): the stack checks, then —
/// only if they pass, so downstream passes can index freely — the register
/// window/def-use/spill checks, then — only if *those* pass — the symbolic
/// translation validator. The cascade means a seeded miscompile surfaces as
/// exactly the code of the first checker able to see it.
pub fn check_backend(prog: &CompiledProgram, rp: &RegProgram) -> Report {
    let mut report = Report::default();
    if stackcheck::check(prog, &mut report) {
        // stackcheck proved the flow converges; unwrap is safe.
        let flow = dse_ir::analyze_stack(prog).expect("stackcheck proved discipline");
        if regcheck::check(prog, rp, &flow, &mut report) {
            xlatecheck::check(prog, rp, &flow, &mut report);
        }
    }
    report.sort();
    report
}

/// [`check_backend`] through the artifact store: backend verification is
/// the pipeline's ninth cached phase, keyed `H("regverify", reglower_key)`.
/// The reglower key fingerprints the stack code, so any program change
/// re-verifies and any repeat (daemon warm path, `--threads` sweeps)
/// reuses the stored report. A clean report marks the translation verified
/// — on cache hits too, since a warm `RegArt` may be a fresh allocation
/// whose flag was never set — which the register VM's `--strict` mode
/// checks before accepting code.
pub fn check_backend_cached(
    store: &ArtifactStore,
    prog: &CompiledProgram,
    regart: &RegArt,
    trace: &mut Trace,
) -> Arc<Report> {
    let key = ContentHasher::new("regverify").hash(regart.key).finish();
    let report = store
        .get_or_compute("regverify", key, trace, || {
            Ok::<_, std::convert::Infallible>(check_backend(prog, &regart.reg))
        })
        .unwrap_or_else(|e| match e {});
    if report.count(diag::Severity::Error) == 0 {
        regart.reg.mark_verified();
    }
    report
}

/// `DSE007`: the same source access must not be classified thread-private
/// by one candidate loop and shared by another — plan merging refuses such
/// programs, so surfacing the conflict as a lint keeps `dsec check` ahead
/// of the transform's hard error.
fn check_classification_conflicts(analysis: &Analysis, report: &mut Report) {
    let index = walk::eid_index(&analysis.program);
    let mut seen: HashMap<u32, (SiteClass, String)> = HashMap::new();
    let mut conflicted: Vec<u32> = Vec::new();
    for c in &analysis.classifications {
        for (&site, &class) in &c.site_class {
            let eid = analysis.serial.sites.info(site).eid;
            if eid == NO_EID {
                continue;
            }
            match seen.get(&eid) {
                None => {
                    seen.insert(eid, (class, c.label.clone()));
                }
                Some((prev, prev_label)) if *prev != class => {
                    if !conflicted.contains(&eid) {
                        conflicted.push(eid);
                        let (shared_in, private_in) = if *prev == SiteClass::Shared {
                            (prev_label.clone(), c.label.clone())
                        } else {
                            (c.label.clone(), prev_label.clone())
                        };
                        let mut d = Diagnostic::new(
                            Code::ClassificationConflict,
                            format!(
                                "access is thread-private in loop `{private_in}` but \
                                 shared in loop `{shared_in}`; the merged expansion \
                                 plan cannot satisfy both"
                            ),
                        );
                        if let Some(e) = index.get(&eid) {
                            d = d.with_span(e.span);
                        }
                        report.push(d);
                    }
                }
                Some(_) => {}
            }
        }
    }
}
