//! End-to-end coverage of the backend-verification CLI surface:
//!
//! * `dsec check --backend` text and JSON goldens, clean and under each
//!   seeded sabotage (`DSE010`–`DSE015`), with the 0/1/2 exit-code
//!   contract pinned;
//! * `dsec profile` refusing the register backend (`DSE009`): explicit
//!   `--exec-backend reg` is a usage error, the `DSE_EXEC_BACKEND=reg`
//!   ambient default downgrades to a stderr warning plus a stack-pinned
//!   run;
//! * the VM's `--strict` gate refusing an unverified register translation
//!   and accepting the same translation once the verifier marks it.
//!
//! Regenerate goldens after an intentional change with:
//!
//! ```text
//! dsec check fixtures/backend_promote.cee --backend [--sabotage <kind>] [--json]
//! ```

use std::path::PathBuf;
use std::process::Command;

use dse_core::Analysis;
use dse_runtime::{Vm, VmConfig};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture() -> String {
    fixture_dir()
        .join("backend_promote.cee")
        .to_str()
        .unwrap()
        .to_string()
}

fn run_dsec(args: &[&str], env: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dsec"));
    cmd.args(args).env_remove("DSE_EXEC_BACKEND");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn dsec");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.code().expect("exit code"),
    )
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture_dir().join(name)).unwrap()
}

#[test]
fn backend_check_clean_matches_goldens() {
    let f = fixture();
    let (stdout, _, code) = run_dsec(&["check", &f, "--backend"], &[]);
    assert_eq!(stdout, golden("backend_promote.expected"));
    assert_eq!(code, 0);
    let (stdout, _, code) = run_dsec(&["check", &f, "--backend", "--json"], &[]);
    assert_eq!(stdout, golden("backend_promote.expected.json"));
    assert_eq!(code, 0);
}

#[test]
fn backend_sabotages_match_goldens_and_exit_one() {
    let f = fixture();
    for kind in dse_verify::sabotage::ALL {
        let name = kind.name();
        let (stdout, _, code) = run_dsec(&["check", &f, "--backend", "--sabotage", name], &[]);
        assert_eq!(
            stdout,
            golden(&format!("backend_promote.sabotage-{name}.expected")),
            "{name}: text golden drifted"
        );
        assert_eq!(code, 1, "{name}: sabotage must exit 1");
        // The finding carries exactly the expected DSE code.
        assert!(
            stdout.contains(&format!("error[{}]", kind.expected_code())),
            "{name}: expected {} in:\n{stdout}",
            kind.expected_code()
        );
        let (json_out, _, code) = run_dsec(
            &["check", &f, "--backend", "--sabotage", name, "--json"],
            &[],
        );
        assert_eq!(
            json_out,
            golden(&format!("backend_promote.sabotage-{name}.expected.json")),
            "{name}: JSON golden drifted"
        );
        assert_eq!(code, 1);
        let parsed = dse_telemetry::Json::parse(json_out.trim()).expect("valid JSON");
        let errors = parsed
            .get("counts")
            .and_then(|c| c.get("errors"))
            .and_then(dse_telemetry::Json::as_i64)
            .unwrap();
        assert!(errors > 0, "{name}: JSON counts must show errors");
    }
}

#[test]
fn sabotage_flag_contract() {
    let f = fixture();
    // --sabotage without --backend is a usage error.
    let (_, _, code) = run_dsec(&["check", &f, "--sabotage", "skip-sext"], &[]);
    assert_eq!(code, 2);
    // Unknown kinds are usage errors.
    let (_, stderr, code) = run_dsec(&["check", &f, "--backend", "--sabotage", "nope"], &[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown --sabotage"));
}

#[test]
fn profile_rejects_explicit_register_backend_with_dse009() {
    let f = fixture();
    let (_, stderr, code) = run_dsec(&["profile", &f, "--exec-backend", "reg"], &[]);
    assert_eq!(code, 2, "explicit reg profiling is a usage error");
    assert!(
        stderr.contains("error[DSE009]"),
        "stderr must carry the DSE009 code:\n{stderr}"
    );
    assert!(
        stderr.contains("hint:"),
        "stderr must carry a hint:\n{stderr}"
    );
}

#[test]
fn profile_pins_env_register_backend_to_stack_with_warning() {
    let f = fixture();
    let (stdout, stderr, code) = run_dsec(&["profile", &f], &[("DSE_EXEC_BACKEND", "reg")]);
    assert_eq!(
        code, 0,
        "env-selected reg downgrades to a warning:\n{stderr}"
    );
    assert!(
        stderr.contains("warning[DSE009]"),
        "stderr must warn about the pin:\n{stderr}"
    );
    assert!(stdout.contains("loop"), "profile table still prints");
}

#[test]
fn strict_vm_refuses_unverified_translation_and_accepts_verified() {
    let source = std::fs::read_to_string(fixture()).unwrap();
    let analysis = Analysis::from_source(&source, VmConfig::default()).unwrap();
    let rp = std::sync::Arc::new(
        dse_ir::regcode::translate(&analysis.serial).expect("fixture translates"),
    );
    let strict = VmConfig {
        strict: true,
        ..Default::default()
    };
    let err = Vm::with_reg(analysis.serial.clone(), rp.clone(), strict.clone())
        .err()
        .expect("strict must refuse an unverified translation");
    assert!(
        err.to_string().contains("DSE010-DSE015"),
        "refusal names the verification codes: {err}"
    );
    // A clean verification marks the translation; strict then accepts it.
    let report = dse_verify::check_backend(&analysis.serial, &rp);
    assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    rp.mark_verified();
    let mut vm = Vm::with_reg(analysis.serial.clone(), rp, strict)
        .expect("strict accepts a verified translation");
    vm.run().expect("fixture runs");
    // Differential check against the reference stack interpreter.
    let mut reference = Vm::new(analysis.serial.clone(), VmConfig::default()).unwrap();
    reference.run().expect("reference runs");
    assert_eq!(vm.outputs_int(), reference.outputs_int());
}
