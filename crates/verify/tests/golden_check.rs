//! Golden-file tests for `dsec check`: each fixture's text and JSON output
//! is pinned verbatim. Regenerate a golden after an intentional change
//! with:
//!
//! ```text
//! cargo run -p dse-verify --bin dsec -- check <fixture>.cee > <fixture>.expected
//! cargo run -p dse-verify --bin dsec -- check <fixture>.cee --json > <fixture>.expected.json
//! ```

use std::path::PathBuf;
use std::process::Command;

/// (fixture, expected exit code): the codes each fixture is built to hit.
const FIXTURES: [(&str, i32); 5] = [
    ("profile_unsound", 0), // DSE001 is a warning by default
    ("zero_iter", 0),       // DSE008 likewise
    ("doacross_sum", 0),    // clean DOACROSS
    ("alias_halves", 0),    // DSE002 is informational
    ("conflict", 1),        // DSE007 is an error
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_check(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_dsec"))
        .arg("check")
        .args(args)
        .output()
        .expect("spawn dsec");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    (stdout, out.status.code().expect("exit code"))
}

#[test]
fn fixtures_match_text_goldens() {
    for (name, want_code) in FIXTURES {
        let dir = fixture_dir();
        let cee = dir.join(format!("{name}.cee"));
        let (stdout, code) = run_check(&[cee.to_str().unwrap()]);
        let golden = std::fs::read_to_string(dir.join(format!("{name}.expected"))).unwrap();
        assert_eq!(stdout, golden, "{name}: text output drifted from golden");
        assert_eq!(code, want_code, "{name}: exit code");
    }
}

#[test]
fn fixtures_match_json_goldens() {
    for (name, want_code) in FIXTURES {
        let dir = fixture_dir();
        let cee = dir.join(format!("{name}.cee"));
        let (stdout, code) = run_check(&[cee.to_str().unwrap(), "--json"]);
        let golden = std::fs::read_to_string(dir.join(format!("{name}.expected.json"))).unwrap();
        assert_eq!(stdout, golden, "{name}: JSON output drifted from golden");
        assert_eq!(code, want_code, "{name}: exit code");
        // The JSON is parseable and its counts agree with the verdict.
        let parsed = dse_telemetry::Json::parse(stdout.trim()).expect("valid JSON");
        let errors = parsed
            .get("counts")
            .and_then(|c| c.get("errors"))
            .and_then(dse_telemetry::Json::as_i64)
            .unwrap();
        assert_eq!(errors > 0, want_code != 0, "{name}: counts match exit");
    }
}

/// The shipped example is the quickstart's face: `dsec check` passes it
/// with nothing to report.
#[test]
fn shipped_example_checks_clean() {
    let example = format!("{}/../../examples/scratch.cee", env!("CARGO_MANIFEST_DIR"));
    let (stdout, code) = run_check(&[&example]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "check: 0 error(s), 0 warning(s), 0 info(s)\n");
}
