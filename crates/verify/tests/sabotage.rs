//! Negative tests: each invariant checker must actually fire when its
//! invariant is broken. A checker that passes every workload (see
//! `invariants_all.rs`) proves nothing unless deliberately corrupted
//! output fails — these tests corrupt one promise at a time.

use dse_core::{Analysis, OptLevel, Transformed};
use dse_ir::bytecode::{Instr, LoopEvent};
use dse_lang::ast::{AssignOp, ExprKind, StmtKind};
use dse_verify::diag::Code;
use dse_workloads::Scale;

fn transformed(name: &str) -> (Analysis, Transformed) {
    let w = dse_workloads::by_name(name).expect("known workload");
    let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile)).unwrap();
    let t = analysis.transform(OptLevel::Full, 4).unwrap();
    (analysis, t)
}

fn codes(analysis: &Analysis, t: &Transformed) -> Vec<Code> {
    dse_verify::check_all(analysis, Some(t))
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect()
}

/// Un-redirecting a private access (TidScaled offset replaced by a constant
/// zero) must raise `DSE003`.
#[test]
fn unredirected_private_access_is_flagged() {
    let (analysis, mut t) = transformed("dijkstra");
    assert!(!codes(&analysis, &t).contains(&Code::PrivateNotRedirected));
    // Strip every tid-derived addressing form, each replaced by a
    // stack-neutral tid-free equivalent.
    let mut broke = false;
    for i in &mut t.parallel.code {
        let replacement = match *i {
            Instr::TidScaled(_) => Instr::PushI(0),
            Instr::TidSpanScaled(_) => Instr::SextTrunc(8),
            Instr::FrameAddrTid { offset, .. } => Instr::FrameAddr(offset),
            Instr::GlobalAddrTid { addr, .. } => Instr::GlobalAddr(addr),
            _ => continue,
        };
        *i = replacement;
        broke = true;
    }
    assert!(broke, "expected tid-derived redirection in the output");
    assert!(codes(&analysis, &t).contains(&Code::PrivateNotRedirected));
}

/// Claiming every private access is shared must raise `DSE004` for the
/// tid-redirected sites (a shared access must resolve to replica 0).
#[test]
fn tid_addressed_shared_access_is_flagged() {
    let (analysis, mut t) = transformed("dijkstra");
    assert!(!codes(&analysis, &t).contains(&Code::SharedNotReplicaZero));
    t.plan.private_eids.clear();
    assert!(codes(&analysis, &t).contains(&Code::SharedNotReplicaZero));
}

/// Deleting the span bookkeeping after a promoted-pointer assignment must
/// raise `DSE005`.
#[test]
fn dropped_span_store_is_flagged() {
    let (analysis, mut t) = transformed("dijkstra");
    assert!(!codes(&analysis, &t).contains(&Code::SpanNotMaintained));
    let mut dropped = false;
    for f in &mut t.program.functions {
        fn strip(b: &mut dse_lang::ast::Block, dropped: &mut bool) {
            b.stmts.retain(|s| {
                if let StmtKind::Expr(e) = &s.kind {
                    if let ExprKind::Assign {
                        op: AssignOp::Set,
                        lhs,
                        ..
                    } = &e.kind
                    {
                        if matches!(&lhs.kind,
                            ExprKind::Var { name, .. } if name.starts_with("__sp_"))
                        {
                            *dropped = true;
                            return false;
                        }
                    }
                }
                true
            });
            for s in &mut b.stmts {
                match &mut s.kind {
                    StmtKind::If { then, els, .. } => {
                        strip(then, dropped);
                        if let Some(e) = els {
                            strip(e, dropped);
                        }
                    }
                    StmtKind::While { body, .. }
                    | StmtKind::DoWhile { body, .. }
                    | StmtKind::For { body, .. } => strip(body, dropped),
                    StmtKind::Block(inner) => strip(inner, dropped),
                    _ => {}
                }
            }
        }
        strip(&mut f.body, &mut dropped);
    }
    assert!(dropped, "expected span stores in the output");
    assert!(codes(&analysis, &t).contains(&Code::SpanNotMaintained));
}

/// Erasing the Wait of a DOACROSS loop must raise `DSE006`.
#[test]
fn missing_wait_is_flagged() {
    // Find a workload whose transform schedules a DOACROSS loop.
    let name = dse_workloads::all()
        .into_iter()
        .map(|w| w.name)
        .find(|n| {
            let (_, t) = transformed(n);
            t.parallel.code.iter().any(|i| matches!(i, Instr::Wait(_)))
        })
        .expect("some workload runs DOACROSS");
    let (analysis, mut t) = transformed(name);
    assert!(!codes(&analysis, &t).contains(&Code::SyncWindowViolation));
    for i in &mut t.parallel.code {
        if matches!(i, Instr::Wait(_)) {
            *i = Instr::LoopMark(LoopEvent::IterStart, 0);
        }
    }
    assert!(codes(&analysis, &t).contains(&Code::SyncWindowViolation));
}
