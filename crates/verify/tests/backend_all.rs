//! Backend verification over the whole corpus: every workload model and
//! the shipped example, serial and transformed at every optimization
//! level, must pass `DSE010`–`DSE015` clean. A finding here is a translator
//! bug (or a validator false positive — equally a bug: the auto-gate after
//! `reglower` would refuse correct code).

use dse_core::{Analysis, OptLevel};
use dse_ir::bytecode::CompiledProgram;
use dse_runtime::VmConfig;
use dse_workloads::Scale;

const LEVELS: [OptLevel; 3] = [OptLevel::None, OptLevel::NoConstSpan, OptLevel::Full];

fn assert_backend_clean(name: &str, prog: &CompiledProgram) {
    let rp =
        dse_ir::regcode::translate(prog).unwrap_or_else(|e| panic!("{name}: reglower failed: {e}"));
    let report = dse_verify::check_backend(prog, &rp);
    assert!(
        report.diagnostics.is_empty(),
        "{name}: backend verification found:\n{}",
        report.render_text()
    );
}

#[test]
fn workloads_verify_clean_under_both_backends() {
    for w in dse_workloads::all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", w.name));
        assert_backend_clean(&format!("{} (serial)", w.name), &analysis.serial);
        for opt in LEVELS {
            let t = analysis
                .transform(opt, 4)
                .unwrap_or_else(|e| panic!("{} @ {opt:?}: transform failed: {e}", w.name));
            assert_backend_clean(&format!("{} @ {opt:?} (parallel)", w.name), &t.parallel);
        }
    }
}

/// Regression: a `while` loop headed at a function entry used to branch
/// back into the promoted-slot prologue, re-reading stale frame memory and
/// spinning forever under the register backend. The fix resolves branch
/// targets past the prologue; the validator's `expected_branch_target`
/// check proves it, and this differential run pins the observable behavior.
#[test]
fn entry_headed_loop_agrees_across_backends() {
    let source = r#"
long f(long n) {
  while (n > 0) { n = n - 2; }
  return n;
}
int main() {
  out_long(f(9));
  return 0;
}
"#;
    let analysis = Analysis::from_source(source, VmConfig::default()).unwrap();
    assert_backend_clean("entry-headed loop", &analysis.serial);
    let mut stack_vm = dse_runtime::Vm::new(analysis.serial.clone(), VmConfig::default()).unwrap();
    stack_vm.run().unwrap();
    let rp = std::sync::Arc::new(dse_ir::regcode::translate(&analysis.serial).unwrap());
    let mut reg_vm =
        dse_runtime::Vm::with_reg(analysis.serial.clone(), rp, VmConfig::default()).unwrap();
    reg_vm.run().unwrap();
    assert_eq!(stack_vm.outputs_int(), vec![-1]);
    assert_eq!(reg_vm.outputs_int(), stack_vm.outputs_int());
}

#[test]
fn shipped_example_verifies_clean_under_both_backends() {
    let path = format!("{}/../../examples/scratch.cee", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).unwrap();
    let analysis = Analysis::from_source(&source, VmConfig::default()).unwrap();
    assert_backend_clean("scratch.cee (serial)", &analysis.serial);
    for opt in LEVELS {
        let t = analysis.transform(opt, 4).unwrap();
        assert_backend_clean(&format!("scratch.cee @ {opt:?} (parallel)"), &t.parallel);
    }
}
