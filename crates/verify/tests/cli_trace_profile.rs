//! End-to-end checks of the tracing and profiling surface: `--emit
//! chrome-trace` (valid trace-event JSON on a unified timeline), `--emit
//! flamegraph` (well-formed folded stacks) and the `dsec profile`
//! subcommand, all against the bundled DOALL+DOACROSS example.

use dse_telemetry::Json;
use std::collections::BTreeMap;
use std::process::Command;

fn example() -> String {
    format!(
        "{}/../../examples/pipeline_trace.cee",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Runs `dsec` with the given args, asserting success.
fn dsec(args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dsec"))
        .args(args)
        .output()
        .expect("spawn dsec");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(out.status.success(), "dsec {args:?} failed:\n{stderr}");
    (stdout, stderr)
}

#[test]
fn chrome_trace_is_valid_and_time_ordered() {
    let prog = example();
    let (stdout, stderr) = dsec(&[&prog, "--emit", "chrome-trace", "--threads", "4"]);
    let doc = Json::parse(&stdout).expect("chrome trace is one valid JSON document");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(events.len() > 20, "a real workload produces a real trace");
    doc.get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_i64)
        .expect("drop accounting is always present");

    // Every record is well-formed: metadata, or a span/instant with
    // numeric ts (and dur for spans).
    let mut names_by_pid: BTreeMap<i64, Vec<&str>> = BTreeMap::new();
    let mut ts_by_pid: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    let mut process_names = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        let pid = e.get("pid").and_then(Json::as_i64).expect("pid field");
        match ph {
            "M" => process_names.push(
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("process_name metadata"),
            ),
            "X" | "i" => {
                let ts = e.get("ts").and_then(Json::as_f64).expect("numeric ts");
                assert!(ts >= 0.0);
                if ph == "X" {
                    let dur = e.get("dur").and_then(Json::as_f64).expect("span dur");
                    assert!(dur >= 0.0);
                }
                let name = e.get("name").and_then(Json::as_str).expect("event name");
                names_by_pid.entry(pid).or_default().push(name);
                ts_by_pid.entry(pid).or_default().push(ts);
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // One swim-lane per process: the pipeline, the master, and at least
    // one extra worker.
    assert!(process_names.contains(&"pipeline"));
    assert!(process_names.contains(&"worker 0 (master)"));
    assert!(
        process_names
            .iter()
            .any(|n| n.starts_with("worker ") && !n.contains("master")),
        "a 4-thread run shows more than the master: {process_names:?}"
    );

    // The pipeline track (pid 1) carries the compilation phases; the
    // worker tracks carry dispatch, loop spans and DOACROSS sync from the
    // `chain` loop.
    let pipeline: Vec<&str> = names_by_pid.get(&1).cloned().unwrap_or_default();
    for phase in ["parse", "lower", "classify", "xform"] {
        assert!(
            pipeline.iter().any(|n| n.starts_with(phase)),
            "pipeline track has a {phase} span: {pipeline:?}"
        );
    }
    let runtime: Vec<&str> = names_by_pid
        .iter()
        .filter(|(pid, _)| **pid >= 10)
        .flat_map(|(_, v)| v.iter().copied())
        .collect();
    assert!(runtime.iter().any(|n| n.starts_with("dispatch loop")));
    assert!(runtime.iter().any(|n| n.starts_with("loop ")));
    assert!(runtime.contains(&"post"), "DOACROSS posts are traced");

    // Per-track timestamps are monotone (the exporter receives the events
    // time-sorted and must preserve that per swim-lane).
    for (pid, ts) in &ts_by_pid {
        for w in ts.windows(2) {
            assert!(w[0] <= w[1], "pid {pid} timestamps out of order");
        }
    }
    // Runtime events sit after the pipeline started: one unified epoch.
    let first_pipeline = ts_by_pid.get(&1).and_then(|v| v.first()).copied().unwrap();
    for (pid, ts) in &ts_by_pid {
        if *pid >= 10 {
            assert!(
                ts[0] >= first_pipeline,
                "worker {pid} predates the pipeline"
            );
        }
    }

    assert!(
        stderr.contains("[chrome-trace:"),
        "event count summary on stderr: {stderr}"
    );
}

#[test]
fn flamegraph_emits_folded_stacks() {
    let prog = example();
    let (stdout, stderr) = dsec(&[&prog, "--emit", "flamegraph", "--threads", "4"]);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty(), "folded output is non-empty");
    for l in &lines {
        let (stack, weight) = l.rsplit_once(' ').expect("`frames weight` shape");
        assert!(!stack.is_empty());
        let w: u64 = weight.parse().unwrap_or_else(|_| panic!("weight in {l:?}"));
        assert!(w >= 1, "no zero-weight frames");
    }
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("worker ") && l.contains(";loop ")),
        "per-worker loop frames present: {lines:?}"
    );
    assert!(stderr.contains("[flamegraph:"));
}

#[test]
fn profile_prints_hot_loop_table() {
    let prog = example();
    let (stdout, _) = dsec(&["profile", &prog, "--threads", "4"]);
    // Table header plus one row per profiled loop, labelled from the
    // compiled program.
    assert!(stdout.contains("loop"), "header present:\n{stdout}");
    assert!(
        stdout.contains("p50"),
        "histogram columns present:\n{stdout}"
    );
    assert!(stdout.contains("`fill`"), "DOALL loop row:\n{stdout}");
    assert!(stdout.contains("`chain`"), "DOACROSS loop row:\n{stdout}");
    assert!(stdout.contains("(serial)"), "serial bucket row:\n{stdout}");
    // Percentages are rendered and the rows account for real work.
    assert!(stdout.contains('%'), "instruction share column:\n{stdout}");
}

#[test]
fn profile_rejects_missing_file() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsec"))
        .args(["profile", "/nonexistent/nope.cee"])
        .output()
        .expect("spawn dsec");
    assert!(!out.status.success());
}
