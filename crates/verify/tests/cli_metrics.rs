//! End-to-end checks of `dsec`'s telemetry flags (`--timing`,
//! `--metrics`, `--emit trace`) against the bundled example program.

use dse_telemetry::{Json, RunMetrics};
use std::process::Command;

fn example() -> String {
    format!("{}/../../examples/scratch.cee", env!("CARGO_MANIFEST_DIR"))
}

/// Runs `dsec` with the given args, asserting success.
fn dsec(args: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dsec"))
        .args(args)
        .output()
        .expect("spawn dsec");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(out.status.success(), "dsec {args:?} failed:\n{stderr}");
    (stdout, stderr)
}

/// The metrics document is the stdout line that starts with `{`.
fn metrics_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("metrics JSON on stdout")
}

#[test]
fn metrics_cover_phases_and_per_thread_counters() {
    let prog = example();
    let (stdout, stderr) = dsec(&[
        &prog,
        "--run",
        "--threads",
        "4",
        "--timing",
        "--metrics",
        "-",
    ]);

    let parsed = Json::parse(metrics_line(&stdout)).expect("valid metrics JSON");
    let m = RunMetrics::from_json(&parsed).expect("well-formed metrics");

    // All six pipeline phases, in order.
    let names: Vec<&str> = m.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["parse", "lower", "profile", "classify", "plan", "xform"]
    );
    assert!(m.phases.iter().all(|p| p.duration.as_nanos() > 0));

    // Per-thread Figure-12 counters: one entry per worker, summing to the
    // aggregate, which in turn matches the human-readable VM report line.
    let vm = m.vm.as_ref().expect("--run populates vm stats");
    assert_eq!(m.threads, 4);
    assert_eq!(vm.per_thread.len(), 4);
    let work_sum: u64 = vm.per_thread.iter().map(|c| c.work).sum();
    assert_eq!(work_sum, vm.totals.work);
    assert!(vm.per_thread.iter().all(|c| c.work > 0), "every worker ran");
    let reported: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix('[')?.split(' ').next()?.parse().ok())
        .expect("instruction count on stderr");
    assert_eq!(vm.totals.work, reported);

    // Allocator contention counters ride along: every heap allocation is
    // either a front-end cache hit or a miss, and the example program
    // allocates, so the counters are live (not just present-but-zero).
    assert!(
        metrics_line(&stdout).contains("heap_contention"),
        "metrics JSON carries the allocator contention block"
    );
    let hc = &vm.heap_contention;
    assert!(
        hc.cache_hits + hc.cache_misses > 0,
        "allocations flow through the front-end caches: {hc:?}"
    );
    assert!(
        hc.cache_misses == 0 || hc.backend_locks > 0,
        "every miss takes the backend lock: {hc:?}"
    );

    // Executor pool counters: a 4-thread run keeps 3 persistent workers,
    // every parallel loop goes through the dispatcher, and each dispatch
    // wakes each worker exactly once.
    let pool = &vm.pool;
    assert_eq!(
        pool.workers, 3,
        "N-1 persistent workers, no churn: {pool:?}"
    );
    assert!(
        pool.dispatches >= 1,
        "the hot loop was dispatched: {pool:?}"
    );
    assert_eq!(
        pool.wakeups,
        pool.dispatches * pool.workers,
        "each dispatch wakes each worker once: {pool:?}"
    );
    assert!(
        stderr.lines().any(|l| l.starts_with("[pool:")),
        "pool stats line on stderr"
    );

    // The expansion happened and is accounted for.
    let e = m
        .expansion
        .as_ref()
        .expect("transform populates expansion stats");
    assert!(e.privatized_structures() >= 1);
    assert!(m
        .loops
        .iter()
        .any(|l| l.label == "hot" && l.iterations == 400));

    // --timing renders the same phases to stderr.
    for phase in names {
        assert!(stderr.contains(phase), "--timing output mentions {phase}");
    }
}

#[test]
fn metrics_file_and_serial_run() {
    let prog = example();
    let dir = std::env::temp_dir().join(format!("dsec-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.json");
    let path_str = path.to_str().unwrap();
    dsec(&[&prog, "--run", "--serial", "--metrics", path_str]);
    let text = std::fs::read_to_string(&path).unwrap();
    let m = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(m.threads, 1);
    let vm = m.vm.unwrap();
    assert_eq!(vm.per_thread.len(), 1);
    assert_eq!(vm.per_thread[0].work, vm.totals.work);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_emits_parseable_jsonl() {
    let prog = example();
    let (stdout, stderr) = dsec(&[&prog, "--emit", "trace"]);
    let lines: Vec<&str> = stdout.lines().filter(|l| l.starts_with('{')).collect();
    assert!(lines.len() > 1000, "trace of the example is substantial");
    let mut kinds = std::collections::HashSet::new();
    for l in &lines {
        let v = Json::parse(l).unwrap_or_else(|e| panic!("bad trace line {l}: {e}"));
        kinds.insert(
            v.get("ev")
                .and_then(Json::as_str)
                .expect("ev field")
                .to_string(),
        );
    }
    for ev in ["access", "loop", "alloc", "free"] {
        assert!(kinds.contains(ev), "trace contains {ev} events");
    }
    assert!(stderr.contains("events"), "event count reported on stderr");
}

#[test]
fn repeated_emit_values_print_once() {
    let prog = example();
    let (stdout, _) = dsec(&[&prog, "--emit", "report", "--emit", "report"]);
    let headers = stdout.matches("expansion report").count();
    assert_eq!(headers, 1, "duplicate --emit values are collapsed");
}
