//! `dsec` exit-code contract: `0` clean, `1` diagnostics-as-errors (and
//! compile/runtime failures), `2` usage and I/O errors.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_str()
        .unwrap()
        .to_string()
}

fn dsec(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dsec"))
        .args(args)
        .output()
        .expect("spawn dsec");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn clean_check_exits_zero() {
    let (code, _, _) = dsec(&["check", &fixture("doacross_sum.cee")]);
    assert_eq!(code, 0);
}

#[test]
fn warnings_exit_zero_by_default_and_one_under_strict() {
    let f = fixture("profile_unsound.cee");
    let (code, stdout, _) = dsec(&["check", &f]);
    assert_eq!(code, 0);
    assert!(stdout.contains("DSE001"));
    let (strict_code, strict_stdout, _) = dsec(&["check", &f, "--strict"]);
    assert_eq!(strict_code, 1);
    assert!(strict_stdout.contains("DSE001"));
}

#[test]
fn errors_exit_one() {
    let (code, stdout, _) = dsec(&["check", &fixture("conflict.cee")]);
    assert_eq!(code, 1);
    assert!(stdout.contains("DSE007"));
}

#[test]
fn usage_and_io_errors_exit_two() {
    let (code, _, _) = dsec(&[]);
    assert_eq!(code, 2, "no arguments is a usage error");
    let (code, _, _) = dsec(&["--no-such-flag"]);
    assert_eq!(code, 2, "unknown flag is a usage error");
    let (code, _, stderr) = dsec(&["/no/such/file.cee", "--emit", "report"]);
    assert_eq!(code, 2, "unreadable input is an I/O error");
    assert!(stderr.contains("no/such/file.cee"));
    let (code, _, _) = dsec(&["check", "/no/such/file.cee"]);
    assert_eq!(code, 2, "check on unreadable input is an I/O error");
    let (code, _, _) = dsec(&["check"]);
    assert_eq!(code, 2, "check without a file is a usage error");
}

#[test]
fn drive_verifies_before_transform() {
    // conflict.cee cannot be planned; the drive must fail before emitting,
    // with the verifier's finding on stderr.
    let f = fixture("conflict.cee");
    let (code, _, stderr) = dsec(&[&f, "--emit", "report"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("DSE007") || stderr.contains("planning error"));

    // A warning-only program still drives fine, with the finding surfaced.
    let f = fixture("profile_unsound.cee");
    let (code, stdout, stderr) = dsec(&[&f, "--run", "--threads", "2"]);
    assert_eq!(code, 0);
    assert!(stderr.contains("DSE001"), "warning surfaced on stderr");
    assert!(stdout.contains("out_long"), "program still ran");
}

#[test]
fn metrics_carry_lint_counts() {
    let f = fixture("profile_unsound.cee");
    let (code, stdout, _) = dsec(&[&f, "--metrics", "-"]);
    assert_eq!(code, 0);
    let line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("metrics JSON");
    let m = dse_telemetry::RunMetrics::from_json(
        &dse_telemetry::Json::parse(line).expect("valid JSON"),
    )
    .expect("well-formed metrics");
    let lints = m.lints.expect("lint counts present after a transform");
    assert_eq!(lints.errors, 0);
    assert_eq!(lints.warnings, 1);
}
