//! The verifier runs over every transformed test program: the eight
//! Table-4 workload models and the shipped example, at every optimization
//! level. The transform must satisfy its own Table 1–3 invariants
//! everywhere — any `DSE003`–`DSE007` error here is a transform bug, not a
//! property of the input program.

use dse_core::{Analysis, OptLevel};
use dse_runtime::VmConfig;
use dse_verify::diag::Severity;
use dse_workloads::Scale;

const LEVELS: [OptLevel; 3] = [OptLevel::None, OptLevel::NoConstSpan, OptLevel::Full];

fn assert_no_errors(name: &str, analysis: &Analysis, opt: OptLevel) {
    let t = analysis
        .transform(opt, 4)
        .unwrap_or_else(|e| panic!("{name} @ {opt:?}: transform failed: {e}"));
    let report = dse_verify::check_all(analysis, Some(&t));
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.render())
        .collect();
    assert!(
        errors.is_empty(),
        "{name} @ {opt:?}: transform violates its invariants:\n{}",
        errors.join("\n")
    );
}

#[test]
fn workloads_verify_at_every_opt_level() {
    for w in dse_workloads::all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", w.name));
        for opt in LEVELS {
            assert_no_errors(w.name, &analysis, opt);
        }
    }
}

#[test]
fn shipped_example_verifies_clean() {
    let path = format!("{}/../../examples/scratch.cee", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).unwrap();
    let analysis = Analysis::from_source(&source, VmConfig::default()).unwrap();
    for opt in LEVELS {
        let t = analysis.transform(opt, 4).unwrap();
        let report = dse_verify::check_all(&analysis, Some(&t));
        // The example is the quickstart's face: not just error-free but
        // entirely lint-free.
        assert!(
            report.diagnostics.is_empty(),
            "scratch.cee @ {opt:?} should be lint-free:\n{}",
            report.render_text()
        );
    }
}
