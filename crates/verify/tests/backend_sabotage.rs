//! Mutation smoke tests for the backend verifier: each seeded miscompile
//! from [`dse_verify::sabotage`] must be caught, and caught as exactly the
//! lint code that owns the property it breaks — the cascade (structural
//! before flow, bounds before dataflow, register checks before translation
//! validation) is what keeps one mutation from drowning the report in
//! downstream noise.

use dse_core::Analysis;
use dse_ir::RegProgram;
use dse_runtime::VmConfig;
use dse_verify::diag::Severity;
use dse_verify::sabotage;

/// A program with every mutation site the sabotage kinds need: promoted
/// `int` locals (narrow stores → `Sext` canonicalization), a call with the
/// promoted scalars live across it (spill/reload sequences), loops
/// (branches to retarget), and integer arithmetic (operands to swap).
const SOURCE: &str = r#"
long helper(long x) {
  return x * 2 + 1;
}
int main() {
  int acc; acc = 0;
  long t; t = 0;
  for (int i = 0; i < 10; i++) {
    acc = acc + i;
    t = t + helper(t + i);
    acc = acc - 1;
  }
  out_long(t + acc);
  return 0;
}
"#;

fn compiled() -> (dse_ir::bytecode::CompiledProgram, RegProgram) {
    let analysis = Analysis::from_source(SOURCE, VmConfig::default()).expect("fixture analyzes");
    let rp = dse_ir::regcode::translate(&analysis.serial).expect("fixture translates");
    (analysis.serial.clone(), rp)
}

#[test]
fn fixture_is_clean_before_sabotage() {
    let (prog, rp) = compiled();
    let report = dse_verify::check_backend(&prog, &rp);
    assert!(
        report.diagnostics.is_empty(),
        "fixture must verify clean:\n{}",
        report.render_text()
    );
    // Every mutation site the kinds below rely on must actually exist.
    assert!(
        !rp.promo.promoted.is_empty(),
        "fixture must promote scalars"
    );
    assert!(
        rp.promo.spills.iter().any(|s| !s.is_empty()),
        "fixture must spill around its call"
    );
}

#[test]
fn each_sabotage_fires_exactly_its_code() {
    let (prog, rp) = compiled();
    for kind in sabotage::ALL {
        let (mutated_prog, mutated_rp);
        let (p, r) = if kind.is_stack() {
            let mut p = prog.clone();
            assert!(
                sabotage::sabotage_stack(&mut p, kind),
                "{}: no mutation site in fixture",
                kind.name()
            );
            mutated_prog = p;
            (&mutated_prog, &rp)
        } else {
            let mut r = rp.clone();
            assert!(
                sabotage::sabotage_reg(&prog, &mut r, kind),
                "{}: no mutation site in fixture",
                kind.name()
            );
            mutated_rp = r;
            (&prog, &mutated_rp)
        };
        let report = dse_verify::check_backend(p, r);
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            !errors.is_empty(),
            "{}: seeded miscompile went uncaught",
            kind.name()
        );
        for d in &errors {
            assert_eq!(
                d.code,
                kind.expected_code(),
                "{}: expected only {}, got:\n{}",
                kind.name(),
                kind.expected_code(),
                report.render_text()
            );
        }
    }
}
