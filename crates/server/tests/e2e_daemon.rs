//! End-to-end daemon smoke: the real `dsed` binary, batch and socket
//! front ends, concurrent clients, shared cache.

use dse_server::Response;
use dse_telemetry::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROG_SUM: &str = r#"
int main() {
  long *acc; acc = malloc(1 * sizeof(long));
  int *scratch; scratch = malloc(8 * sizeof(int));
  int *out; out = malloc(50 * sizeof(int));
  acc[0] = 0;
  #pragma candidate ordered
  for (int i = 0; i < 50; i++) {
    for (int k = 0; k < 8; k++) { scratch[k] = i * k + 3; }
    int s; s = 0;
    for (int k = 0; k < 8; k++) { s += scratch[k]; }
    acc[0] = acc[0] + s;
    out[i] = s;
  }
  out_long(acc[0]);
  free(acc); free(scratch); free(out);
  return 0;
}
"#;

const PROG_FILL: &str = r#"
int main() {
  int *buf; buf = malloc(16 * sizeof(int));
  long total; total = 0;
  #pragma candidate fill
  for (int i = 0; i < 32; i++) {
    for (int k = 0; k < 16; k++) { buf[k] = i + k; }
    int s; s = 0;
    for (int k = 0; k < 16; k++) { s += buf[k]; }
    out_long(s);
  }
  free(buf);
  return 0;
}
"#;

fn req(id: &str, cmd: &str, source: &str, threads: i64) -> String {
    Json::obj(vec![
        ("id", Json::Str(id.into())),
        ("cmd", Json::Str(cmd.into())),
        ("source", Json::Str(source.into())),
        ("threads", Json::Int(threads)),
    ])
    .to_string()
}

fn parse_response(line: &str) -> Response {
    let j = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
    Response::from_json(&j).expect("well-formed response")
}

/// Eight concurrent mixed requests over two programs and their edits,
/// through the batch front end: every response ok, and the shared cache
/// served a nonzero number of phase artifacts.
#[test]
fn batch_eight_concurrent_mixed_requests() {
    let telemetry = std::env::temp_dir().join(format!("dsed-batch-{}.jsonl", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsed"))
        .args(["--batch", "--workers", "8"])
        .arg("--telemetry")
        .arg(&telemetry)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsed");

    let sum_comment = format!("// edited\n{PROG_SUM}");
    let fill_bigger = PROG_FILL.replace("i < 32", "i < 33");
    let requests = [
        req("sum-run-1", "run", PROG_SUM, 4),
        req("sum-run-2", "run", PROG_SUM, 4),
        req("sum-comment", "run", &sum_comment, 4),
        req("sum-check", "check", PROG_SUM, 4),
        req("fill-run-1", "run", PROG_FILL, 2),
        req("fill-run-2", "run", PROG_FILL, 2),
        req("fill-edit", "run", &fill_bigger, 2),
        req("fill-compile", "compile", PROG_FILL, 2),
    ];
    {
        let mut stdin = child.stdin.take().expect("stdin");
        for r in &requests {
            writeln!(stdin, "{r}").unwrap();
        }
        // Dropping stdin is the EOF that drains and stops the daemon.
    }
    let out = child.wait_with_output().expect("dsed exit");
    assert!(out.status.success(), "dsed failed: {out:?}");

    let responses: Vec<Response> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_response)
        .collect();
    assert_eq!(responses.len(), requests.len());
    let mut ids: Vec<&str> = responses.iter().map(|r| r.id.as_str()).collect();
    ids.sort_unstable();
    let mut expected = [
        "sum-run-1",
        "sum-run-2",
        "sum-comment",
        "sum-check",
        "fill-run-1",
        "fill-run-2",
        "fill-edit",
        "fill-compile",
    ];
    expected.sort_unstable();
    assert_eq!(ids, expected);
    for r in &responses {
        assert!(r.ok, "request `{}` failed: {:?}", r.id, r.error);
    }
    // Identical programs resolve to identical keys, so across the batch
    // the cache must have served artifacts (hit or dedup).
    let hits: usize = responses.iter().map(Response::cache_hits).sum();
    assert!(hits > 0, "no cache hits across a batch with duplicates");
    // The run responses carry the program's outputs.
    let sum_run = responses.iter().find(|r| r.id == "sum-run-1").unwrap();
    assert_eq!(sum_run.out_long, vec![35500]);
    let comment_run = responses.iter().find(|r| r.id == "sum-comment").unwrap();
    assert_eq!(comment_run.out_long, vec![35500]);

    // The final stderr line is the cumulative ServerStats document.
    let stderr = String::from_utf8(out.stderr).unwrap();
    let stats_line = stderr
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("stats line on stderr");
    let stats =
        dse_telemetry::metrics::server_from_json(&Json::parse(stats_line.trim()).unwrap()).unwrap();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.failures, 0);
    let total_hits: u64 = stats.phases.iter().map(|p| p.hits + p.dedups).sum();
    assert!(total_hits > 0);

    // Telemetry JSONL: one line per request, each with a phases array.
    let telem = std::fs::read_to_string(&telemetry).unwrap();
    let lines: Vec<&str> = telem.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 8);
    for l in lines {
        let j = Json::parse(l).unwrap();
        assert!(j.get("phases").and_then(Json::as_arr).is_some());
    }
    let _ = std::fs::remove_file(&telemetry);
}

/// A hundred-plus-request batch populates the latency histograms: the
/// stats payload reports nonzero p50/p90/p99 over every request, and the
/// `--metrics-addr` HTTP endpoint serves matching Prometheus quantile
/// lines while the daemon is live.
#[test]
fn latency_histograms_cover_hundred_requests() {
    use std::io::Read as _;
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_dsed"))
        .args(["--batch", "--workers", "8", "--metrics-addr", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsed");

    // The daemon announces the resolved (ephemeral) metrics address on
    // stderr before serving.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr"));
    let metrics_addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "stderr closed before the metrics line"
        );
        if let Some(rest) = line.trim().strip_prefix("dsed: metrics on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };

    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    const N: usize = 120;
    for i in 0..N {
        let prog = if i % 2 == 0 { PROG_SUM } else { PROG_FILL };
        writeln!(stdin, "{}", req(&format!("r{i}"), "run", prog, 2)).unwrap();
    }
    let mut line = String::new();
    for _ in 0..N {
        line.clear();
        assert!(
            stdout.read_line(&mut line).unwrap() > 0,
            "stdout closed early"
        );
        let r = parse_response(&line);
        assert!(r.ok, "request `{}` failed: {:?}", r.id, r.error);
    }

    // Every run is answered; scrape the live HTTP endpoint.
    let mut conn = TcpStream::connect(&metrics_addr).expect("connect metrics");
    write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    conn.flush().unwrap();
    let mut http = String::new();
    conn.read_to_string(&mut http).unwrap();
    assert!(http.starts_with("HTTP/1.0 200 OK"), "bad response: {http}");
    let body = http.split("\r\n\r\n").nth(1).expect("http body");
    let total: f64 = body
        .lines()
        .find_map(|l| l.strip_prefix("dsed_requests_total ")?.trim().parse().ok())
        .expect("request counter in exposition");
    assert!(total >= N as f64, "counter covers the batch: {total}");
    for series in [
        "dsed_request_latency_seconds{quantile=\"0.5\"}",
        "dsed_request_latency_seconds{quantile=\"0.99\"}",
        "dsed_queue_wait_seconds{quantile=\"0.9\"}",
        "dsed_request_latency_seconds_count",
    ] {
        assert!(body.contains(series), "missing `{series}` in:\n{body}");
    }

    // The protocol view of the same histograms: `stats` carries the raw
    // buckets, `metrics` the same text as HTTP.
    writeln!(
        stdin,
        "{}",
        Json::obj(vec![
            ("id", Json::Str("st".into())),
            ("cmd", Json::Str("stats".into())),
        ])
    )
    .unwrap();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    let st = parse_response(&line);
    assert!(st.ok, "stats failed: {:?}", st.error);
    let stats = st.stats.expect("stats payload");
    assert!(stats.requests >= N as u64);
    let lat = &stats.latency;
    assert!(
        lat.e2e.count() >= N as u64,
        "every request recorded end-to-end: {}",
        lat.e2e.count()
    );
    let (p50, p90, p99) = (
        lat.e2e.percentile(0.5),
        lat.e2e.percentile(0.9),
        lat.e2e.percentile(0.99),
    );
    assert!(p50 > 0, "p50 nonzero");
    assert!(
        p50 <= p90 && p90 <= p99,
        "quantiles ordered: {p50} {p90} {p99}"
    );
    assert!(
        lat.queue.count() >= N as u64,
        "every request waited in (possibly empty) queue"
    );
    assert!(!lat.phases.is_empty(), "per-phase histograms recorded");
    assert!(
        lat.phases.iter().all(|(_, h)| h.count() > 0),
        "no empty phase histogram is exported"
    );
    // Satellite counters: the task pool saw the whole batch.
    assert!(stats.taskpool.submitted >= N as u64);
    assert!(
        stats.taskpool.queued_peak >= 1,
        "the batch outran 8 workers"
    );

    writeln!(
        stdin,
        "{}",
        Json::obj(vec![
            ("id", Json::Str("m".into())),
            ("cmd", Json::Str("metrics".into())),
        ])
    )
    .unwrap();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    let m = parse_response(&line);
    assert!(m.ok);
    let text = m.metrics.expect("metrics text in protocol response");
    assert!(text.contains("dsed_request_latency_seconds_count"));
    assert!(text.contains("dsed_taskpool_submitted_total"));

    drop(stdin);
    let out = child.wait_with_output().expect("dsed exit");
    assert!(out.status.success(), "dsed failed: {out:?}");
}

fn wait_for_socket(path: &std::path::Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("dsed exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Socket front end: concurrent clients over a unix socket, then a stats
/// request, then shutdown.
#[test]
fn socket_concurrent_clients_and_shutdown() {
    use std::os::unix::net::UnixStream;
    let sock = std::env::temp_dir().join(format!("dsed-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsed"))
        .arg("--socket")
        .arg(&sock)
        .args(["--workers", "8"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dsed");
    wait_for_socket(&sock, &mut child);

    let roundtrip = |line: String| -> Response {
        let mut conn = UnixStream::connect(&sock).expect("connect");
        writeln!(conn, "{line}").unwrap();
        let mut reader = BufReader::new(conn);
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        parse_response(&resp)
    };

    let clients: Vec<_> = (0..8)
        .map(|n| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut conn = UnixStream::connect(&sock).expect("connect");
                writeln!(conn, "{}", req(&format!("s{n}"), "run", PROG_SUM, 2)).unwrap();
                let mut reader = BufReader::new(conn);
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                parse_response(&resp)
            })
        })
        .collect();
    for c in clients {
        let r = c.join().unwrap();
        assert!(r.ok, "socket request `{}` failed: {:?}", r.id, r.error);
        assert_eq!(r.out_long, vec![35500]);
    }

    let stats_resp = roundtrip(
        Json::obj(vec![
            ("id", Json::Str("st".into())),
            ("cmd", Json::Str("stats".into())),
        ])
        .to_string(),
    );
    assert!(stats_resp.ok);
    let stats = stats_resp.stats.expect("stats payload");
    assert_eq!(stats.requests, 9); // 8 runs + this stats request
    for ph in &stats.phases {
        assert_eq!(ph.misses, 1, "phase `{}` computed twice", ph.phase);
    }

    let bye = roundtrip(
        Json::obj(vec![
            ("id", Json::Str("bye".into())),
            ("cmd", Json::Str("shutdown".into())),
        ])
        .to_string(),
    );
    assert!(bye.ok);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "dsed shutdown status {status}");
            break;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("dsed did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!sock.exists(), "socket file not cleaned up");
}
