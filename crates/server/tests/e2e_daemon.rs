//! End-to-end daemon smoke: the real `dsed` binary, batch and socket
//! front ends, concurrent clients, shared cache.

use dse_server::Response;
use dse_telemetry::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const PROG_SUM: &str = r#"
int main() {
  long *acc; acc = malloc(1 * sizeof(long));
  int *scratch; scratch = malloc(8 * sizeof(int));
  int *out; out = malloc(50 * sizeof(int));
  acc[0] = 0;
  #pragma candidate ordered
  for (int i = 0; i < 50; i++) {
    for (int k = 0; k < 8; k++) { scratch[k] = i * k + 3; }
    int s; s = 0;
    for (int k = 0; k < 8; k++) { s += scratch[k]; }
    acc[0] = acc[0] + s;
    out[i] = s;
  }
  out_long(acc[0]);
  free(acc); free(scratch); free(out);
  return 0;
}
"#;

const PROG_FILL: &str = r#"
int main() {
  int *buf; buf = malloc(16 * sizeof(int));
  long total; total = 0;
  #pragma candidate fill
  for (int i = 0; i < 32; i++) {
    for (int k = 0; k < 16; k++) { buf[k] = i + k; }
    int s; s = 0;
    for (int k = 0; k < 16; k++) { s += buf[k]; }
    out_long(s);
  }
  free(buf);
  return 0;
}
"#;

fn req(id: &str, cmd: &str, source: &str, threads: i64) -> String {
    Json::obj(vec![
        ("id", Json::Str(id.into())),
        ("cmd", Json::Str(cmd.into())),
        ("source", Json::Str(source.into())),
        ("threads", Json::Int(threads)),
    ])
    .to_string()
}

fn parse_response(line: &str) -> Response {
    let j = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
    Response::from_json(&j).expect("well-formed response")
}

/// Eight concurrent mixed requests over two programs and their edits,
/// through the batch front end: every response ok, and the shared cache
/// served a nonzero number of phase artifacts.
#[test]
fn batch_eight_concurrent_mixed_requests() {
    let telemetry = std::env::temp_dir().join(format!("dsed-batch-{}.jsonl", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsed"))
        .args(["--batch", "--workers", "8"])
        .arg("--telemetry")
        .arg(&telemetry)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dsed");

    let sum_comment = format!("// edited\n{PROG_SUM}");
    let fill_bigger = PROG_FILL.replace("i < 32", "i < 33");
    let requests = [
        req("sum-run-1", "run", PROG_SUM, 4),
        req("sum-run-2", "run", PROG_SUM, 4),
        req("sum-comment", "run", &sum_comment, 4),
        req("sum-check", "check", PROG_SUM, 4),
        req("fill-run-1", "run", PROG_FILL, 2),
        req("fill-run-2", "run", PROG_FILL, 2),
        req("fill-edit", "run", &fill_bigger, 2),
        req("fill-compile", "compile", PROG_FILL, 2),
    ];
    {
        let mut stdin = child.stdin.take().expect("stdin");
        for r in &requests {
            writeln!(stdin, "{r}").unwrap();
        }
        // Dropping stdin is the EOF that drains and stops the daemon.
    }
    let out = child.wait_with_output().expect("dsed exit");
    assert!(out.status.success(), "dsed failed: {out:?}");

    let responses: Vec<Response> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_response)
        .collect();
    assert_eq!(responses.len(), requests.len());
    let mut ids: Vec<&str> = responses.iter().map(|r| r.id.as_str()).collect();
    ids.sort_unstable();
    let mut expected = [
        "sum-run-1",
        "sum-run-2",
        "sum-comment",
        "sum-check",
        "fill-run-1",
        "fill-run-2",
        "fill-edit",
        "fill-compile",
    ];
    expected.sort_unstable();
    assert_eq!(ids, expected);
    for r in &responses {
        assert!(r.ok, "request `{}` failed: {:?}", r.id, r.error);
    }
    // Identical programs resolve to identical keys, so across the batch
    // the cache must have served artifacts (hit or dedup).
    let hits: usize = responses.iter().map(Response::cache_hits).sum();
    assert!(hits > 0, "no cache hits across a batch with duplicates");
    // The run responses carry the program's outputs.
    let sum_run = responses.iter().find(|r| r.id == "sum-run-1").unwrap();
    assert_eq!(sum_run.out_long, vec![35500]);
    let comment_run = responses.iter().find(|r| r.id == "sum-comment").unwrap();
    assert_eq!(comment_run.out_long, vec![35500]);

    // The final stderr line is the cumulative ServerStats document.
    let stderr = String::from_utf8(out.stderr).unwrap();
    let stats_line = stderr
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("stats line on stderr");
    let stats =
        dse_telemetry::metrics::server_from_json(&Json::parse(stats_line.trim()).unwrap()).unwrap();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.failures, 0);
    let total_hits: u64 = stats.phases.iter().map(|p| p.hits + p.dedups).sum();
    assert!(total_hits > 0);

    // Telemetry JSONL: one line per request, each with a phases array.
    let telem = std::fs::read_to_string(&telemetry).unwrap();
    let lines: Vec<&str> = telem.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 8);
    for l in lines {
        let j = Json::parse(l).unwrap();
        assert!(j.get("phases").and_then(Json::as_arr).is_some());
    }
    let _ = std::fs::remove_file(&telemetry);
}

fn wait_for_socket(path: &std::path::Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("dsed exited before binding: {status}");
        }
        assert!(Instant::now() < deadline, "socket never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Socket front end: concurrent clients over a unix socket, then a stats
/// request, then shutdown.
#[test]
fn socket_concurrent_clients_and_shutdown() {
    use std::os::unix::net::UnixStream;
    let sock = std::env::temp_dir().join(format!("dsed-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsed"))
        .arg("--socket")
        .arg(&sock)
        .args(["--workers", "8"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dsed");
    wait_for_socket(&sock, &mut child);

    let roundtrip = |line: String| -> Response {
        let mut conn = UnixStream::connect(&sock).expect("connect");
        writeln!(conn, "{line}").unwrap();
        let mut reader = BufReader::new(conn);
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        parse_response(&resp)
    };

    let clients: Vec<_> = (0..8)
        .map(|n| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let mut conn = UnixStream::connect(&sock).expect("connect");
                writeln!(conn, "{}", req(&format!("s{n}"), "run", PROG_SUM, 2)).unwrap();
                let mut reader = BufReader::new(conn);
                let mut resp = String::new();
                reader.read_line(&mut resp).unwrap();
                parse_response(&resp)
            })
        })
        .collect();
    for c in clients {
        let r = c.join().unwrap();
        assert!(r.ok, "socket request `{}` failed: {:?}", r.id, r.error);
        assert_eq!(r.out_long, vec![35500]);
    }

    let stats_resp = roundtrip(
        Json::obj(vec![
            ("id", Json::Str("st".into())),
            ("cmd", Json::Str("stats".into())),
        ])
        .to_string(),
    );
    assert!(stats_resp.ok);
    let stats = stats_resp.stats.expect("stats payload");
    assert_eq!(stats.requests, 9); // 8 runs + this stats request
    for ph in &stats.phases {
        assert_eq!(ph.misses, 1, "phase `{}` computed twice", ph.phase);
    }

    let bye = roundtrip(
        Json::obj(vec![
            ("id", Json::Str("bye".into())),
            ("cmd", Json::Str("shutdown".into())),
        ])
        .to_string(),
    );
    assert!(bye.ok);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "dsed shutdown status {status}");
            break;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("dsed did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(!sock.exists(), "socket file not cleaned up");
}
