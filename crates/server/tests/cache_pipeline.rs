//! The content-addressed cache contract: key stability, whole-pipeline
//! reuse, early cutoff on edits, concurrent dedup, and the LRU bound.

use dse_core::{ArtifactStore, CacheOutcome, OptLevel, Pipeline, Trace};
use dse_runtime::VmConfig;
use dse_server::{Cmd, Request, Server, ServerConfig};
use std::sync::Arc;

/// A privatizable scratch fill plus an ordered accumulation (DOACROSS):
/// exercises every pipeline phase and verifies clean.
const PROG: &str = r#"
int main() {
  long *acc; acc = malloc(1 * sizeof(long));
  int *scratch; scratch = malloc(8 * sizeof(int));
  int *out; out = malloc(50 * sizeof(int));
  acc[0] = 0;
  #pragma candidate ordered
  for (int i = 0; i < 50; i++) {
    for (int k = 0; k < 8; k++) { scratch[k] = i * k + 3; }
    int s; s = 0;
    for (int k = 0; k < 8; k++) { s += scratch[k]; }
    acc[0] = acc[0] + s;
    out[i] = s;
  }
  out_long(acc[0]);
  free(acc); free(scratch); free(out);
  return 0;
}
"#;

/// `PROG` with a comment prepended: different source text, identical AST.
fn comment_edit() -> String {
    format!("// touched\n{PROG}")
}

/// `PROG` with the trip count changed: different everything downstream.
fn semantic_edit() -> String {
    PROG.replace("i < 50", "i < 51")
}

fn phase_names(trace: &Trace) -> Vec<&'static str> {
    trace.iter().map(|p| p.phase).collect()
}

fn outcome_of(trace: &Trace, phase: &str) -> CacheOutcome {
    trace
        .iter()
        .find(|p| p.phase == phase)
        .unwrap_or_else(|| panic!("phase `{phase}` missing from trace"))
        .outcome
}

/// Full drive through one store: analyze, transform, verify.
fn drive(store: &ArtifactStore, source: &str) -> Trace {
    let pipeline = Pipeline::new(store);
    let mut trace = Trace::new();
    let art = pipeline
        .analyze(source, &VmConfig::default(), &mut trace)
        .expect("analyze");
    let t = pipeline
        .transform(&art, OptLevel::Full, 4, false, &mut trace)
        .expect("transform");
    dse_verify::check_cached(store, &art.analysis, &t, &mut trace);
    trace
}

#[test]
fn content_keys_are_stable_across_stores() {
    // Two independent stores (as two daemon processes would have) derive
    // identical keys for identical content — the keys are pure functions
    // of the artifacts, not of process state.
    let a = drive(&ArtifactStore::new(), PROG);
    let b = drive(&ArtifactStore::new(), PROG);
    assert_eq!(phase_names(&a), phase_names(&b));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.key, y.key, "key mismatch in phase `{}`", x.phase);
    }
}

#[test]
fn repeated_request_skips_every_phase() {
    let store = ArtifactStore::new();
    let cold = drive(&store, PROG);
    assert_eq!(
        phase_names(&cold),
        ["parse", "lower", "profile", "classify", "plan", "xform", "verify"]
    );
    assert!(cold.iter().all(|p| p.outcome == CacheOutcome::Miss));

    let warm = drive(&store, PROG);
    assert_eq!(phase_names(&warm), phase_names(&cold));
    for p in &warm {
        assert_eq!(
            p.outcome,
            CacheOutcome::Hit,
            "phase `{}` recomputed on a repeated request",
            p.phase
        );
    }
    // The store's counters tell the same story: one compute per phase.
    let stats = store.stats();
    for ph in &stats.phases {
        assert_eq!(ph.misses, 1, "phase `{}` computed more than once", ph.phase);
        assert_eq!(ph.hits, 1);
    }
}

#[test]
fn comment_edit_reruns_only_parse() {
    // Early cutoff: the edited source re-parses, rediscovers the same AST
    // hash, and every downstream phase — verify included — is a hit.
    let store = ArtifactStore::new();
    drive(&store, PROG);
    let edited = drive(&store, &comment_edit());
    assert_eq!(outcome_of(&edited, "parse"), CacheOutcome::Miss);
    for phase in ["lower", "profile", "classify", "plan", "xform", "verify"] {
        assert_eq!(
            outcome_of(&edited, phase),
            CacheOutcome::Hit,
            "phase `{phase}` should have been cut off"
        );
    }
}

#[test]
fn semantic_edit_reruns_every_phase() {
    let store = ArtifactStore::new();
    drive(&store, PROG);
    let edited = drive(&store, &semantic_edit());
    assert!(
        edited.iter().all(|p| p.outcome == CacheOutcome::Miss),
        "a trip-count change must invalidate every phase: {:?}",
        edited
            .iter()
            .map(|p| (p.phase, p.outcome.as_str()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn verify_report_is_cached_and_shared() {
    // Regression for the cached verify pass: same xform key, same report
    // object, no second verifier run.
    let store = ArtifactStore::new();
    let pipeline = Pipeline::new(&store);
    let mut trace = Trace::new();
    let art = pipeline
        .analyze(PROG, &VmConfig::default(), &mut trace)
        .unwrap();
    let t = pipeline
        .transform(&art, OptLevel::Full, 4, false, &mut trace)
        .unwrap();
    let first = dse_verify::check_cached(&store, &art.analysis, &t, &mut trace);
    let second = dse_verify::check_cached(&store, &art.analysis, &t, &mut trace);
    assert!(Arc::ptr_eq(&first, &second));
    let verify = store
        .stats()
        .phases
        .into_iter()
        .find(|p| p.phase == "verify")
        .unwrap();
    assert_eq!((verify.misses, verify.hits), (1, 1));
}

#[test]
fn concurrent_identical_requests_collapse_to_one_compute() {
    // Eight simultaneous submissions of the same program: the first to
    // arrive computes each phase, the rest park on the in-flight marker
    // (dedup) or hit the published artifact. Exactly one compute per phase.
    let server = Arc::new(Server::new(&ServerConfig {
        workers: 8,
        capacity: 64,
    }));
    let handles: Vec<_> = (0..8)
        .map(|n| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut req = Request::new(format!("c{n}"), Cmd::Run);
                req.source = Some(PROG.to_string());
                req.threads = 2;
                server.handle(&req)
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap();
        assert!(resp.ok, "request failed: {:?}", resp.error);
        assert_eq!(resp.out_long, vec![35500]);
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.failures, 0);
    for ph in &stats.phases {
        assert_eq!(
            ph.misses, 1,
            "phase `{}` computed {} times under concurrency",
            ph.phase, ph.misses
        );
        assert_eq!(ph.hits + ph.dedups, 7, "phase `{}`", ph.phase);
    }
}

#[test]
fn lru_eviction_keeps_the_store_bounded() {
    let store = ArtifactStore::with_capacity(6);
    let pipeline = Pipeline::new(&store);
    // Nine distinct trivial programs, four artifacts each: far beyond the
    // bound, so older artifacts must be evicted along the way.
    for n in 0..9 {
        let mut trace = Trace::new();
        let source = format!("int main() {{ out_long({n}); return 0; }}");
        pipeline
            .analyze(&source, &VmConfig::default(), &mut trace)
            .expect("analyze");
    }
    assert!(
        store.len() <= 6,
        "store holds {} artifacts, capacity 6",
        store.len()
    );
    let evictions: u64 = store.stats().phases.iter().map(|p| p.evictions).sum();
    assert!(evictions > 0, "expected evictions past the capacity bound");
}
