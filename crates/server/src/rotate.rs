//! Size-capped rotation for the daemon's per-request telemetry JSONL.
//!
//! An always-on daemon appending one line per request grows its telemetry
//! file without bound. [`RotatingWriter`] caps it: once the active file
//! would exceed `max_bytes`, it is renamed to `<path>.1` (shifting
//! `<path>.1` → `<path>.2` and so on) and a fresh file is started. Only
//! the newest `keep` rotated files are retained; the oldest is deleted.
//! Total disk use is therefore bounded by roughly
//! `(keep + 1) * max_bytes` plus one line of slack.
//!
//! Rotation happens on line boundaries (each `write` call is assumed to
//! be one JSONL line, which is how the server's telemetry sink writes),
//! so no file ever ends mid-record.

use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;

/// A [`Write`] implementation over `<path>` that rotates by size.
pub struct RotatingWriter {
    path: PathBuf,
    file: File,
    written: u64,
    max_bytes: u64,
    keep: usize,
}

impl RotatingWriter {
    /// Opens `<path>` for appending (created if absent), rotating once the
    /// file exceeds `max_bytes` and keeping the newest `keep` rotated
    /// files. `max_bytes` below 1 KiB is clamped up so a single long line
    /// cannot force a rotation per write; `keep` 0 means rotated files are
    /// deleted immediately (only the active file survives).
    pub fn open(
        path: impl Into<PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> io::Result<RotatingWriter> {
        let path = path.into();
        let file = File::options().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(RotatingWriter {
            path,
            file,
            written,
            max_bytes: max_bytes.max(1024),
            keep,
        })
    }

    /// Bytes written to the active file so far (resets on rotation).
    pub fn active_len(&self) -> u64 {
        self.written
    }

    fn rotated_name(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    /// Shifts `<path>.i` → `<path>.(i+1)`, drops the oldest, renames the
    /// active file to `<path>.1`, and reopens a fresh active file.
    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        if self.keep == 0 {
            let _ = std::fs::remove_file(&self.path);
        } else {
            let _ = std::fs::remove_file(self.rotated_name(self.keep));
            for n in (1..self.keep).rev() {
                let _ = std::fs::rename(self.rotated_name(n), self.rotated_name(n + 1));
            }
            std::fs::rename(&self.path, self.rotated_name(1))?;
        }
        self.file = File::options().create(true).append(true).open(&self.path)?;
        self.written = 0;
        Ok(())
    }
}

impl Write for RotatingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Rotate *before* the write that would overflow, so the active
        // file stays under the cap except when one line alone exceeds it.
        if self.written > 0 && self.written + buf.len() as u64 > self.max_bytes {
            self.rotate()?;
        }
        let n = self.file.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dse-rotate-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rotates_on_line_boundaries_and_keeps_n() {
        let dir = tmpdir("keep");
        let path = dir.join("telemetry.jsonl");
        let mut w = RotatingWriter::open(&path, 1024, 2).unwrap();
        let line = format!("{{\"x\":\"{}\"}}\n", "y".repeat(400));
        for _ in 0..10 {
            w.write_all(line.as_bytes()).unwrap();
        }
        w.flush().unwrap();
        // 2 lines fit under 1024; 10 lines = 5 files, but only the active
        // one plus 2 rotations survive.
        assert!(path.exists());
        assert!(dir.join("telemetry.jsonl.1").exists());
        assert!(dir.join("telemetry.jsonl.2").exists());
        assert!(!dir.join("telemetry.jsonl.3").exists());
        // Every surviving file ends on a line boundary and stays capped.
        for name in ["telemetry.jsonl", "telemetry.jsonl.1", "telemetry.jsonl.2"] {
            let text = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(text.ends_with('\n'), "{name} ends mid-record");
            assert!(text.len() as u64 <= 1024, "{name} exceeds the cap");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_to_existing_file_across_reopens() {
        let dir = tmpdir("reopen");
        let path = dir.join("t.jsonl");
        {
            let mut w = RotatingWriter::open(&path, 4096, 1).unwrap();
            w.write_all(b"{\"a\":1}\n").unwrap();
        }
        let mut w = RotatingWriter::open(&path, 4096, 1).unwrap();
        assert_eq!(w.active_len(), 8);
        w.write_all(b"{\"b\":2}\n").unwrap();
        w.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_zero_discards_rotated_files() {
        let dir = tmpdir("zero");
        let path = dir.join("t.jsonl");
        let mut w = RotatingWriter::open(&path, 1024, 0).unwrap();
        let line = format!("{{\"x\":\"{}\"}}\n", "y".repeat(600));
        for _ in 0..4 {
            w.write_all(line.as_bytes()).unwrap();
        }
        w.flush().unwrap();
        assert!(path.exists());
        assert!(!dir.join("t.jsonl.1").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
