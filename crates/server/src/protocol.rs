//! The `dsed` wire protocol: newline-delimited JSON, one object per
//! request and one per response. Documented in DESIGN.md ("The dsed
//! daemon"); field order is fixed so responses diff cleanly.
//!
//! ```text
//! → {"id":"1","cmd":"run","source":"...","threads":4,"opt":"full",
//!    "baseline":false,"serial":false,"strict":false,"in":[3]}
//! ← {"id":"1","ok":true,"error":null,"console":"...","out_long":[7],
//!    "out_float":[],"exit":0,"diagnostics":[],
//!    "phases":[{"phase":"parse","key":"<32 hex>","cache":"miss","ns":812345}, ...],
//!    "stats":null}
//! ```
//!
//! Absent request fields take defaults (`threads` 4, `opt` full, flags
//! false, empty inputs), so the minimal request is `{"cmd":"run",
//! "source":"..."}`. A program is supplied either inline (`source`) or as
//! a daemon-side path (`path`); inline wins when both are present.

use dse_core::{CacheOutcome, OptLevel, PhaseOutcome, Trace};
use dse_runtime::BackendKind;
use dse_telemetry::metrics::{server_from_json, server_to_json};
use dse_telemetry::{Json, ServerStats};

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Analyze, transform, verify and execute; the response carries the
    /// program's console output and outputs.
    Run,
    /// Analyze, transform and verify only (warms the cache).
    Compile,
    /// Run the soundness verifier and return its findings.
    Check,
    /// Report cumulative [`ServerStats`].
    Stats,
    /// Report the Prometheus-style text exposition (counters, gauges and
    /// latency summaries) in the response's `metrics` field.
    Metrics,
    /// Stop accepting requests and shut the daemon down.
    Shutdown,
}

impl Cmd {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Cmd::Run => "run",
            Cmd::Compile => "compile",
            Cmd::Check => "check",
            Cmd::Stats => "stats",
            Cmd::Metrics => "metrics",
            Cmd::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Cmd> {
        match s {
            "run" => Some(Cmd::Run),
            "compile" => Some(Cmd::Compile),
            "check" => Some(Cmd::Check),
            "stats" => Some(Cmd::Stats),
            "metrics" => Some(Cmd::Metrics),
            "shutdown" => Some(Cmd::Shutdown),
            _ => None,
        }
    }
}

/// One client request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The command.
    pub cmd: Cmd,
    /// Inline program text (takes precedence over `path`).
    pub source: Option<String>,
    /// Daemon-side path to the program.
    pub path: Option<String>,
    /// Worker threads for the transformed program.
    pub threads: u32,
    /// Optimization level.
    pub opt: OptLevel,
    /// Use the runtime-privatization baseline plan.
    pub baseline: bool,
    /// Execute the serial program instead of the transformed one.
    pub serial: bool,
    /// `check`: treat warnings as failures.
    pub strict: bool,
    /// Integer inputs (profiling and execution).
    pub inputs: Vec<i64>,
    /// Execution backend for `run` (`"stack"` or `"reg"` on the wire;
    /// absent means stack).
    pub exec_backend: BackendKind,
}

impl Request {
    /// A request with every optional field at its default.
    pub fn new(id: impl Into<String>, cmd: Cmd) -> Request {
        Request {
            id: id.into(),
            cmd,
            source: None,
            path: None,
            threads: 4,
            opt: OptLevel::Full,
            baseline: false,
            serial: false,
            strict: false,
            inputs: Vec::new(),
            exec_backend: BackendKind::Stack,
        }
    }

    /// Serializes in wire field order.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::Str(self.id.clone())),
            ("cmd", Json::Str(self.cmd.as_str().into())),
        ];
        if let Some(s) = &self.source {
            pairs.push(("source", Json::Str(s.clone())));
        }
        if let Some(p) = &self.path {
            pairs.push(("path", Json::Str(p.clone())));
        }
        pairs.push(("threads", Json::Int(self.threads as i64)));
        pairs.push(("opt", Json::Str(opt_name(self.opt).into())));
        pairs.push(("baseline", Json::Bool(self.baseline)));
        pairs.push(("serial", Json::Bool(self.serial)));
        pairs.push(("strict", Json::Bool(self.strict)));
        pairs.push(("exec_backend", Json::Str(self.exec_backend.name().into())));
        pairs.push((
            "in",
            Json::Arr(self.inputs.iter().map(|&n| Json::Int(n)).collect()),
        ));
        Json::obj(pairs)
    }

    /// Parses a request object; absent fields take defaults.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an error response when `cmd` is
    /// missing or unknown, or a field has the wrong type.
    pub fn from_json(j: &Json) -> Result<Request, String> {
        let cmd = j.get("cmd").and_then(Json::as_str).ok_or("missing `cmd`")?;
        let cmd = Cmd::parse(cmd).ok_or_else(|| format!("unknown cmd `{cmd}`"))?;
        let mut r = Request::new(j.get("id").and_then(Json::as_str).unwrap_or(""), cmd);
        r.source = j.get("source").and_then(Json::as_str).map(str::to_string);
        r.path = j.get("path").and_then(Json::as_str).map(str::to_string);
        if let Some(t) = j.get("threads").and_then(Json::as_i64) {
            r.threads = u32::try_from(t).map_err(|_| "bad `threads`".to_string())?;
        }
        if let Some(o) = j.get("opt").and_then(Json::as_str) {
            r.opt = parse_opt(o).ok_or_else(|| format!("unknown opt `{o}`"))?;
        }
        r.baseline = j.get("baseline").and_then(Json::as_bool).unwrap_or(false);
        r.serial = j.get("serial").and_then(Json::as_bool).unwrap_or(false);
        r.strict = j.get("strict").and_then(Json::as_bool).unwrap_or(false);
        if let Some(b) = j.get("exec_backend").and_then(Json::as_str) {
            r.exec_backend =
                BackendKind::parse(b).ok_or_else(|| format!("unknown exec_backend `{b}`"))?;
        }
        if let Some(arr) = j.get("in").and_then(Json::as_arr) {
            r.inputs = arr.iter().filter_map(Json::as_i64).collect();
        }
        Ok(r)
    }
}

/// One phase outcome on the wire: which artifact, hit/miss/dedup, and the
/// requester's wall time obtaining it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseLine {
    /// Phase name.
    pub phase: String,
    /// The artifact's content key, 32 hex digits.
    pub key: String,
    /// `"hit"`, `"miss"` or `"dedup"`.
    pub cache: String,
    /// Wall nanoseconds spent obtaining the artifact.
    pub ns: u64,
}

impl PhaseLine {
    /// Converts a pipeline [`PhaseOutcome`].
    pub fn from_outcome(p: &PhaseOutcome) -> PhaseLine {
        PhaseLine {
            phase: p.phase.to_string(),
            key: p.key.to_string(),
            cache: p.outcome.as_str().to_string(),
            ns: p.wall.as_nanos() as u64,
        }
    }

    /// Converts a whole request trace.
    pub fn from_trace(trace: &Trace) -> Vec<PhaseLine> {
        trace.iter().map(PhaseLine::from_outcome).collect()
    }

    /// True unless this phase was computed by this request.
    pub fn served_from_cache(&self) -> bool {
        self.cache != CacheOutcome::Miss.as_str()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("phase", Json::Str(self.phase.clone())),
            ("key", Json::Str(self.key.clone())),
            ("cache", Json::Str(self.cache.clone())),
            ("ns", Json::Int(self.ns as i64)),
        ])
    }

    fn from_json(j: &Json) -> Option<PhaseLine> {
        Some(PhaseLine {
            phase: j.get("phase")?.as_str()?.to_string(),
            key: j.get("key")?.as_str()?.to_string(),
            cache: j.get("cache")?.as_str()?.to_string(),
            ns: j.get("ns")?.as_i64()? as u64,
        })
    }
}

/// One daemon response.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// The request's correlation id.
    pub id: String,
    /// False when the request failed (details in `error`).
    pub ok: bool,
    /// Failure message.
    pub error: Option<String>,
    /// `run`: the program's console output.
    pub console: String,
    /// `run`: integer outputs.
    pub out_long: Vec<i64>,
    /// `run`: float outputs.
    pub out_float: Vec<f64>,
    /// The exit code `dsec` would have returned.
    pub exit: i64,
    /// Rendered verifier findings.
    pub diagnostics: Vec<String>,
    /// Per-phase cache outcomes, in execution order.
    pub phases: Vec<PhaseLine>,
    /// Cumulative stats (`stats` command only).
    pub stats: Option<ServerStats>,
    /// Prometheus-style text exposition (`metrics` command only).
    pub metrics: Option<String>,
}

impl Response {
    /// An error response for `id` with exit code 1.
    pub fn failure(id: impl Into<String>, error: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            ok: false,
            error: Some(error.into()),
            exit: 1,
            ..Response::default()
        }
    }

    /// Count of phases this request got from cache (dedups included).
    pub fn cache_hits(&self) -> usize {
        self.phases.iter().filter(|p| p.served_from_cache()).count()
    }

    /// Count of phases this request computed.
    pub fn cache_misses(&self) -> usize {
        self.phases.len() - self.cache_hits()
    }

    /// Serializes in wire field order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("ok", Json::Bool(self.ok)),
            (
                "error",
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("console", Json::Str(self.console.clone())),
            (
                "out_long",
                Json::Arr(self.out_long.iter().map(|&n| Json::Int(n)).collect()),
            ),
            (
                "out_float",
                Json::Arr(self.out_float.iter().map(|&f| Json::Float(f)).collect()),
            ),
            ("exit", Json::Int(self.exit)),
            (
                "diagnostics",
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| Json::Str(d.clone()))
                        .collect(),
                ),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseLine::to_json).collect()),
            ),
            (
                "stats",
                match &self.stats {
                    Some(s) => server_to_json(s),
                    None => Json::Null,
                },
            ),
            (
                "metrics",
                match &self.metrics {
                    Some(m) => Json::Str(m.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a response object; absent fields take defaults.
    ///
    /// # Errors
    ///
    /// Returns a message when a present field has the wrong type.
    pub fn from_json(j: &Json) -> Result<Response, String> {
        let mut r = Response {
            id: j.get("id").and_then(Json::as_str).unwrap_or("").to_string(),
            ok: j.get("ok").and_then(Json::as_bool).unwrap_or(false),
            ..Response::default()
        };
        r.error = j
            .get("error")
            .filter(|e| !matches!(e, Json::Null))
            .and_then(Json::as_str)
            .map(str::to_string);
        if let Some(c) = j.get("console").and_then(Json::as_str) {
            r.console = c.to_string();
        }
        if let Some(a) = j.get("out_long").and_then(Json::as_arr) {
            r.out_long = a.iter().filter_map(Json::as_i64).collect();
        }
        if let Some(a) = j.get("out_float").and_then(Json::as_arr) {
            r.out_float = a.iter().filter_map(Json::as_f64).collect();
        }
        r.exit = j.get("exit").and_then(Json::as_i64).unwrap_or(0);
        if let Some(a) = j.get("diagnostics").and_then(Json::as_arr) {
            r.diagnostics = a
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect();
        }
        if let Some(a) = j.get("phases").and_then(Json::as_arr) {
            r.phases = a
                .iter()
                .map(|p| PhaseLine::from_json(p).ok_or("bad phase line"))
                .collect::<Result<_, _>>()?;
        }
        if let Some(s) = j.get("stats").filter(|s| !matches!(s, Json::Null)) {
            r.stats = Some(server_from_json(s).map_err(|e| e.to_string())?);
        }
        r.metrics = j
            .get("metrics")
            .filter(|m| !matches!(m, Json::Null))
            .and_then(Json::as_str)
            .map(str::to_string);
        Ok(r)
    }
}

/// Wire name of an optimization level.
pub fn opt_name(opt: OptLevel) -> &'static str {
    match opt {
        OptLevel::None => "none",
        OptLevel::NoConstSpan => "noconst",
        OptLevel::Full => "full",
    }
}

/// Parses an optimization-level wire name.
pub fn parse_opt(s: &str) -> Option<OptLevel> {
    match s {
        "none" => Some(OptLevel::None),
        "noconst" => Some(OptLevel::NoConstSpan),
        "full" => Some(OptLevel::Full),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut r = Request::new("42", Cmd::Run);
        r.source = Some("long main() { return 0; }".into());
        r.threads = 8;
        r.opt = OptLevel::None;
        r.baseline = true;
        r.inputs = vec![3, 1, 4];
        let back = Request::from_json(&r.to_json()).unwrap();
        assert_eq!(back.id, "42");
        assert_eq!(back.cmd, Cmd::Run);
        assert_eq!(back.source.as_deref(), Some("long main() { return 0; }"));
        assert_eq!(back.threads, 8);
        assert_eq!(back.opt, OptLevel::None);
        assert!(back.baseline);
        assert_eq!(back.inputs, vec![3, 1, 4]);
    }

    #[test]
    fn minimal_request_defaults() {
        let j = Json::parse(r#"{"cmd":"compile","source":"x"}"#).unwrap();
        let r = Request::from_json(&j).unwrap();
        assert_eq!(r.cmd, Cmd::Compile);
        assert_eq!(r.threads, 4);
        assert_eq!(r.opt, OptLevel::Full);
        assert!(!r.baseline && !r.serial && !r.strict);
        assert!(r.inputs.is_empty());
    }

    #[test]
    fn bad_requests_are_rejected() {
        let missing = Json::parse(r#"{"source":"x"}"#).unwrap();
        assert!(Request::from_json(&missing).is_err());
        let unknown = Json::parse(r#"{"cmd":"reboot"}"#).unwrap();
        assert!(Request::from_json(&unknown).is_err());
    }

    #[test]
    fn response_round_trips() {
        let r = Response {
            id: "7".into(),
            ok: true,
            error: None,
            console: "hello\n".into(),
            out_long: vec![1, 2],
            out_float: vec![0.5],
            exit: 0,
            diagnostics: vec!["warning: DSE001 ...".into()],
            phases: vec![PhaseLine {
                phase: "parse".into(),
                key: "00".repeat(16),
                cache: "miss".into(),
                ns: 123,
            }],
            stats: None,
            metrics: None,
        };
        let back = Response::from_json(&r.to_json()).unwrap();
        assert_eq!(back.id, "7");
        assert!(back.ok);
        assert_eq!(back.console, "hello\n");
        assert_eq!(back.out_long, vec![1, 2]);
        assert_eq!(back.phases, r.phases);
        assert_eq!(back.cache_hits(), 0);
        assert_eq!(back.cache_misses(), 1);
    }
}
