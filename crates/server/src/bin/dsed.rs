//! `dsed` — the compile-and-run daemon.
//!
//! ```text
//! dsed --socket <path> [--workers N] [--capacity N] [--telemetry <path|->]
//!      [--telemetry-max-bytes N] [--telemetry-keep N]
//!      [--metrics-addr <host:port>]
//! dsed --batch         [--workers N] [--capacity N] [--telemetry <path|->]
//!      [--telemetry-max-bytes N] [--telemetry-keep N]
//!      [--metrics-addr <host:port>]
//! ```
//!
//! `--socket` listens on a unix socket; clients (`dsec --daemon <path>`,
//! or anything speaking the newline-delimited JSON protocol in DESIGN.md)
//! connect and exchange one JSON object per line. A `shutdown` request
//! stops the daemon after in-flight requests drain.
//!
//! `--batch` reads requests from stdin and writes responses to stdout,
//! still executing concurrently on the worker pool — responses come back
//! in completion order, correlated by `id`. At EOF the daemon drains and
//! prints the cumulative stats as one JSON line on stderr.
//!
//! `--telemetry` streams one JSONL line per request (id, command, wall
//! time, per-phase cache outcomes) to a file, or to stderr with `-`. File
//! sinks rotate by size: once the active file would exceed
//! `--telemetry-max-bytes` (default 4 MiB) it becomes `<path>.1` and a
//! fresh file starts; only the newest `--telemetry-keep` rotated files
//! (default 4) are retained.
//!
//! `--metrics-addr` serves the Prometheus-style text exposition (request
//! counters, cache outcomes, latency summaries) over plain HTTP on the
//! given TCP address — `curl host:port/metrics`. The same text is
//! available over the daemon protocol as the `metrics` request.

use dse_server::{RotatingWriter, Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: dsed --socket <path> [--workers N] [--capacity N] [--telemetry <path|->] \
         [--telemetry-max-bytes N] [--telemetry-keep N] [--metrics-addr <host:port>]\n\
         \x20      dsed --batch [--workers N] [--capacity N] [--telemetry <path|->] \
         [--telemetry-max-bytes N] [--telemetry-keep N] [--metrics-addr <host:port>]"
    );
    std::process::exit(2)
}

/// Minimal HTTP/1.0 responder: every request (path ignored) gets the
/// current Prometheus text. One thread, sequential accepts — metrics
/// scrapes are rare and tiny.
fn serve_metrics(server: Arc<Server>, listener: std::net::TcpListener) {
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        if server.shutting_down() {
            break;
        }
        // Drain the request line so the client sees a clean exchange; the
        // path is irrelevant (everything serves /metrics).
        let mut buf = [0u8; 1024];
        let _ = std::io::Read::read(&mut conn, &mut buf);
        let body = server.prometheus_text();
        let _ = write!(
            conn,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut batch = false;
    let mut config = ServerConfig::default();
    let mut telemetry: Option<String> = None;
    let mut telemetry_max_bytes: u64 = 4 << 20;
    let mut telemetry_keep: usize = 4;
    let mut metrics_addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--batch" => batch = true,
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--capacity" => {
                config.capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--telemetry" => telemetry = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--telemetry-max-bytes" => {
                telemetry_max_bytes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--telemetry-keep" => {
                telemetry_keep = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--metrics-addr" => metrics_addr = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if batch == socket.is_some() {
        usage(); // exactly one front end
    }

    let mut server = Server::new(&config);
    if let Some(dest) = telemetry {
        let sink: Box<dyn Write + Send> = if dest == "-" {
            Box::new(std::io::stderr())
        } else {
            match RotatingWriter::open(&dest, telemetry_max_bytes, telemetry_keep) {
                Ok(w) => Box::new(w),
                Err(e) => {
                    eprintln!("dsed: {dest}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        server = server.with_telemetry(sink);
    }
    let server = Arc::new(server);

    if let Some(addr) = metrics_addr {
        match std::net::TcpListener::bind(&addr) {
            Ok(listener) => {
                // Print the resolved address: `--metrics-addr 127.0.0.1:0`
                // binds an ephemeral port.
                let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
                eprintln!("dsed: metrics on http://{local}/metrics");
                let server = Arc::clone(&server);
                std::thread::spawn(move || serve_metrics(server, listener));
            }
            Err(e) => {
                eprintln!("dsed: {addr}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let served = if batch {
        server.serve_batch(std::io::stdin().lock(), std::io::stdout())
    } else {
        let path = socket.expect("checked above");
        eprintln!("dsed: listening on {path}");
        server.serve_socket(&path)
    };
    match served {
        Ok(stats) => {
            eprintln!("{}", dse_telemetry::metrics::server_to_json(&stats));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dsed: {e}");
            ExitCode::from(2)
        }
    }
}
