//! `dsed` — the compile-and-run daemon.
//!
//! ```text
//! dsed --socket <path> [--workers N] [--capacity N] [--telemetry <path|->]
//! dsed --batch         [--workers N] [--capacity N] [--telemetry <path|->]
//! ```
//!
//! `--socket` listens on a unix socket; clients (`dsec --daemon <path>`,
//! or anything speaking the newline-delimited JSON protocol in DESIGN.md)
//! connect and exchange one JSON object per line. A `shutdown` request
//! stops the daemon after in-flight requests drain.
//!
//! `--batch` reads requests from stdin and writes responses to stdout,
//! still executing concurrently on the worker pool — responses come back
//! in completion order, correlated by `id`. At EOF the daemon drains and
//! prints the cumulative stats as one JSON line on stderr.
//!
//! `--telemetry` streams one JSONL line per request (id, command, wall
//! time, per-phase cache outcomes) to a file, or to stderr with `-`.

use dse_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: dsed --socket <path> [--workers N] [--capacity N] [--telemetry <path|->]\n\
         \x20      dsed --batch [--workers N] [--capacity N] [--telemetry <path|->]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut batch = false;
    let mut config = ServerConfig::default();
    let mut telemetry: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--batch" => batch = true,
            "--workers" => {
                config.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--capacity" => {
                config.capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--telemetry" => telemetry = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if batch == socket.is_some() {
        usage(); // exactly one front end
    }

    let mut server = Server::new(&config);
    if let Some(dest) = telemetry {
        let sink: Box<dyn Write + Send> = if dest == "-" {
            Box::new(std::io::stderr())
        } else {
            match std::fs::File::create(&dest) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("dsed: {dest}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        server = server.with_telemetry(sink);
    }
    let server = Arc::new(server);

    let served = if batch {
        server.serve_batch(std::io::stdin().lock(), std::io::stdout())
    } else {
        let path = socket.expect("checked above");
        eprintln!("dsed: listening on {path}");
        server.serve_socket(&path)
    };
    match served {
        Ok(stats) => {
            eprintln!("{}", dse_telemetry::metrics::server_to_json(&stats));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dsed: {e}");
            ExitCode::from(2)
        }
    }
}
