//! # dse-server — the `dsed` compile-and-run daemon
//!
//! A long-running service over the expansion pipeline. Clients submit
//! newline-delimited JSON requests (see [`protocol`]) over a unix socket,
//! or over stdin/stdout in `--batch` mode; each request compiles, checks
//! and optionally executes one Cee program. What makes the daemon more
//! than a loop around `dsec` is the shared state:
//!
//! * **One [`dse_core::ArtifactStore`] for every request.** Phases are
//!   keyed by content hashes that chain through artifact *content*
//!   (DESIGN.md, "The dsed daemon"), so a re-submitted program is a pure
//!   cache hit, an edited program only re-runs the phases downstream of
//!   the edit, and two concurrent submissions of the same program collapse
//!   onto one computation.
//! * **One [`dse_runtime::TaskPool`] for every request.** Request-level
//!   concurrency is a fixed pool of worker threads, orthogonal to the
//!   per-`Vm` loop pool a `run` request spins up internally.
//! * **Shared telemetry.** Each response carries its per-phase cache
//!   outcomes; `--telemetry` streams one JSONL line per request (through
//!   a size-capped [`rotate::RotatingWriter`], so an always-on daemon's
//!   log stays bounded), and the `stats` command (or the end-of-batch
//!   summary) reports the cumulative [`dse_telemetry::ServerStats`] —
//!   including end-to-end, queue-wait and per-phase latency histograms.
//!   The `metrics` command and `--metrics-addr` serve the same numbers as
//!   a Prometheus-style text exposition.

pub mod protocol;
pub mod rotate;
pub mod server;

pub use protocol::{Cmd, PhaseLine, Request, Response};
pub use rotate::RotatingWriter;
pub use server::{Server, ServerConfig};
