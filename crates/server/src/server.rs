//! The daemon itself: request execution over the shared artifact store,
//! plus the two front ends (`--batch` over stdin/stdout, `--socket` over a
//! unix listener).

use crate::protocol::{Cmd, PhaseLine, Request, Response};
use dse_core::{ArtifactStore, Pipeline, Trace};
use dse_runtime::{TaskPool, Vm, VmConfig};
use dse_telemetry::{Json, LatencyStats, LogHistogram, ServerStats};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request-level worker threads.
    pub workers: usize,
    /// Artifact-store LRU capacity.
    pub capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            capacity: ArtifactStore::DEFAULT_CAPACITY,
        }
    }
}

/// Latency histograms the daemon accumulates, one lock around all three
/// (recording is a few O(1) bucket increments per request, far off the
/// request's own critical path).
#[derive(Default)]
struct Latency {
    e2e: LogHistogram,
    queue: LogHistogram,
    phases: BTreeMap<String, LogHistogram>,
}

/// The shared daemon state: one artifact store, one task pool, cumulative
/// counters, latency histograms, the shutdown flag, and the optional
/// telemetry sink.
pub struct Server {
    store: ArtifactStore,
    pool: TaskPool,
    requests: AtomicU64,
    failures: AtomicU64,
    latency: Mutex<Latency>,
    shutdown: AtomicBool,
    telemetry: Option<Mutex<Box<dyn Write + Send>>>,
}

impl Server {
    /// A daemon with the given knobs and no telemetry sink.
    pub fn new(config: &ServerConfig) -> Server {
        Server {
            store: ArtifactStore::with_capacity(config.capacity),
            pool: TaskPool::new(config.workers),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            latency: Mutex::new(Latency::default()),
            shutdown: AtomicBool::new(false),
            telemetry: None,
        }
    }

    /// Streams one JSONL line per request to `sink`.
    pub fn with_telemetry(mut self, sink: Box<dyn Write + Send>) -> Server {
        self.telemetry = Some(Mutex::new(sink));
        self
    }

    /// The shared artifact store (exposed for tests and benches).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// True once a `shutdown` request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cumulative stats: store counters, request totals, latency
    /// histograms and task-pool counters.
    pub fn stats(&self) -> ServerStats {
        let mut s = self.store.stats();
        s.requests = self.requests.load(Ordering::SeqCst);
        s.failures = self.failures.load(Ordering::SeqCst);
        let lat = self.latency.lock().unwrap();
        s.latency = LatencyStats {
            e2e: lat.e2e.clone(),
            queue: lat.queue.clone(),
            phases: lat
                .phases
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        drop(lat);
        s.taskpool = self.pool.stats();
        s
    }

    /// The Prometheus-style text exposition of [`Server::stats`].
    pub fn prometheus_text(&self) -> String {
        dse_telemetry::prometheus_text(&self.stats())
    }

    /// Executes one request to completion and returns its response. Safe
    /// to call from any number of threads.
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::SeqCst);
        let resp = match req.cmd {
            Cmd::Stats => Response {
                id: req.id.clone(),
                ok: true,
                stats: Some(self.stats()),
                ..Response::default()
            },
            Cmd::Metrics => Response {
                id: req.id.clone(),
                ok: true,
                metrics: Some(self.prometheus_text()),
                ..Response::default()
            },
            Cmd::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response {
                    id: req.id.clone(),
                    ok: true,
                    ..Response::default()
                }
            }
            Cmd::Run | Cmd::Compile | Cmd::Check => self.pipeline_request(req),
        };
        if !resp.ok {
            self.failures.fetch_add(1, Ordering::SeqCst);
        }
        self.record_latency(&resp, started);
        self.emit_telemetry(req, &resp, started);
        resp
    }

    /// Folds one finished request into the latency histograms.
    fn record_latency(&self, resp: &Response, started: Instant) {
        let mut lat = self.latency.lock().unwrap();
        lat.e2e.record(started.elapsed().as_nanos() as u64);
        for p in &resp.phases {
            lat.phases.entry(p.phase.clone()).or_default().record(p.ns);
        }
    }

    /// The compile/check/run path: source → cached pipeline → verifier →
    /// (optionally) the VM.
    fn pipeline_request(&self, req: &Request) -> Response {
        let source = match (&req.source, &req.path) {
            (Some(s), _) => s.clone(),
            (None, Some(p)) => match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => return Response::failure(&req.id, format!("{p}: {e}")),
            },
            (None, None) => return Response::failure(&req.id, "request needs `source` or `path`"),
        };
        let cfg = VmConfig {
            inputs_int: req.inputs.clone(),
            ..Default::default()
        };
        let pipeline = Pipeline::new(&self.store);
        let mut trace = Trace::new();

        let art = match pipeline.analyze(&source, &cfg, &mut trace) {
            Ok(a) => a,
            Err(e) => {
                return Response {
                    phases: PhaseLine::from_trace(&trace),
                    ..Response::failure(&req.id, e.to_string())
                }
            }
        };

        // `run --serial` executes the untransformed program; everything
        // else transforms (and `check` reports pass 1 even when the
        // transform fails).
        let needs_transform = !(req.cmd == Cmd::Run && req.serial);
        let transformed = if needs_transform {
            match pipeline.transform(&art, req.opt, req.threads, req.baseline, &mut trace) {
                Ok(t) => Some(t),
                Err(e) => {
                    if req.cmd == Cmd::Check {
                        let report = dse_verify::check_all(&art.analysis, None);
                        let mut resp = Response::failure(&req.id, format!("transform failed: {e}"));
                        resp.diagnostics = report.diagnostics.iter().map(|d| d.render()).collect();
                        resp.phases = PhaseLine::from_trace(&trace);
                        return resp;
                    }
                    return Response {
                        phases: PhaseLine::from_trace(&trace),
                        ..Response::failure(&req.id, e.to_string())
                    };
                }
            }
        } else {
            None
        };

        let mut resp = Response {
            id: req.id.clone(),
            ok: true,
            ..Response::default()
        };

        if let Some(t) = &transformed {
            let report = dse_verify::check_cached(&self.store, &art.analysis, t, &mut trace);
            if req.cmd == Cmd::Check {
                resp.diagnostics = report.render_text().lines().map(str::to_string).collect();
                if report.should_fail(req.strict) {
                    resp.ok = false;
                    resp.error = Some("verifier findings".into());
                    resp.exit = 1;
                }
                resp.phases = PhaseLine::from_trace(&trace);
                return resp;
            }
            resp.diagnostics = report.diagnostics.iter().map(|d| d.render()).collect();
            if report.should_fail(false) {
                resp.ok = false;
                resp.error = Some(format!(
                    "verification failed with {} error(s)",
                    report.count(dse_verify::diag::Severity::Error)
                ));
                resp.exit = 1;
                resp.phases = PhaseLine::from_trace(&trace);
                return resp;
            }
        }

        if req.cmd == Cmd::Run {
            let (compiled, nthreads) = match &transformed {
                Some(t) => (t.transformed.parallel.clone(), req.threads),
                None => (art.analysis.serial.clone(), 1),
            };
            let run_cfg = VmConfig {
                nthreads,
                inputs_int: req.inputs.clone(),
                backend: req.exec_backend,
                strict: req.strict,
                ..Default::default()
            };
            // The register lowering is one more cached phase: a daemon
            // serving the same program repeatedly translates it once, and
            // a lowering bug surfaces as a failed response — never a
            // daemon panic. Every translation is gated through the cached
            // `regverify` phase (DSE010–DSE015) before execution.
            let run = match req.exec_backend {
                dse_runtime::BackendKind::Stack => Vm::new(compiled, run_cfg),
                dse_runtime::BackendKind::Reg => pipeline
                    .reglower(&compiled, &mut trace)
                    .map_err(|e| dse_runtime::VmError {
                        pc: 0,
                        msg: e.to_string(),
                    })
                    .and_then(|r| {
                        let report = dse_verify::check_backend_cached(
                            &self.store,
                            &compiled,
                            &r,
                            &mut trace,
                        );
                        let errors = report.count(dse_verify::diag::Severity::Error);
                        if errors > 0 {
                            return Err(dse_runtime::VmError {
                                pc: 0,
                                msg: format!(
                                    "register translation failed verification with \
                                     {errors} error(s) (DSE010-DSE015)"
                                ),
                            });
                        }
                        Vm::with_reg(compiled, std::sync::Arc::clone(&r.reg), run_cfg)
                    }),
            }
            .and_then(|mut vm| vm.run().map(|report| (vm, report)));
            match run {
                Ok((vm, report)) => {
                    resp.console = vm.console().to_string();
                    resp.out_long = vm.outputs_int();
                    resp.out_float = vm.outputs_float();
                    if let Some(dse_runtime::Value::I(code)) = report.return_value {
                        resp.exit = code & 0xff;
                    }
                }
                Err(e) => {
                    resp.ok = false;
                    resp.error = Some(e.to_string());
                    resp.exit = 1;
                }
            }
        }

        resp.phases = PhaseLine::from_trace(&trace);
        resp
    }

    /// One JSONL line per request: id, command, outcome, wall time, and
    /// the per-phase cache outcomes.
    fn emit_telemetry(&self, req: &Request, resp: &Response, started: Instant) {
        let Some(sink) = &self.telemetry else { return };
        let line = Json::obj(vec![
            ("id", Json::Str(resp.id.clone())),
            ("cmd", Json::Str(req.cmd.as_str().into())),
            ("ok", Json::Bool(resp.ok)),
            ("wall_ns", Json::Int(started.elapsed().as_nanos() as i64)),
            ("cache_hits", Json::Int(resp.cache_hits() as i64)),
            ("cache_misses", Json::Int(resp.cache_misses() as i64)),
            (
                "phases",
                Json::Arr(
                    resp.phases
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("phase", Json::Str(p.phase.clone())),
                                ("cache", Json::Str(p.cache.clone())),
                                ("ns", Json::Int(p.ns as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let mut sink = sink.lock().unwrap();
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }

    /// Submits a parsed request to the task pool; the response is sent on
    /// `out`. A panicking request produces an error response instead of a
    /// hung client.
    fn submit(self: &Arc<Self>, req: Request, out: mpsc::Sender<Response>) {
        let server = Arc::clone(self);
        let queued_at = Instant::now();
        self.pool.submit(move || {
            server
                .latency
                .lock()
                .unwrap()
                .queue
                .record(queued_at.elapsed().as_nanos() as u64);
            let id = req.id.clone();
            let resp =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| server.handle(&req)))
                    .unwrap_or_else(|_| Response::failure(id, "internal error: request panicked"));
            let _ = out.send(resp);
        });
    }

    /// `--batch`: newline-delimited requests on `input`, responses on
    /// `output` as they complete (order is by completion, not submission —
    /// clients correlate by id). Returns the cumulative stats.
    pub fn serve_batch(
        self: &Arc<Self>,
        input: impl BufRead,
        output: impl Write + Send + 'static,
    ) -> std::io::Result<ServerStats> {
        let (tx, rx) = mpsc::channel::<Response>();
        let writer = std::thread::spawn(move || -> std::io::Result<()> {
            let mut output = output;
            for resp in rx {
                writeln!(output, "{}", resp.to_json())?;
                output.flush()?;
            }
            Ok(())
        });
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match Json::parse(line.trim())
                .map_err(|e| e.to_string())
                .and_then(|j| Request::from_json(&j))
            {
                Ok(req) => self.submit(req, tx.clone()),
                Err(e) => {
                    let _ = tx.send(Response::failure("", format!("bad request: {e}")));
                }
            }
            if self.shutting_down() {
                break;
            }
        }
        self.pool.wait_idle();
        drop(tx);
        writer.join().expect("batch writer thread")?;
        Ok(self.stats())
    }

    /// `--socket`: accepts connections on a unix listener; each connection
    /// carries any number of newline-delimited requests, answered in order
    /// on the same connection. Returns the cumulative stats after a
    /// `shutdown` request.
    pub fn serve_socket(self: &Arc<Self>, path: &str) -> std::io::Result<ServerStats> {
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous daemon would fail the bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let mut handlers = Vec::new();
        for conn in listener.incoming() {
            if self.shutting_down() {
                break;
            }
            let Ok(conn) = conn else { continue };
            let server = Arc::clone(self);
            handlers.push(std::thread::spawn(move || server.serve_connection(conn)));
            if self.shutting_down() {
                break;
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        self.pool.wait_idle();
        let _ = std::fs::remove_file(path);
        Ok(self.stats())
    }

    fn serve_connection(self: Arc<Self>, conn: std::os::unix::net::UnixStream) {
        let Ok(reader) = conn.try_clone() else { return };
        let mut writer = conn;
        let reader = std::io::BufReader::new(reader);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let resp = match Json::parse(line.trim())
                .map_err(|e| e.to_string())
                .and_then(|j| Request::from_json(&j))
            {
                Ok(req) => {
                    let (tx, rx) = mpsc::channel();
                    self.submit(req, tx);
                    rx.recv()
                        .unwrap_or_else(|_| Response::failure("", "internal error: no response"))
                }
                Err(e) => Response::failure("", format!("bad request: {e}")),
            };
            let done = self.shutting_down();
            if writeln!(writer, "{}", resp.to_json()).is_err() {
                break;
            }
            let _ = writer.flush();
            if done {
                // Unblock the accept loop so the daemon can exit.
                if let Some(addr) = writer
                    .local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(std::path::Path::to_path_buf))
                {
                    let _ = UnixStreamConnect::connect(&addr);
                }
                break;
            }
        }
    }
}

/// Tiny indirection so `serve_connection` can poke the accept loop without
/// importing `UnixStream` at every call site.
struct UnixStreamConnect;

impl UnixStreamConnect {
    fn connect(path: &std::path::Path) -> std::io::Result<()> {
        std::os::unix::net::UnixStream::connect(path).map(|_| ())
    }
}
