//! Telemetry for the expansion pipeline.
//!
//! Three pieces, all dependency-free (the JSON layer is hand-rolled so the
//! workspace builds offline):
//!
//! * [`phase`] — a nestable wall-clock timer. The compiler records one
//!   [`phase::PhaseSpan`] per pipeline stage (parse, lower, profile,
//!   classify, plan, xform), each carrying size stats such as AST nodes or
//!   instruction counts.
//! * [`metrics`] — [`metrics::RunMetrics`], a serializable snapshot of one
//!   `dsec` invocation: phase timeline, the VM's aggregate and per-thread
//!   Figure-12 counters, peak heap, per-loop profile stats, and the
//!   expansion tallies.
//! * [`trace`] — [`trace::TraceObserver`], a [`dse_runtime::Observer`]
//!   that streams every sited access, candidate-loop event and heap event
//!   as one JSON object per line (JSONL).
//!
//! The serialization format is documented in `DESIGN.md` ("Observability")
//! and is stable enough to diff across runs: object keys are emitted in a
//! fixed order and all times are integer nanoseconds.

pub mod hash;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod trace;

pub use hash::{ContentHash, ContentHasher};
pub use json::Json;
pub use metrics::{
    ExpansionStats, LintStats, LoopStat, PhaseCacheStat, RunMetrics, ServerStats, VmStats,
};
pub use phase::{PhaseSpan, PhaseTimer};
pub use trace::TraceObserver;
