//! Telemetry for the expansion pipeline.
//!
//! Three pieces, all dependency-free (the JSON layer is hand-rolled so the
//! workspace builds offline):
//!
//! * [`phase`] — a nestable wall-clock timer. The compiler records one
//!   [`phase::PhaseSpan`] per pipeline stage (parse, lower, profile,
//!   classify, plan, xform), each carrying size stats such as AST nodes or
//!   instruction counts.
//! * [`metrics`] — [`metrics::RunMetrics`], a serializable snapshot of one
//!   `dsec` invocation: phase timeline, the VM's aggregate and per-thread
//!   Figure-12 counters, peak heap, per-loop profile stats, and the
//!   expansion tallies.
//! * [`trace`] — [`trace::TraceObserver`], a [`dse_runtime::Observer`]
//!   that streams every sited access, candidate-loop event and heap event
//!   as one JSON object per line (JSONL).
//! * [`hist`] — [`hist::LogHistogram`], HDR-style log-bucketed latency
//!   histograms (exact below 16, 16 sub-buckets per octave above) used by
//!   the daemon's per-request/per-phase/queue-wait latency tracking.
//! * [`chrome`] — exporters for the runtime trace ring
//!   ([`dse_runtime::TraceEvent`]): Chrome trace-event JSON (one pid per
//!   worker, Perfetto-loadable) and folded-stack flamegraph text.
//!
//! The serialization format is documented in `DESIGN.md` ("Observability")
//! and is stable enough to diff across runs: object keys are emitted in a
//! fixed order and all times are integer nanoseconds.

pub mod chrome;
pub mod hash;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod trace;

pub use chrome::{chrome_trace, flamegraph_folded, PipelineSpan};
pub use hash::{ContentHash, ContentHasher};
pub use hist::LogHistogram;
pub use json::Json;
pub use metrics::{
    prometheus_text, ExpansionStats, LatencyStats, LintStats, LoopStat, PhaseCacheStat, RunMetrics,
    ServerStats, VmStats,
};
pub use phase::{PhaseSpan, PhaseTimer};
pub use trace::TraceObserver;
