//! A minimal JSON value type with an emitter and a recursive-descent
//! parser. Hand-rolled so the workspace has no external dependencies;
//! covers exactly the subset the telemetry formats need (which is full
//! JSON minus exotic number forms on the emit side).
//!
//! Objects preserve insertion order so emitted documents are byte-stable
//! across runs — important for diffing metrics files.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer number (emitted without a decimal point). Counter values
    /// round-trip exactly through this variant.
    Int(i64),
    /// Non-integer number.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, accepting integral floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) emission.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Guarantee a decimal point so the variant round-trips.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like other encoders.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Malformed-JSON error with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scanned run is valid UTF-8 because the input is &str and
            // we only stop on ASCII bytes.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by our
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("bad \\u escape"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("bad number '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                // Fall back for magnitudes beyond i64 (not produced by us).
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.err(format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"quoted\"\nline".into())),
            ("count", Json::Int(-42)),
            ("ratio", Json::Float(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::Int(7))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_their_variant() {
        let v = Json::Float(3.0);
        let text = v.to_string();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::Int(1), Json::Float(2.5), Json::Str("xA".into())]
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
