//! [`RunMetrics`]: a serializable snapshot of one pipeline invocation.
//!
//! Built by `dsec` (and the figures harness) from the phase timeline, the
//! dependence profile, the expansion report and — when the program is
//! executed — the VM's [`RunReport`]. Emitted as a single JSON document
//! via [`RunMetrics::to_json`]; [`RunMetrics::from_json`] reconstructs it
//! for tooling and tests.

use crate::hist::LogHistogram;
use crate::json::Json;
use crate::phase::PhaseSpan;
use dse_runtime::vm::{Counters, RunReport};
use dse_runtime::{HeapContention, PoolStats, TaskPoolStats};

/// Profile-time stats for one candidate loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopStat {
    /// Candidate loop id (stable across the pipeline).
    pub loop_id: u32,
    /// Human-readable label from the frontend.
    pub label: String,
    /// Iterations observed during the profiling run.
    pub iterations: u64,
    /// Sited memory accesses observed inside the loop.
    pub accesses: u64,
    /// VM instructions attributed to the loop.
    pub instructions: u64,
}

/// Expansion-transform tallies (mirrors `dse-core`'s report; kept as plain
/// counters here so telemetry does not depend on the compiler crate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Expanded heap allocation sites.
    pub expanded_allocs: u64,
    /// Expanded globals.
    pub expanded_globals: u64,
    /// Expanded aggregate locals.
    pub expanded_locals: u64,
    /// Expanded scalar locals (classic scalar expansion).
    pub expanded_scalar_locals: u64,
    /// Promoted (fat) pointer types.
    pub fat_pointer_types: u64,
    /// Promoted span-carrying integers.
    pub fat_int_vars: u64,
    /// Private access sites redirected to `v[tid]` addressing.
    pub private_accesses_redirected: u64,
    /// Span stores emitted.
    pub span_stores_emitted: u64,
    /// Span stores elided by the `p = p ± c` rule.
    pub span_stores_elided: u64,
}

impl ExpansionStats {
    /// Distinct data structures privatized (allocs + globals + aggregate
    /// locals).
    pub fn privatized_structures(&self) -> u64 {
        self.expanded_allocs + self.expanded_globals + self.expanded_locals
    }
}

/// Verifier lint counts (the `dsec check` pass that runs before every
/// transform). Mirrors `dse-verify`'s per-severity report counts; kept as
/// plain counters so telemetry does not depend on the verifier crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Findings at `error` severity.
    pub errors: u64,
    /// Findings at `warning` severity.
    pub warnings: u64,
    /// Findings at `info` severity.
    pub infos: u64,
}

/// One pipeline phase's artifact-cache counters (daemon or in-process).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseCacheStat {
    /// Phase name (`parse`, `lower`, `profile`, `classify`, `plan`,
    /// `xform`, `verify`).
    pub phase: String,
    /// Requests served from a ready cached artifact.
    pub hits: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
    /// Requests that waited on a concurrent identical computation instead
    /// of duplicating it.
    pub dedups: u64,
    /// Artifacts evicted by the LRU bound.
    pub evictions: u64,
}

/// Daemon latency distributions, all in nanoseconds: end-to-end per
/// request, queue wait (submit to worker pickup), and per-pipeline-phase
/// wall time. Empty histograms for documents written before the daemon
/// recorded latency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// End-to-end request handling time.
    pub e2e: LogHistogram,
    /// Time a request spent queued behind the task pool.
    pub queue: LogHistogram,
    /// Wall time per pipeline phase, keyed by phase name (sorted).
    pub phases: Vec<(String, LogHistogram)>,
}

/// Compile-service counters: requests served and per-phase artifact-cache
/// behavior. Produced by `dsed` (and by standalone `dsec`, whose
/// in-process pipeline shares the same cache machinery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests served (all commands).
    pub requests: u64,
    /// Requests that failed (compile, verify or runtime errors).
    pub failures: u64,
    /// Ready artifacts currently resident in the store.
    pub cache_entries: u64,
    /// LRU capacity bound (ready-artifact count).
    pub cache_capacity: u64,
    /// Per-phase hit/miss/dedup/eviction counters.
    pub phases: Vec<PhaseCacheStat>,
    /// Latency histograms; empty for pre-histogram documents.
    pub latency: LatencyStats,
    /// Request-level task-pool counters; zero for pre-daemon documents.
    pub taskpool: TaskPoolStats,
}

impl ServerStats {
    /// Total cache hits across phases (dedup waits count as hits: the
    /// requester got the artifact without computing it).
    pub fn total_hits(&self) -> u64 {
        self.phases.iter().map(|p| p.hits + p.dedups).sum()
    }

    /// Total cache misses across phases.
    pub fn total_misses(&self) -> u64 {
        self.phases.iter().map(|p| p.misses).sum()
    }
}

/// VM execution stats: Figure-12 counters in aggregate and per thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Counters summed over all threads.
    pub totals: Counters,
    /// Counters by worker index (`per_thread[tid]`; index 0 = master).
    pub per_thread: Vec<Counters>,
    /// High-water mark of live heap bytes.
    pub peak_heap_bytes: u64,
    /// Allocator contention counters (magazine hits/misses, backend lock
    /// acquisitions, scavenges).
    pub heap_contention: HeapContention,
    /// Executor pool counters (spawned workers, dispatches, steals, parks,
    /// wakeups); all zero for serial or spawn-per-loop runs.
    pub pool: PoolStats,
}

impl VmStats {
    /// Snapshot of a finished run.
    pub fn from_report(report: &RunReport) -> VmStats {
        VmStats {
            totals: report.counters,
            per_thread: report.per_thread.clone(),
            peak_heap_bytes: report.peak_heap_bytes,
            heap_contention: report.heap_contention,
            pool: report.pool,
        }
    }
}

/// The full telemetry snapshot for one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Source program path or name.
    pub program: String,
    /// Thread count the program was transformed/run for.
    pub threads: u32,
    /// Optimization level (`"none"` or `"full"`).
    pub opt: String,
    /// Phase timeline: parse, lower, profile, classify, plan, xform.
    pub phases: Vec<PhaseSpan>,
    /// Per-candidate-loop profile stats.
    pub loops: Vec<LoopStat>,
    /// Expansion tallies; `None` when the transform was not run.
    pub expansion: Option<ExpansionStats>,
    /// Verifier lint counts; `None` when the check pass was not run.
    pub lints: Option<LintStats>,
    /// Execution stats; `None` without `--run`.
    pub vm: Option<VmStats>,
    /// Compile-service cache stats; `None` for pre-daemon documents.
    pub server: Option<ServerStats>,
}

/// Serializes daemon latency histograms.
pub fn latency_to_json(l: &LatencyStats) -> Json {
    Json::obj(vec![
        ("e2e", l.e2e.to_json()),
        ("queue", l.queue.to_json()),
        (
            "phases",
            Json::Arr(
                l.phases
                    .iter()
                    .map(|(name, h)| Json::Arr(vec![Json::Str(name.clone()), h.to_json()]))
                    .collect(),
            ),
        ),
    ])
}

/// Parses [`latency_to_json`] output.
///
/// # Errors
///
/// Returns a message when a field is missing or malformed.
pub fn latency_from_json(v: &Json) -> Result<LatencyStats, String> {
    let hist = |name: &str| -> Result<LogHistogram, String> {
        LogHistogram::from_json(
            v.get(name)
                .ok_or_else(|| format!("latency missing '{name}'"))?,
        )
        .ok_or_else(|| format!("latency '{name}' malformed"))
    };
    let phases = v
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("latency missing array 'phases'")?
        .iter()
        .map(|p| {
            let pair = p.as_arr().ok_or("latency phase entry not a pair")?;
            if pair.len() != 2 {
                return Err("latency phase entry not a pair".to_string());
            }
            let name = pair[0].as_str().ok_or("latency phase name not a string")?;
            let h = LogHistogram::from_json(&pair[1]).ok_or("latency phase histogram malformed")?;
            Ok((name.to_string(), h))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LatencyStats {
        e2e: hist("e2e")?,
        queue: hist("queue")?,
        phases,
    })
}

/// Serializes request-level task-pool counters.
pub fn taskpool_to_json(t: &TaskPoolStats) -> Json {
    Json::obj(vec![
        ("workers", Json::Int(t.workers as i64)),
        ("submitted", Json::Int(t.submitted as i64)),
        ("completed", Json::Int(t.completed as i64)),
        ("queued", Json::Int(t.queued as i64)),
        ("queued_peak", Json::Int(t.queued_peak as i64)),
    ])
}

/// Parses [`taskpool_to_json`] output.
///
/// # Errors
///
/// Returns the name of the first missing or mistyped field.
pub fn taskpool_from_json(v: &Json) -> Result<TaskPoolStats, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| format!("taskpool stats missing integer field '{name}'"))
    };
    Ok(TaskPoolStats {
        workers: field("workers")?,
        submitted: field("submitted")?,
        completed: field("completed")?,
        queued: field("queued")?,
        queued_peak: field("queued_peak")?,
    })
}

/// Serializes compile-service cache counters.
pub fn server_to_json(s: &ServerStats) -> Json {
    Json::obj(vec![
        ("requests", Json::Int(s.requests as i64)),
        ("failures", Json::Int(s.failures as i64)),
        ("cache_entries", Json::Int(s.cache_entries as i64)),
        ("cache_capacity", Json::Int(s.cache_capacity as i64)),
        (
            "phases",
            Json::Arr(
                s.phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("phase", Json::Str(p.phase.clone())),
                            ("hits", Json::Int(p.hits as i64)),
                            ("misses", Json::Int(p.misses as i64)),
                            ("dedups", Json::Int(p.dedups as i64)),
                            ("evictions", Json::Int(p.evictions as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("latency", latency_to_json(&s.latency)),
        ("taskpool", taskpool_to_json(&s.taskpool)),
    ])
}

/// Parses [`server_to_json`] output.
///
/// # Errors
///
/// Returns the name of the first missing or mistyped field.
pub fn server_from_json(v: &Json) -> Result<ServerStats, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| format!("server stats missing integer field '{name}'"))
    };
    let phases = v
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("server stats missing array 'phases'")?
        .iter()
        .map(|p| {
            let int = |name: &str| -> Result<u64, String> {
                p.get(name)
                    .and_then(Json::as_i64)
                    .map(|n| n.max(0) as u64)
                    .ok_or_else(|| format!("phase cache stat missing integer '{name}'"))
            };
            Ok(PhaseCacheStat {
                phase: p
                    .get("phase")
                    .and_then(Json::as_str)
                    .ok_or("phase cache stat missing 'phase'")?
                    .to_string(),
                hits: int("hits")?,
                misses: int("misses")?,
                dedups: int("dedups")?,
                evictions: int("evictions")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    // Both blocks postdate the daemon; older documents parse with empty
    // histograms and zeroed pool counters.
    let latency = match v.get("latency") {
        None | Some(Json::Null) => LatencyStats::default(),
        Some(l) => latency_from_json(l)?,
    };
    let taskpool = match v.get("taskpool") {
        None | Some(Json::Null) => TaskPoolStats::default(),
        Some(t) => taskpool_from_json(t)?,
    };
    Ok(ServerStats {
        requests: field("requests")?,
        failures: field("failures")?,
        cache_entries: field("cache_entries")?,
        cache_capacity: field("cache_capacity")?,
        phases,
        latency,
        taskpool,
    })
}

/// Renders [`ServerStats`] as a Prometheus-style text exposition:
/// counters, gauges, and latency summaries (seconds) with p50/p90/p99
/// quantiles, served by `dsed --metrics-addr` and the `metrics` request.
pub fn prometheus_text(s: &ServerStats) -> String {
    use std::fmt::Write as _;
    fn scalar(out: &mut String, kind: &str, name: &str, help: &str, v: u64) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {v}");
    }
    fn summary(out: &mut String, name: &str, help: &str, labels: &str, h: &LogHistogram) {
        let secs = |ns: u64| ns as f64 / 1e9;
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} summary");
        let sep = if labels.is_empty() { "" } else { "," };
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "{name}{{{labels}{sep}quantile=\"{label}\"}} {}",
                secs(h.percentile(q))
            );
        }
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", secs(h.sum()));
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
    let mut out = String::new();
    for (name, help, v) in [
        ("dsed_requests_total", "Requests served.", s.requests),
        ("dsed_failures_total", "Requests that failed.", s.failures),
        (
            "dsed_taskpool_submitted_total",
            "Tasks accepted by the request pool.",
            s.taskpool.submitted,
        ),
        (
            "dsed_taskpool_completed_total",
            "Tasks the request pool finished.",
            s.taskpool.completed,
        ),
    ] {
        scalar(&mut out, "counter", name, help, v);
    }
    for (name, help, v) in [
        (
            "dsed_cache_entries",
            "Ready artifacts resident in the store.",
            s.cache_entries,
        ),
        (
            "dsed_cache_capacity",
            "Artifact-store LRU capacity.",
            s.cache_capacity,
        ),
        (
            "dsed_taskpool_workers",
            "Request-pool worker threads.",
            s.taskpool.workers,
        ),
        (
            "dsed_taskpool_queued",
            "Tasks waiting in the request queue.",
            s.taskpool.queued,
        ),
        (
            "dsed_taskpool_queued_peak",
            "High-water mark of the request queue depth.",
            s.taskpool.queued_peak,
        ),
    ] {
        scalar(&mut out, "gauge", name, help, v);
    }
    let _ = writeln!(
        out,
        "# HELP dsed_phase_cache_total Artifact-cache outcomes per phase."
    );
    let _ = writeln!(out, "# TYPE dsed_phase_cache_total counter");
    for p in &s.phases {
        for (outcome, v) in [
            ("hit", p.hits),
            ("miss", p.misses),
            ("dedup", p.dedups),
            ("eviction", p.evictions),
        ] {
            let _ = writeln!(
                out,
                "dsed_phase_cache_total{{phase=\"{}\",outcome=\"{outcome}\"}} {v}",
                p.phase
            );
        }
    }
    summary(
        &mut out,
        "dsed_request_latency_seconds",
        "End-to-end request handling time.",
        "",
        &s.latency.e2e,
    );
    summary(
        &mut out,
        "dsed_queue_wait_seconds",
        "Time requests spent queued behind the task pool.",
        "",
        &s.latency.queue,
    );
    for (phase, h) in &s.latency.phases {
        summary(
            &mut out,
            "dsed_phase_latency_seconds",
            "Wall time per pipeline phase.",
            &format!("phase=\"{phase}\""),
            h,
        );
    }
    out
}

/// Serializes Figure-12 counters as a flat object.
pub fn counters_to_json(c: &Counters) -> Json {
    Json::obj(vec![
        ("work", Json::Int(c.work as i64)),
        ("wait_spins", Json::Int(c.wait_spins as i64)),
        ("wait_yields", Json::Int(c.wait_yields as i64)),
        ("sync_ops", Json::Int(c.sync_ops as i64)),
        ("localize_calls", Json::Int(c.localize_calls as i64)),
        (
            "localize_copied_bytes",
            Json::Int(c.localize_copied_bytes as i64),
        ),
        ("private_direct", Json::Int(c.private_direct as i64)),
    ])
}

/// Serializes allocator contention counters as a flat object.
pub fn contention_to_json(c: &HeapContention) -> Json {
    Json::obj(vec![
        ("cache_hits", Json::Int(c.cache_hits as i64)),
        ("cache_misses", Json::Int(c.cache_misses as i64)),
        ("backend_locks", Json::Int(c.backend_locks as i64)),
        ("scavenges", Json::Int(c.scavenges as i64)),
    ])
}

/// Serializes executor pool counters as a flat object.
pub fn pool_to_json(p: &PoolStats) -> Json {
    Json::obj(vec![
        ("workers", Json::Int(p.workers as i64)),
        ("dispatches", Json::Int(p.dispatches as i64)),
        ("steals", Json::Int(p.steals as i64)),
        ("parks", Json::Int(p.parks as i64)),
        ("wakeups", Json::Int(p.wakeups as i64)),
    ])
}

/// Parses [`pool_to_json`] output.
///
/// # Errors
///
/// Returns the name of the first missing or mistyped field.
pub fn pool_from_json(v: &Json) -> Result<PoolStats, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| format!("pool stats missing integer field '{name}'"))
    };
    Ok(PoolStats {
        workers: field("workers")?,
        dispatches: field("dispatches")?,
        steals: field("steals")?,
        parks: field("parks")?,
        wakeups: field("wakeups")?,
    })
}

/// Parses [`contention_to_json`] output.
///
/// # Errors
///
/// Returns the name of the first missing or mistyped field.
pub fn contention_from_json(v: &Json) -> Result<HeapContention, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| format!("heap contention missing integer field '{name}'"))
    };
    Ok(HeapContention {
        cache_hits: field("cache_hits")?,
        cache_misses: field("cache_misses")?,
        backend_locks: field("backend_locks")?,
        scavenges: field("scavenges")?,
    })
}

/// Parses [`counters_to_json`] output.
///
/// # Errors
///
/// Returns the name of the first missing or mistyped field.
pub fn counters_from_json(v: &Json) -> Result<Counters, String> {
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .ok_or_else(|| format!("counters missing integer field '{name}'"))
    };
    Ok(Counters {
        work: field("work")?,
        wait_spins: field("wait_spins")?,
        wait_yields: field("wait_yields")?,
        sync_ops: field("sync_ops")?,
        localize_calls: field("localize_calls")?,
        localize_copied_bytes: field("localize_copied_bytes")?,
        private_direct: field("private_direct")?,
    })
}

impl RunMetrics {
    /// Serializes the snapshot as a single JSON document.
    pub fn to_json(&self) -> Json {
        let loops = self
            .loops
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("loop_id", Json::Int(l.loop_id as i64)),
                    ("label", Json::Str(l.label.clone())),
                    ("iterations", Json::Int(l.iterations as i64)),
                    ("accesses", Json::Int(l.accesses as i64)),
                    ("instructions", Json::Int(l.instructions as i64)),
                ])
            })
            .collect();
        let expansion = match &self.expansion {
            None => Json::Null,
            Some(e) => Json::obj(vec![
                ("expanded_allocs", Json::Int(e.expanded_allocs as i64)),
                ("expanded_globals", Json::Int(e.expanded_globals as i64)),
                ("expanded_locals", Json::Int(e.expanded_locals as i64)),
                (
                    "expanded_scalar_locals",
                    Json::Int(e.expanded_scalar_locals as i64),
                ),
                ("fat_pointer_types", Json::Int(e.fat_pointer_types as i64)),
                ("fat_int_vars", Json::Int(e.fat_int_vars as i64)),
                (
                    "private_accesses_redirected",
                    Json::Int(e.private_accesses_redirected as i64),
                ),
                (
                    "span_stores_emitted",
                    Json::Int(e.span_stores_emitted as i64),
                ),
                ("span_stores_elided", Json::Int(e.span_stores_elided as i64)),
                (
                    "privatized_structures",
                    Json::Int(e.privatized_structures() as i64),
                ),
            ]),
        };
        let lints = match &self.lints {
            None => Json::Null,
            Some(l) => Json::obj(vec![
                ("errors", Json::Int(l.errors as i64)),
                ("warnings", Json::Int(l.warnings as i64)),
                ("infos", Json::Int(l.infos as i64)),
            ]),
        };
        let vm = match &self.vm {
            None => Json::Null,
            Some(s) => Json::obj(vec![
                ("totals", counters_to_json(&s.totals)),
                (
                    "per_thread",
                    Json::Arr(s.per_thread.iter().map(counters_to_json).collect()),
                ),
                ("peak_heap_bytes", Json::Int(s.peak_heap_bytes as i64)),
                ("heap_contention", contention_to_json(&s.heap_contention)),
                ("pool", pool_to_json(&s.pool)),
            ]),
        };
        Json::obj(vec![
            ("program", Json::Str(self.program.clone())),
            ("threads", Json::Int(self.threads as i64)),
            ("opt", Json::Str(self.opt.clone())),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseSpan::to_json).collect()),
            ),
            ("loops", Json::Arr(loops)),
            ("expansion", expansion),
            ("lints", lints),
            ("vm", vm),
            (
                "server",
                match &self.server {
                    None => Json::Null,
                    Some(s) => server_to_json(s),
                },
            ),
        ])
    }

    /// Reconstructs a snapshot from [`RunMetrics::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<RunMetrics, String> {
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("metrics missing string field '{name}'"))
        };
        let phases = v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("metrics missing array 'phases'")?
            .iter()
            .map(PhaseSpan::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let loops = v
            .get("loops")
            .and_then(Json::as_arr)
            .ok_or("metrics missing array 'loops'")?
            .iter()
            .map(|l| {
                let int = |name: &str| -> Result<u64, String> {
                    l.get(name)
                        .and_then(Json::as_i64)
                        .map(|n| n.max(0) as u64)
                        .ok_or_else(|| format!("loop stat missing integer '{name}'"))
                };
                Ok(LoopStat {
                    loop_id: int("loop_id")? as u32,
                    label: l
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or("loop stat missing 'label'")?
                        .to_string(),
                    iterations: int("iterations")?,
                    accesses: int("accesses")?,
                    instructions: int("instructions")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let expansion = match v.get("expansion") {
            None | Some(Json::Null) => None,
            Some(e) => {
                let int = |name: &str| -> Result<u64, String> {
                    e.get(name)
                        .and_then(Json::as_i64)
                        .map(|n| n.max(0) as u64)
                        .ok_or_else(|| format!("expansion missing integer '{name}'"))
                };
                Some(ExpansionStats {
                    expanded_allocs: int("expanded_allocs")?,
                    expanded_globals: int("expanded_globals")?,
                    expanded_locals: int("expanded_locals")?,
                    expanded_scalar_locals: int("expanded_scalar_locals")?,
                    fat_pointer_types: int("fat_pointer_types")?,
                    fat_int_vars: int("fat_int_vars")?,
                    private_accesses_redirected: int("private_accesses_redirected")?,
                    span_stores_emitted: int("span_stores_emitted")?,
                    span_stores_elided: int("span_stores_elided")?,
                })
            }
        };
        let lints = match v.get("lints") {
            None | Some(Json::Null) => None,
            Some(l) => {
                let int = |name: &str| -> Result<u64, String> {
                    l.get(name)
                        .and_then(Json::as_i64)
                        .map(|n| n.max(0) as u64)
                        .ok_or_else(|| format!("lints missing integer '{name}'"))
                };
                Some(LintStats {
                    errors: int("errors")?,
                    warnings: int("warnings")?,
                    infos: int("infos")?,
                })
            }
        };
        let vm = match v.get("vm") {
            None | Some(Json::Null) => None,
            Some(s) => Some(VmStats {
                totals: counters_from_json(s.get("totals").ok_or("vm stats missing 'totals'")?)?,
                per_thread: s
                    .get("per_thread")
                    .and_then(Json::as_arr)
                    .ok_or("vm stats missing array 'per_thread'")?
                    .iter()
                    .map(counters_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
                peak_heap_bytes: s
                    .get("peak_heap_bytes")
                    .and_then(Json::as_i64)
                    .ok_or("vm stats missing 'peak_heap_bytes'")?
                    .max(0) as u64,
                heap_contention: contention_from_json(
                    s.get("heap_contention")
                        .ok_or("vm stats missing 'heap_contention'")?,
                )?,
                // Absent in pre-pool documents: default to all-zero.
                pool: match s.get("pool") {
                    None | Some(Json::Null) => PoolStats::default(),
                    Some(p) => pool_from_json(p)?,
                },
            }),
        };
        // Absent in pre-daemon documents: default to None.
        let server = match v.get("server") {
            None | Some(Json::Null) => None,
            Some(s) => Some(server_from_json(s)?),
        };
        Ok(RunMetrics {
            program: str_field("program")?,
            threads: v
                .get("threads")
                .and_then(Json::as_i64)
                .ok_or("metrics missing integer 'threads'")?
                .max(0) as u32,
            opt: str_field("opt")?,
            phases,
            loops,
            expansion,
            lints,
            vm,
            server,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> RunMetrics {
        let counters = |base: u64| Counters {
            work: base,
            wait_spins: base + 1,
            wait_yields: base + 6,
            sync_ops: base + 2,
            localize_calls: base + 3,
            localize_copied_bytes: base + 4,
            private_direct: base + 5,
        };
        RunMetrics {
            program: "examples/scratch.cee".into(),
            threads: 4,
            opt: "full".into(),
            phases: vec![PhaseSpan {
                name: "parse".into(),
                duration: Duration::from_nanos(98_765),
                stats: vec![("ast_nodes".into(), 42)],
                children: vec![],
            }],
            loops: vec![LoopStat {
                loop_id: 0,
                label: "main#0".into(),
                iterations: 100,
                accesses: 5_000,
                instructions: 60_000,
            }],
            expansion: Some(ExpansionStats {
                expanded_allocs: 1,
                expanded_globals: 2,
                expanded_locals: 3,
                expanded_scalar_locals: 4,
                fat_pointer_types: 5,
                fat_int_vars: 6,
                private_accesses_redirected: 7,
                span_stores_emitted: 8,
                span_stores_elided: 9,
            }),
            lints: Some(LintStats {
                errors: 0,
                warnings: 2,
                infos: 1,
            }),
            vm: Some(VmStats {
                totals: counters(1000),
                per_thread: vec![counters(400), counters(600)],
                peak_heap_bytes: 4096,
                heap_contention: HeapContention {
                    cache_hits: 120,
                    cache_misses: 8,
                    backend_locks: 9,
                    scavenges: 1,
                },
                pool: PoolStats {
                    workers: 3,
                    dispatches: 2,
                    steals: 5,
                    parks: 7,
                    wakeups: 6,
                },
            }),
            server: Some(ServerStats {
                requests: 12,
                failures: 1,
                cache_entries: 9,
                cache_capacity: 256,
                phases: vec![
                    PhaseCacheStat {
                        phase: "parse".into(),
                        hits: 10,
                        misses: 2,
                        dedups: 1,
                        evictions: 0,
                    },
                    PhaseCacheStat {
                        phase: "verify".into(),
                        hits: 11,
                        misses: 1,
                        dedups: 0,
                        evictions: 3,
                    },
                ],
                latency: {
                    let mut l = LatencyStats::default();
                    for v in [1_000, 2_000, 1_000_000] {
                        l.e2e.record(v);
                    }
                    l.queue.record(500);
                    let mut parse = LogHistogram::new();
                    parse.record(10_000);
                    l.phases = vec![("parse".into(), parse)];
                    l
                },
                taskpool: TaskPoolStats {
                    workers: 4,
                    submitted: 12,
                    completed: 12,
                    queued: 0,
                    queued_peak: 3,
                },
            }),
        }
    }

    #[test]
    fn metrics_json_round_trips() {
        let m = sample();
        let text = m.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(RunMetrics::from_json(&parsed).unwrap(), m);
    }

    #[test]
    fn metrics_without_run_round_trips() {
        let mut m = sample();
        m.vm = None;
        m.expansion = None;
        m.lints = None;
        m.server = None;
        let text = m.to_json().to_string();
        assert_eq!(
            RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap(),
            m
        );
    }

    #[test]
    fn counters_round_trip() {
        let c = Counters {
            work: 9,
            wait_spins: 8,
            wait_yields: 3,
            sync_ops: 7,
            localize_calls: 6,
            localize_copied_bytes: 5,
            private_direct: 4,
        };
        let v = counters_to_json(&c);
        assert_eq!(counters_from_json(&v).unwrap(), c);
    }

    #[test]
    fn contention_round_trip() {
        let c = HeapContention {
            cache_hits: 11,
            cache_misses: 2,
            backend_locks: 3,
            scavenges: 1,
        };
        let v = contention_to_json(&c);
        assert_eq!(contention_from_json(&v).unwrap(), c);
    }

    #[test]
    fn pool_stats_round_trip_and_default_when_absent() {
        let p = PoolStats {
            workers: 7,
            dispatches: 40,
            steals: 13,
            parks: 52,
            wakeups: 47,
        };
        assert_eq!(pool_from_json(&pool_to_json(&p)).unwrap(), p);

        // Documents written before the pool existed parse with zeroed pool
        // stats rather than erroring.
        let mut m = sample();
        let text = m.to_json().to_string().replace(
            "\"pool\":{\"workers\":3,\"dispatches\":2,\"steals\":5,\"parks\":7,\"wakeups\":6}",
            "\"pool\":null",
        );
        assert_ne!(text, m.to_json().to_string(), "pool object was replaced");
        let parsed = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        m.vm.as_mut().unwrap().pool = PoolStats::default();
        assert_eq!(parsed, m);
    }

    #[test]
    fn server_stats_round_trip_and_default_when_absent() {
        let s = sample().server.unwrap();
        assert_eq!(server_from_json(&server_to_json(&s)).unwrap(), s);
        assert_eq!(s.total_hits(), 22);
        assert_eq!(s.total_misses(), 3);

        // Documents written before the daemon existed parse with no server
        // block rather than erroring.
        let mut m = sample();
        let text = m.to_json().to_string();
        let (head, _) = text.rsplit_once(",\"server\":").unwrap();
        let parsed = RunMetrics::from_json(&Json::parse(&format!("{head}}}")).unwrap()).unwrap();
        m.server = None;
        assert_eq!(parsed, m);
    }

    #[test]
    fn latency_and_taskpool_default_when_absent() {
        // A server block written before latency tracking existed parses
        // with empty histograms and zeroed pool counters.
        let mut s = sample().server.unwrap();
        let text = server_to_json(&s).to_string();
        let (head, _) = text.rsplit_once(",\"latency\":").unwrap();
        let parsed = server_from_json(&Json::parse(&format!("{head}}}")).unwrap()).unwrap();
        s.latency = LatencyStats::default();
        s.taskpool = TaskPoolStats::default();
        assert_eq!(parsed, s);
    }

    #[test]
    fn prometheus_text_renders_quantiles() {
        let s = sample().server.unwrap();
        let text = prometheus_text(&s);
        assert!(text.contains("dsed_requests_total 12"));
        assert!(text.contains("dsed_taskpool_queued_peak 3"));
        assert!(text.contains("dsed_phase_cache_total{phase=\"parse\",outcome=\"hit\"} 10"));
        assert!(text.contains("dsed_request_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("dsed_request_latency_seconds_count{} 3"));
        assert!(text.contains("dsed_phase_latency_seconds{phase=\"parse\",quantile=\"0.99\"}"));
    }

    #[test]
    fn privatized_structures_counts_data_structures_only() {
        let e = sample().expansion.unwrap();
        assert_eq!(e.privatized_structures(), 6);
    }
}
