//! Nestable wall-clock phase timing.
//!
//! [`PhaseTimer`] maintains a stack of open spans; finished spans attach
//! to their parent (or to the top-level list), producing a tree of
//! [`PhaseSpan`]s. Spans carry integer *stats* (AST nodes, instruction
//! counts, candidate loops, …) so a timeline is also a size profile of
//! the pipeline.

use crate::json::Json;
use std::time::{Duration, Instant};

/// One completed, possibly-nested timing span.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpan {
    /// Phase name (e.g. `parse`, `lower`, `profile`).
    pub name: String,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Integer size stats attached via [`PhaseTimer::stat`], in insertion
    /// order.
    pub stats: Vec<(String, i64)>,
    /// Sub-phases timed while this span was open.
    pub children: Vec<PhaseSpan>,
}

impl PhaseSpan {
    /// Serializes the span (and its subtree) to JSON:
    /// `{"phase": ..., "ns": ..., "ms": ..., "stats": {...}, "children": [...]}`.
    /// `ns` is authoritative (integer nanoseconds); `ms` is a rounded
    /// convenience for human readers and is ignored by [`PhaseSpan::from_json`].
    pub fn to_json(&self) -> Json {
        let ns = self.duration.as_nanos().min(i64::MAX as u128) as i64;
        Json::obj(vec![
            ("phase", Json::Str(self.name.clone())),
            ("ns", Json::Int(ns)),
            ("ms", Json::Float(ns as f64 / 1e6)),
            (
                "stats",
                Json::Obj(
                    self.stats
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(PhaseSpan::to_json).collect()),
            ),
        ])
    }

    /// Reconstructs a span from [`PhaseSpan::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<PhaseSpan, String> {
        let name = v
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("span missing string field 'phase'")?
            .to_string();
        let ns = v
            .get("ns")
            .and_then(Json::as_i64)
            .ok_or("span missing integer 'ns'")?;
        let stats = match v.get("stats") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, val)| {
                    val.as_i64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("stat '{k}' is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("'stats' is not an object".into()),
        };
        let children = match v.get("children") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(PhaseSpan::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            Some(_) => return Err("'children' is not an array".into()),
        };
        Ok(PhaseSpan {
            name,
            duration: Duration::from_nanos(ns.max(0) as u64),
            stats,
            children,
        })
    }

    /// Renders the subtree as indented `name  time  (stats)` lines, the
    /// human form printed by `dsec --timing`.
    pub fn render(&self, indent: usize, out: &mut String) {
        let ms = self.duration.as_secs_f64() * 1e3;
        out.push_str(&format!("{:indent$}{:<10} {:>9.3} ms", "", self.name, ms));
        if !self.stats.is_empty() {
            let stats: Vec<String> = self.stats.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  ({})", stats.join(", ")));
        }
        out.push('\n');
        for c in &self.children {
            c.render(indent + 2, out);
        }
    }
}

struct OpenSpan {
    span: PhaseSpan,
    started: Instant,
}

/// Records a tree of [`PhaseSpan`]s via a start/finish stack.
///
/// ```
/// use dse_telemetry::PhaseTimer;
/// let mut t = PhaseTimer::new();
/// t.start("parse");
/// t.stat("ast_nodes", 120);
/// t.finish();
/// let spans = t.into_spans();
/// assert_eq!(spans[0].name, "parse");
/// ```
#[derive(Default)]
pub struct PhaseTimer {
    open: Vec<OpenSpan>,
    finished: Vec<PhaseSpan>,
}

impl PhaseTimer {
    /// A timer with no spans.
    pub fn new() -> PhaseTimer {
        PhaseTimer::default()
    }

    /// Opens a span; nested under the currently open span, if any.
    pub fn start(&mut self, name: &str) {
        self.open.push(OpenSpan {
            span: PhaseSpan {
                name: name.to_string(),
                duration: Duration::ZERO,
                stats: Vec::new(),
                children: Vec::new(),
            },
            started: Instant::now(),
        });
    }

    /// Attaches a size stat to the innermost open span. With no span open
    /// (stat computed after the phase ended), attaches to the most
    /// recently finished top-level span instead.
    pub fn stat(&mut self, key: &str, value: i64) {
        let stats = match self.open.last_mut() {
            Some(o) => &mut o.span.stats,
            None => match self.finished.last_mut() {
                Some(s) => &mut s.stats,
                None => return,
            },
        };
        stats.push((key.to_string(), value));
    }

    /// Closes the innermost open span, recording its duration.
    ///
    /// # Panics
    ///
    /// Panics if no span is open (indicates mismatched start/finish).
    pub fn finish(&mut self) {
        let o = self
            .open
            .pop()
            .expect("PhaseTimer::finish with no open span");
        let mut span = o.span;
        span.duration = o.started.elapsed();
        match self.open.last_mut() {
            Some(parent) => parent.span.children.push(span),
            None => self.finished.push(span),
        }
    }

    /// Times `f` as a span named `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        self.start(name);
        let out = f();
        self.finish();
        out
    }

    /// The completed top-level spans, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if a span is still open.
    pub fn into_spans(self) -> Vec<PhaseSpan> {
        assert!(self.open.is_empty(), "PhaseTimer dropped with open spans");
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nests_spans_and_attaches_stats() {
        let mut t = PhaseTimer::new();
        t.start("outer");
        t.stat("items", 3);
        t.time("inner", || std::hint::black_box(2 + 2));
        t.finish();
        t.start("after");
        t.finish();
        t.stat("late", 1);
        let spans = t.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].stats, vec![("items".to_string(), 3)]);
        assert_eq!(spans[0].children.len(), 1);
        assert_eq!(spans[0].children[0].name, "inner");
        assert_eq!(spans[1].stats, vec![("late".to_string(), 1)]);
        assert!(spans[0].duration >= spans[0].children[0].duration);
    }

    #[test]
    fn span_json_round_trips() {
        let span = PhaseSpan {
            name: "profile".into(),
            duration: Duration::from_nanos(1_234_567),
            stats: vec![("loops".into(), 4), ("accesses".into(), 99)],
            children: vec![PhaseSpan {
                name: "ddg".into(),
                duration: Duration::from_nanos(456),
                stats: vec![],
                children: vec![],
            }],
        };
        let v = span.to_json();
        let text = v.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(PhaseSpan::from_json(&parsed).unwrap(), span);
    }

    #[test]
    fn render_is_indented() {
        let mut t = PhaseTimer::new();
        t.start("a");
        t.time("b", || ());
        t.finish();
        let spans = t.into_spans();
        let mut out = String::new();
        spans[0].render(0, &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with('a'));
        assert!(lines[1].starts_with("  b"));
    }
}
