//! [`TraceObserver`]: stream VM events as JSONL.
//!
//! Implements [`dse_runtime::Observer`], so it sees what the dependence
//! profiler sees: every sited access, candidate-loop event and heap event
//! of a *serial* execution (parallel regions run unobserved by design).
//! Each event becomes one compact JSON object per line, suitable for
//! `jq`-style post-processing. Event shapes:
//!
//! ```text
//! {"ev":"access","site":12,"kind":"load","addr":70656,"width":8,"sp":4206592}
//! {"ev":"loop","event":"begin","loop":0,"sp":4206400,"work":1523}
//! {"ev":"alloc","id":3,"base":8392704,"size":800,"pc":214}
//! {"ev":"free","id":3,"base":8392704,"size":800}
//! ```

use dse_ir::bytecode::LoopEvent;
use dse_ir::sites::{AccessKind, SiteId};
use dse_runtime::{Allocation, Observer};
use std::io::Write;

/// Observer that writes one JSON object per event to `out`.
///
/// Writing is infallible from the VM's perspective (the [`Observer`]
/// methods return `()`); the first I/O error is latched, subsequent events
/// are dropped, and [`TraceObserver::finish`] surfaces the error.
pub struct TraceObserver<W: Write> {
    out: W,
    events: u64,
    err: Option<std::io::Error>,
}

impl<W: Write> TraceObserver<W> {
    /// Wraps a sink. Callers that care about syscall overhead should pass
    /// a [`std::io::BufWriter`].
    pub fn new(out: W) -> TraceObserver<W> {
        TraceObserver {
            out,
            events: 0,
            err: None,
        }
    }

    /// Number of events successfully written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the sink, or the first latched write error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while writing or flushing.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn emit(&mut self, f: impl FnOnce(&mut W) -> std::io::Result<()>) {
        if self.err.is_some() {
            return;
        }
        match f(&mut self.out) {
            Ok(()) => self.events += 1,
            Err(e) => self.err = Some(e),
        }
    }
}

impl<W: Write> Observer for TraceObserver<W> {
    fn on_access(&mut self, site: SiteId, kind: AccessKind, addr: u64, width: u32, sp: u64) {
        let kind = match kind {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        self.emit(|out| {
            writeln!(
                out,
                "{{\"ev\":\"access\",\"site\":{site},\"kind\":\"{kind}\",\
                 \"addr\":{addr},\"width\":{width},\"sp\":{sp}}}"
            )
        });
    }

    fn on_loop(&mut self, ev: LoopEvent, loop_id: u32, sp: u64, work: u64) {
        let ev = match ev {
            LoopEvent::Begin => "begin",
            LoopEvent::IterStart => "iter_start",
            LoopEvent::End => "end",
        };
        self.emit(|out| {
            writeln!(
                out,
                "{{\"ev\":\"loop\",\"event\":\"{ev}\",\"loop\":{loop_id},\
                 \"sp\":{sp},\"work\":{work}}}"
            )
        });
    }

    fn on_alloc(&mut self, alloc: Allocation, pc: u32) {
        self.emit(|out| {
            writeln!(
                out,
                "{{\"ev\":\"alloc\",\"id\":{},\"base\":{},\"size\":{},\"pc\":{pc}}}",
                alloc.id, alloc.base, alloc.size
            )
        });
    }

    fn on_free(&mut self, alloc: Allocation) {
        self.emit(|out| {
            writeln!(
                out,
                "{{\"ev\":\"free\",\"id\":{},\"base\":{},\"size\":{}}}",
                alloc.id, alloc.base, alloc.size
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn events_emit_parseable_jsonl() {
        let mut obs = TraceObserver::new(Vec::new());
        obs.on_access(3, AccessKind::Store, 4096, 8, 1024);
        obs.on_loop(LoopEvent::Begin, 1, 2048, 57);
        obs.on_alloc(
            Allocation {
                base: 8192,
                size: 64,
                block: 64,
                id: 9,
            },
            12,
        );
        obs.on_free(Allocation {
            base: 8192,
            size: 64,
            block: 64,
            id: 9,
        });
        assert_eq!(obs.events(), 4);
        let bytes = obs.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ev").unwrap().as_str(), Some("access"));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("store"));
        assert_eq!(first.get("addr").unwrap().as_i64(), Some(4096));
        let heap = Json::parse(lines[2]).unwrap();
        assert_eq!(heap.get("size").unwrap().as_i64(), Some(64));
        assert_eq!(heap.get("pc").unwrap().as_i64(), Some(12));
    }

    #[test]
    fn write_errors_are_latched() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut obs = TraceObserver::new(Failing);
        obs.on_loop(LoopEvent::End, 0, 0, 0);
        obs.on_loop(LoopEvent::End, 0, 0, 0);
        assert_eq!(obs.events(), 0);
        assert!(obs.finish().is_err());
    }
}
