//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and folded-stack flamegraph text.
//!
//! The chrome export gives every runtime worker its own pid (so Perfetto
//! renders one swim-lane per worker), plus dedicated pids for the
//! compilation pipeline and the allocator backend. Span events
//! ([`dse_runtime::EventKind::is_span`]) become `X` complete events with
//! microsecond `ts`/`dur`; the rest become thread-scoped instants.
//!
//! The folded export aggregates the same events into
//! `frame;frame;... weight` lines (weights in microseconds), the input
//! format of the standard flamegraph toolchain: one stack per
//! (worker, loop) with the DOACROSS wait share split out as a child
//! frame, parked time per worker, and allocator scavenges.

use crate::json::Json;
use dse_runtime::{EventKind, TraceEvent, HEAP_TID};
use std::collections::BTreeMap;

/// One compilation-pipeline phase span on the shared trace timeline
/// (produced by the driver from the pipeline's phase trace; `dse-core`
/// sits above this crate, so the exporter takes the neutral form).
#[derive(Debug, Clone)]
pub struct PipelineSpan {
    /// Display name, e.g. `"lower (computed)"`.
    pub name: String,
    /// Start offset from the trace epoch, nanoseconds.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Synthetic pid of the pipeline track.
const PIPELINE_PID: i64 = 1;
/// Synthetic pid of the allocator-backend track.
const HEAP_PID: i64 = 2;
/// Worker `w` exports as pid `WORKER_PID_BASE + w`.
const WORKER_PID_BASE: i64 = 10;

fn pid_of(tid: u32) -> i64 {
    if tid == HEAP_TID {
        HEAP_PID
    } else {
        WORKER_PID_BASE + tid as i64
    }
}

fn us(ns: u64) -> Json {
    Json::Float(ns as f64 / 1000.0)
}

fn meta(pid: i64, name: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Int(pid)),
        ("tid", Json::Int(0)),
        ("args", Json::obj(vec![("name", Json::Str(name.into()))])),
    ])
}

/// Event display name and kind-specific args.
fn describe(ev: &TraceEvent) -> (String, Vec<(&'static str, Json)>) {
    let a = Json::Int(ev.a as i64);
    let b = Json::Int(ev.b as i64);
    match ev.kind {
        EventKind::LoopRun => (format!("loop {}", ev.a), vec![("loop", a)]),
        EventKind::Dispatch => (
            format!("dispatch loop {}", ev.a),
            vec![("loop", a), ("workers", b)],
        ),
        EventKind::Steal => ("steal".into(), vec![("loop", a), ("victim", b)]),
        EventKind::Park => ("park".into(), vec![]),
        EventKind::Wake => ("wake".into(), vec![("loop", a)]),
        EventKind::WaitSpan => ("wait".into(), vec![("loop", a), ("iter", b)]),
        EventKind::Post => ("post".into(), vec![("loop", a), ("iter", b)]),
        EventKind::Trap => ("trap".into(), vec![("pc", a), ("loop", b)]),
        EventKind::Refill => ("refill".into(), vec![("class", a), ("blocks", b)]),
        EventKind::Scavenge => ("scavenge".into(), vec![]),
    }
}

/// Renders runtime events plus pipeline phase spans as a Chrome
/// trace-event JSON document. `dropped` is the count of events lost to
/// ring overwrites, surfaced under `otherData` so a truncated trace is
/// never mistaken for a complete one.
pub fn chrome_trace(events: &[TraceEvent], pipeline: &[PipelineSpan], dropped: u64) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + pipeline.len() + 8);
    out.push(meta(PIPELINE_PID, "pipeline"));
    let mut seen_worker: BTreeMap<u32, ()> = BTreeMap::new();
    for ev in events {
        if ev.tid != HEAP_TID {
            seen_worker.insert(ev.tid, ());
        }
    }
    for &w in seen_worker.keys() {
        let name = if w == 0 {
            "worker 0 (master)".to_string()
        } else {
            format!("worker {w}")
        };
        out.push(meta(pid_of(w), &name));
    }
    if events.iter().any(|e| e.tid == HEAP_TID) {
        out.push(meta(HEAP_PID, "heap"));
    }
    for span in pipeline {
        out.push(Json::obj(vec![
            ("name", Json::Str(span.name.clone())),
            ("cat", Json::Str("pipeline".into())),
            ("ph", Json::Str("X".into())),
            ("pid", Json::Int(PIPELINE_PID)),
            ("tid", Json::Int(0)),
            ("ts", us(span.ts_ns)),
            ("dur", us(span.dur_ns)),
        ]));
    }
    for ev in events {
        let (name, args) = describe(ev);
        let mut fields = vec![
            ("name", Json::Str(name)),
            ("cat", Json::Str("runtime".into())),
            (
                "ph",
                Json::Str(if ev.kind.is_span() { "X" } else { "i" }.into()),
            ),
            ("pid", Json::Int(pid_of(ev.tid))),
            ("tid", Json::Int(0)),
            ("ts", us(ev.ts_ns)),
        ];
        if ev.kind.is_span() {
            fields.push(("dur", us(ev.dur_ns)));
        } else {
            // Thread-scoped instant: renders as a marker on this track.
            fields.push(("s", Json::Str("t".into())));
        }
        fields.push(("args", Json::obj(args)));
        out.push(Json::obj(fields));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "otherData",
            Json::obj(vec![("dropped_events", Json::Int(dropped as i64))]),
        ),
    ])
}

/// Renders runtime events as folded flamegraph stacks, weights in
/// microseconds. Wait time inside a loop is split into a `;wait` child
/// frame so the flame shows compute vs. synchronization; sub-microsecond
/// spans round up to 1 so no observed frame vanishes.
pub fn flamegraph_folded(events: &[TraceEvent]) -> String {
    // (worker, loop) -> (loop_run_ns, wait_ns); worker -> park_ns.
    let mut loops: BTreeMap<(u32, u64), (u64, u64)> = BTreeMap::new();
    let mut park: BTreeMap<u32, u64> = BTreeMap::new();
    let mut scavenge_ns = 0u64;
    for ev in events {
        match ev.kind {
            EventKind::LoopRun => loops.entry((ev.tid, ev.a)).or_default().0 += ev.dur_ns,
            EventKind::WaitSpan => loops.entry((ev.tid, ev.a)).or_default().1 += ev.dur_ns,
            EventKind::Park => *park.entry(ev.tid).or_default() += ev.dur_ns,
            EventKind::Scavenge => scavenge_ns += ev.dur_ns,
            _ => {}
        }
    }
    let weight = |ns: u64| ns.div_ceil(1000).max(1);
    let mut lines = Vec::new();
    for (&(w, l), &(run_ns, wait_ns)) in &loops {
        // Wait is nested inside the loop span; report the non-wait rest
        // as the loop's own weight.
        lines.push(format!(
            "worker {w};loop {l} {}",
            weight(run_ns.saturating_sub(wait_ns))
        ));
        if wait_ns > 0 {
            lines.push(format!("worker {w};loop {l};wait {}", weight(wait_ns)));
        }
    }
    for (&w, &ns) in &park {
        if ns > 0 {
            lines.push(format!("worker {w};park {}", weight(ns)));
        }
    }
    if scavenge_ns > 0 {
        lines.push(format!("heap;scavenge {}", weight(scavenge_ns)));
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, tid: u32, ts: u64, dur: u64, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: dur,
            a,
            b,
            tid,
            kind,
        }
    }

    #[test]
    fn chrome_trace_parses_and_tracks_pids() {
        let events = vec![
            ev(EventKind::Dispatch, 0, 100, 0, 3, 4),
            ev(EventKind::LoopRun, 0, 120, 5_000, 3, 0),
            ev(EventKind::LoopRun, 1, 150, 4_800, 3, 0),
            ev(EventKind::Refill, HEAP_TID, 400, 0, 2, 32),
        ];
        let pipeline = vec![PipelineSpan {
            name: "parse (computed)".into(),
            ts_ns: 0,
            dur_ns: 50,
        }];
        let doc = chrome_trace(&events, &pipeline, 7);
        // Byte-stable output that the in-tree reader can parse back.
        let parsed = Json::parse(&doc.to_string()).unwrap();
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 process metadata records (pipeline, 2 workers) + heap meta +
        // 1 pipeline span + 4 runtime events.
        assert_eq!(evs.len(), 9);
        let pids: Vec<i64> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("pid").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(pids, [1, 10, 10, 11, 2]);
        assert_eq!(
            parsed
                .get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_i64(),
            Some(7)
        );
    }

    #[test]
    fn flamegraph_splits_wait_from_compute() {
        let events = vec![
            ev(EventKind::LoopRun, 0, 0, 10_000, 5, 0),
            ev(EventKind::WaitSpan, 0, 1_000, 4_000, 5, 1),
            ev(EventKind::Park, 1, 0, 2_000, 0, 0),
        ];
        let folded = flamegraph_folded(&events);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            [
                "worker 0;loop 5 6",
                "worker 0;loop 5;wait 4",
                "worker 1;park 2"
            ]
        );
    }
}
