//! Log-bucketed (HDR-style) latency histograms.
//!
//! A [`LogHistogram`] records `u64` values (nanoseconds, by convention)
//! into buckets whose width grows with magnitude: values below 16 are
//! exact, and every octave above that is split into 16 sub-buckets
//! ([`SUB_BITS`] = 4 bits of precision below the most significant bit).
//! Quantile estimates therefore carry at most 1/16 ≈ 6.25% relative
//! error across the full `u64` range, with a fixed 976-slot footprint and
//! O(1) recording — the shape the daemon needs to keep per-request,
//! per-phase, and queue-wait latency distributions alive across tens of
//! thousands of requests without allocation.
//!
//! The JSON form is sparse (`[index, count]` pairs for non-empty buckets
//! only), so `stats` responses stay small for long-tailed distributions.

use crate::json::Json;

/// Sub-bucket precision: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket slots: 16 exact values + 16 sub-buckets for each of the
/// 60 octaves `2^4..2^64`.
pub const NBUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Bucket index of `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let octave = msb - SUB_BITS as usize;
        // `v >> octave` keeps the top five bits (16..=31); masking off the
        // leading one leaves the 4-bit sub-bucket.
        SUB_COUNT + octave * SUB_COUNT + ((v >> octave) as usize & (SUB_COUNT - 1))
    }
}

/// Inclusive value range `[low, high]` covered by bucket `idx`.
#[inline]
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB_COUNT {
        (idx as u64, idx as u64)
    } else {
        let octave = (idx - SUB_COUNT) / SUB_COUNT;
        let sub = ((idx - SUB_COUNT) % SUB_COUNT) as u64;
        let low = (SUB_COUNT as u64 + sub) << octave;
        // Parenthesized so the topmost bucket (whose high is u64::MAX)
        // does not overflow on the way there.
        (low, low + ((1u64 << octave) - 1))
    }
}

/// An HDR-style log-bucketed histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: Box::new([0; NBUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// An estimate of the `q`-quantile (`0.0 <= q <= 1.0`): the upper
    /// bound of the bucket holding the value of that rank, clamped to the
    /// recorded min/max so p0/p100 are exact. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let (_, high) = bucket_bounds(idx);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s recordings into `self` (bucket-exact: merging then
    /// querying equals querying the concatenation of recordings).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (s, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *s += *o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` ranges, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let (lo, hi) = bucket_bounds(idx);
                (lo, hi, c)
            })
            .collect()
    }

    /// Sparse JSON form: summary fields plus `[index, count]` pairs for
    /// non-empty buckets.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| Json::Arr(vec![Json::Int(idx as i64), Json::Int(c as i64)]))
            .collect();
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("min", Json::Int(self.min() as i64)),
            ("max", Json::Int(self.max as i64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parses the form produced by [`LogHistogram::to_json`]. Returns
    /// `None` on malformed input (wrong shape, out-of-range index).
    pub fn from_json(v: &Json) -> Option<LogHistogram> {
        let mut h = LogHistogram::new();
        h.count = v.get("count")?.as_i64()? as u64;
        h.sum = v.get("sum")?.as_i64()? as u64;
        let min = v.get("min")?.as_i64()? as u64;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = v.get("max")?.as_i64()? as u64;
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let idx = pair[0].as_i64()?;
            let c = pair[1].as_i64()?;
            if !(0..NBUCKETS as i64).contains(&idx) || c < 0 {
                return None;
            }
            h.counts[idx as usize] += c as u64;
        }
        Some(h)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
            assert_eq!(index_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn bucket_bounds_invert_index() {
        // Every bucket's bounds map back to that bucket, and bounds tile
        // the value space without gaps.
        let mut expected_next = 0u64;
        for idx in 0..NBUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_next, "gap before bucket {idx}");
            assert_eq!(index_of(lo), idx);
            assert_eq!(index_of(hi), idx);
            if hi == u64::MAX {
                assert_eq!(idx, NBUCKETS - 1);
                return;
            }
            expected_next = hi + 1;
        }
        panic!("buckets did not cover u64::MAX");
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[17, 100, 999, 4096, 1_000_000, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(index_of(v));
            assert!(lo <= v && v <= hi);
            // Bucket width is at most 1/16 of its lower bound.
            assert!(
                hi - lo <= lo / SUB_COUNT as u64 + 1,
                "bucket too wide at {v}"
            );
        }
    }

    #[test]
    fn json_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0, 3, 17, 900, 1_000_000, 123_456_789] {
            h.record(v);
        }
        let j = h.to_json();
        let back = LogHistogram::from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, h);
        // Empty histograms round-trip too (min sentinel preserved).
        let e = LogHistogram::new();
        let back = LogHistogram::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }
}
