//! Content hashing for the artifact cache.
//!
//! Pipeline artifacts (parsed AST, lowered bytecode, dependence profiles,
//! plans, transformed programs, verify reports) are cached keyed by a
//! *content hash* of their inputs, so identical requests collapse onto one
//! computation and an edit only invalidates the phases downstream of it.
//! The hash is 128-bit FNV-1a — dependency-free, byte-stable across runs
//! and platforms, and wide enough that accidental collisions are not a
//! practical concern for a per-process cache. It is **not**
//! collision-resistant against adversaries; the store is a cache, not a
//! trust boundary.
//!
//! [`ContentHasher`] length-prefixes every field, so `("ab", "c")` and
//! `("a", "bc")` hash differently.

use std::fmt;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit content hash, displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl ContentHash {
    /// Parses the 32-hex-digit form emitted by `Display`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed input.
    pub fn parse(s: &str) -> Result<ContentHash, String> {
        if s.len() != 32 {
            return Err(format!(
                "content hash must be 32 hex digits, got {}",
                s.len()
            ));
        }
        u128::from_str_radix(s, 16)
            .map(ContentHash)
            .map_err(|e| format!("bad content hash '{s}': {e}"))
    }
}

/// Incremental FNV-1a 128 hasher with length-prefixed field framing.
///
/// ```
/// use dse_telemetry::hash::ContentHasher;
/// let a = ContentHasher::new("parse").str("int main(){}").finish();
/// let b = ContentHasher::new("parse").str("int main(){}").finish();
/// assert_eq!(a, b);
/// let c = ContentHasher::new("lower").str("int main(){}").finish();
/// assert_ne!(a, c, "the phase tag separates key spaces");
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

impl ContentHasher {
    /// A hasher seeded with a domain/phase tag so each phase has its own
    /// key space.
    pub fn new(tag: &str) -> ContentHasher {
        ContentHasher { state: FNV_OFFSET }.str(tag)
    }

    fn raw(mut self, bytes: &[u8]) -> ContentHasher {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes a byte field (length-prefixed).
    pub fn bytes(self, bytes: &[u8]) -> ContentHasher {
        self.raw(&(bytes.len() as u64).to_le_bytes()).raw(bytes)
    }

    /// Mixes a string field.
    pub fn str(self, s: &str) -> ContentHasher {
        self.bytes(s.as_bytes())
    }

    /// Mixes a signed integer field.
    pub fn i64(self, v: i64) -> ContentHasher {
        self.raw(&v.to_le_bytes())
    }

    /// Mixes an unsigned integer field.
    pub fn u64(self, v: u64) -> ContentHasher {
        self.raw(&v.to_le_bytes())
    }

    /// Mixes a float field by its bit pattern.
    pub fn f64(self, v: f64) -> ContentHasher {
        self.raw(&v.to_bits().to_le_bytes())
    }

    /// Mixes a boolean field.
    pub fn bool(self, v: bool) -> ContentHasher {
        self.raw(&[v as u8])
    }

    /// Mixes an upstream artifact hash.
    pub fn hash(self, h: ContentHash) -> ContentHasher {
        self.raw(&h.0.to_le_bytes())
    }

    /// Mixes a slice of integers (length-prefixed).
    pub fn i64s(self, vs: &[i64]) -> ContentHasher {
        vs.iter().fold(self.u64(vs.len() as u64), |h, &v| h.i64(v))
    }

    /// Mixes a slice of floats (length-prefixed).
    pub fn f64s(self, vs: &[f64]) -> ContentHasher {
        vs.iter().fold(self.u64(vs.len() as u64), |h, &v| h.f64(v))
    }

    /// The finished hash.
    pub fn finish(self) -> ContentHash {
        ContentHash(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_builders() {
        let h = |src: &str| ContentHasher::new("t").str(src).i64(4).finish();
        assert_eq!(h("abc"), h("abc"));
        assert_ne!(h("abc"), h("abd"));
    }

    #[test]
    fn field_framing_prevents_concatenation_aliasing() {
        let a = ContentHasher::new("t").str("ab").str("c").finish();
        let b = ContentHasher::new("t").str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn display_round_trips() {
        let h = ContentHasher::new("t").str("xyz").finish();
        let text = h.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(ContentHash::parse(&text).unwrap(), h);
        assert!(ContentHash::parse("zz").is_err());
    }

    #[test]
    fn integer_slices_are_length_prefixed() {
        let a = ContentHasher::new("t").i64s(&[1, 2]).i64s(&[3]).finish();
        let b = ContentHasher::new("t").i64s(&[1]).i64s(&[2, 3]).finish();
        assert_ne!(a, b);
    }
}
