//! Property tests for [`dse_telemetry::LogHistogram`] against a naive
//! vector oracle: record the same values into both, then check that the
//! histogram's summary statistics and quantiles agree with the exact
//! answers within the documented bucket error, and that merging
//! histograms equals recording the concatenation.

use dse_telemetry::{Json, LogHistogram};
use dse_workloads::rng::Rng;

/// Exact `q`-quantile of a sorted vector, matching the histogram's
/// ceil-rank convention.
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Draws a value spread across many octaves (uniform draws would almost
/// never land in small buckets).
fn draw(rng: &mut Rng) -> u64 {
    let bits = rng.gen_range(0, 40) as u32;
    (rng.next_u64() >> (63 - bits)) >> 1
}

#[test]
fn quantiles_track_oracle_within_bucket_error() {
    let mut rng = Rng::seed_from_u64(0x5eed_0008);
    for round in 0..50 {
        let n = rng.gen_range(1, 400) as usize;
        let mut h = LogHistogram::new();
        let mut vals: Vec<u64> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = draw(&mut rng);
            h.record(v);
            vals.push(v);
        }
        vals.sort_unstable();
        assert_eq!(h.count(), n as u64, "round {round}");
        assert_eq!(h.sum(), vals.iter().sum::<u64>(), "round {round}");
        assert_eq!(h.min(), vals[0], "round {round}");
        assert_eq!(h.max(), *vals.last().unwrap(), "round {round}");
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = oracle_percentile(&vals, q);
            let est = h.percentile(q);
            // The estimate is the bucket's upper bound: never below the
            // exact answer, and at most one sub-bucket (1/16th) above.
            assert!(
                est >= exact,
                "round {round} q={q}: est {est} < exact {exact}"
            );
            assert!(
                est <= exact + exact / 16 + 1,
                "round {round} q={q}: est {est} too far above exact {exact}"
            );
        }
    }
}

#[test]
fn merge_equals_concatenated_recording() {
    let mut rng = Rng::seed_from_u64(0xface_0008);
    for _ in 0..25 {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for _ in 0..rng.gen_range(0, 200) {
            let v = draw(&mut rng);
            a.record(v);
            both.record(v);
        }
        for _ in 0..rng.gen_range(0, 200) {
            let v = draw(&mut rng);
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        // Bucket-exact: merged state is indistinguishable from having
        // recorded every value into one histogram.
        assert_eq!(a, both);
    }
}

#[test]
fn json_round_trip_is_lossless_under_random_data() {
    let mut rng = Rng::seed_from_u64(0x150_0008);
    for _ in 0..20 {
        let mut h = LogHistogram::new();
        for _ in 0..rng.gen_range(0, 300) {
            h.record(draw(&mut rng));
        }
        let text = h.to_json().to_string();
        let back = LogHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
