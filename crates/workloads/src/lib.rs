//! # dse-workloads — models of the paper's eight benchmarks
//!
//! The paper evaluates on MiBench (dijkstra, md5), MediaBench II
//! (mpeg2-encoder, mpeg2-decoder, h263-encoder) and SPEC CPU (256.bzip2,
//! 456.hmmer, 470.lbm). Those C sources cannot be compiled here, so each
//! benchmark is modeled as a **Cee program that reproduces its candidate
//! loop's memory-access structure** — the thing the expansion pass
//! actually operates on:
//!
//! | workload | models | parallelism | privatization idiom |
//! |---|---|---|---|
//! | `dijkstra` | MiBench dijkstra | DOACROSS L1 | per-search linked-list queue + annotation arrays |
//! | `md5` | MiBench md5 | DOALL L1 | global block buffer + digest scalars |
//! | `mpeg2enc` | MB-II encoder | DOALL L3 | per-macroblock SAD scratch |
//! | `mpeg2dec` | MB-II decoder | DOALL L2 | per-block coefficient/IDCT scratch |
//! | `h263enc` | MB-II H.263 | DOALL L2 ×2 | PB-prediction + motion scratch |
//! | `bzip2` | SPEC 256.bzip2 | DOACROSS L2 | realloc'd work array recast to shorts |
//! | `hmmer` | SPEC 456.hmmer | DOACROSS L2 | realloc'd DP matrix (dynamic spans) |
//! | `lbm` | SPEC 470.lbm | DOALL L2 | small collide scratch over shared grids |
//!
//! Each workload carries deterministic input generators at two scales:
//! [`Scale::Profile`] (small, for byte-granular dependence profiling) and
//! [`Scale::Bench`] (larger, for timing experiments).

use dse_ir::loops::ParMode;
use dse_runtime::VmConfig;

pub mod rng;

use rng::Rng;

/// Input size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for dependence profiling (byte-granular tracking).
    Profile,
    /// Larger inputs for the timing experiments.
    Bench,
}

/// Paper-reported facts used in the experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFacts {
    /// Benchmark suite (Table 4).
    pub suite: &'static str,
    /// Function containing the parallelized loop (Table 4).
    pub function: &'static str,
    /// Loop nesting level (Table 4).
    pub level: u32,
    /// Parallelism type (Table 4).
    pub parallelism: ParMode,
    /// Loop time as a fraction of the program (Table 4, %).
    pub time_pct: f64,
    /// Dynamic data structures privatized (Table 5).
    pub privatized: u32,
    /// Source lines of the original benchmark (Table 4).
    pub loc: u32,
}

/// One benchmark model.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (e.g. `"dijkstra"`).
    pub name: &'static str,
    /// The Cee source.
    pub source: &'static str,
    /// Candidate loop labels, in source order.
    pub loops: &'static [&'static str],
    /// The paper's reported characteristics.
    pub paper: PaperFacts,
}

impl Workload {
    /// Deterministic integer inputs at the given scale.
    pub fn inputs(&self, scale: Scale) -> Vec<i64> {
        let mut rng = Rng::seed_from_u64(0xD5E0 + self.name.len() as u64);
        match self.name {
            "dijkstra" => {
                let (n, npairs) = match scale {
                    Scale::Profile => (10, 6),
                    Scale::Bench => (40, 48),
                };
                let mut v = vec![n, npairs];
                for _ in 0..n * n {
                    // ~35% edges with weights 1..100.
                    let w = if rng.gen_ratio(35, 100) {
                        rng.gen_range(1, 100)
                    } else {
                        0
                    };
                    v.push(w);
                }
                v
            }
            "md5" => {
                let (nmsg, nblocks) = match scale {
                    Scale::Profile => (4, 2),
                    Scale::Bench => (160, 6),
                };
                let mut v = vec![nmsg, nblocks];
                for _ in 0..nmsg {
                    v.push(rng.gen_range(1, 0x7fff_ffff));
                }
                v
            }
            "mpeg2enc" => {
                let (frames, rows, cols, search) = match scale {
                    Scale::Profile => (1, 2, 2, 2),
                    Scale::Bench => (2, 4, 6, 5),
                };
                vec![frames, rows, cols, search, rng.gen_range(1, 1 << 30)]
            }
            "mpeg2dec" => {
                let (pics, blocks) = match scale {
                    Scale::Profile => (2, 6),
                    Scale::Bench => (6, 330),
                };
                let mut v = vec![pics, blocks, rng.gen_range(1, 1 << 30)];
                for _ in 0..64 {
                    v.push(rng.gen_range(1, 32));
                }
                v
            }
            "h263enc" => {
                let (frames, nmb, search) = match scale {
                    Scale::Profile => (1, 3, 2),
                    Scale::Bench => (3, 20, 6),
                };
                vec![frames, nmb, search, rng.gen_range(1, 1 << 30)]
            }
            "bzip2" => {
                let (streams, blocks, minblk, varblk) = match scale {
                    Scale::Profile => (1, 6, 40, 30),
                    Scale::Bench => (2, 90, 600, 500),
                };
                vec![streams, blocks, minblk, varblk, rng.gen_range(1, 1 << 30)]
            }
            "hmmer" => {
                let (reps, nseq, maxlen, nstates) = match scale {
                    Scale::Profile => (1, 6, 8, 4),
                    Scale::Bench => (2, 60, 48, 12),
                };
                let mut v = vec![reps, nseq, maxlen, nstates, rng.gen_range(1, 1 << 30)];
                for _ in 0..nstates * 3 {
                    v.push(rng.gen_range(-8, 8));
                }
                v
            }
            "lbm" => {
                let (steps, cells) = match scale {
                    Scale::Profile => (2, 24),
                    Scale::Bench => (12, 4000),
                };
                vec![steps, cells, rng.gen_range(1, 1 << 30)]
            }
            other => unreachable!("unknown workload {other}"),
        }
    }

    /// A ready-to-use VM configuration at the given scale (inputs plus a
    /// generous instruction budget).
    pub fn vm_config(&self, scale: Scale) -> VmConfig {
        VmConfig {
            inputs_int: self.inputs(scale),
            max_instructions: 20_000_000_000,
            ..Default::default()
        }
    }

    /// Lines of Cee source (the model's own LOC, not the paper's).
    pub fn model_loc(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// All eight workloads in the paper's Table 4 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "dijkstra",
            source: include_str!("../programs/dijkstra.cee"),
            loops: &["main_loop"],
            paper: PaperFacts {
                suite: "MiBench",
                function: "main",
                level: 1,
                parallelism: ParMode::DoAcross,
                time_pct: 99.9,
                privatized: 2,
                loc: 375,
            },
        },
        Workload {
            name: "md5",
            source: include_str!("../programs/md5.cee"),
            loops: &["main_loop"],
            paper: PaperFacts {
                suite: "MiBench",
                function: "main",
                level: 1,
                parallelism: ParMode::DoAll,
                time_pct: 99.8,
                privatized: 1,
                loc: 420,
            },
        },
        Workload {
            name: "mpeg2enc",
            source: include_str!("../programs/mpeg2enc.cee"),
            loops: &["motion_est"],
            paper: PaperFacts {
                suite: "MediaBench II",
                function: "motion_estimation",
                level: 3,
                parallelism: ParMode::DoAll,
                time_pct: 70.6,
                privatized: 7,
                loc: 7605,
            },
        },
        Workload {
            name: "mpeg2dec",
            source: include_str!("../programs/mpeg2dec.cee"),
            loops: &["block_loop"],
            paper: PaperFacts {
                suite: "MediaBench II",
                function: "picture_data",
                level: 2,
                parallelism: ParMode::DoAll,
                time_pct: 97.8,
                privatized: 3,
                loc: 9832,
            },
        },
        Workload {
            name: "h263enc",
            source: include_str!("../programs/h263enc.cee"),
            loops: &["next_two_pb", "motion_estimate"],
            paper: PaperFacts {
                suite: "MediaBench II",
                function: "NextTwoPB / MotionEstimatePicture",
                level: 2,
                parallelism: ParMode::DoAll,
                time_pct: 80.3,
                privatized: 6,
                loc: 8105,
            },
        },
        Workload {
            name: "bzip2",
            source: include_str!("../programs/bzip2.cee"),
            loops: &["compress_blocks"],
            paper: PaperFacts {
                suite: "SPEC CPU2000",
                function: "compressStream",
                level: 2,
                parallelism: ParMode::DoAcross,
                time_pct: 99.8,
                privatized: 4,
                loc: 4649,
            },
        },
        Workload {
            name: "hmmer",
            source: include_str!("../programs/hmmer.cee"),
            loops: &["seq_loop"],
            paper: PaperFacts {
                suite: "SPEC CPU2006",
                function: "main_loop_serial",
                level: 2,
                parallelism: ParMode::DoAcross,
                time_pct: 99.9,
                privatized: 8,
                loc: 35992,
            },
        },
        Workload {
            name: "lbm",
            source: include_str!("../programs/lbm.cee"),
            loops: &["collide"],
            paper: PaperFacts {
                suite: "SPEC CPU2006",
                function: "LBM_performStreamCollide",
                level: 2,
                parallelism: ParMode::DoAll,
                time_pct: 99.1,
                privatized: 2,
                loc: 1155,
            },
        },
    ]
}

/// Finds a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_compile() {
        for w in all() {
            dse_lang::compile_to_ast(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn candidate_labels_match() {
        for w in all() {
            let p = dse_lang::compile_to_ast(w.source).unwrap();
            let cands = dse_ir::loops::find_candidate_loops(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let labels: Vec<&str> = cands.iter().map(|c| c.label.as_str()).collect();
            assert_eq!(labels, w.loops, "{}", w.name);
            // Nesting level matches the paper's Table 4 for single-function
            // models (the candidate's level within its function).
            for c in &cands {
                assert_eq!(c.level, w.paper.level, "{} loop {}", w.name, c.label);
            }
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        for w in all() {
            assert_eq!(w.inputs(Scale::Profile), w.inputs(Scale::Profile));
            assert_eq!(w.inputs(Scale::Bench), w.inputs(Scale::Bench));
            assert_ne!(w.inputs(Scale::Profile), w.inputs(Scale::Bench));
        }
    }

    #[test]
    fn workloads_run_serially_and_produce_output() {
        for w in all() {
            let p = dse_lang::compile_to_ast(w.source).unwrap();
            let c = dse_ir::lower_program(&p, &Default::default()).unwrap();
            let mut vm = dse_runtime::Vm::new(c, w.vm_config(Scale::Profile)).unwrap();
            let report = vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                !vm.outputs_int().is_empty(),
                "{} must emit a checksum",
                w.name
            );
            assert!(report.counters.work > 0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("dijkstra").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(all().len(), 8);
    }
}
