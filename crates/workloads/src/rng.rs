//! A tiny deterministic pseudo-random number generator (SplitMix64).
//!
//! The input generators and the randomized test suites need reproducible
//! pseudo-random streams, nothing more. SplitMix64 passes BigCrush, is
//! four lines long, and keeps the workspace free of external crates (this
//! build environment has no registry access, so `rand` cannot be fetched).

/// Deterministic PRNG with a 64-bit state (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`. Uses rejection-free modulo reduction;
    /// the bias is negligible for the small ranges used here.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den);
        self.next_u64() % (den as u64) < num as u64
    }

    /// Uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(7);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(8);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5, 17);
            assert!((-5..17).contains(&v));
            assert!(r.gen_index(3) < 3);
        }
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = Rng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_ratio(35, 100)).count();
        assert!((3000..4000).contains(&hits), "got {hits}");
    }
}
