//! Differential suite: the register backend must be observationally
//! indistinguishable from the stack reference backend. Every `.cee`
//! fixture and every benchmark model runs under both backends — serial
//! and transformed — and all observable state must match exactly:
//! outputs, console, return value, trap message, and the Figure-12
//! counter classes that are defined independently of the instruction
//! encoding (`work` and wait spins/yields legitimately differ — fusion
//! compresses the register encoding, and spin counts are scheduling
//! noise).

use dse_core::{Analysis, OptLevel};
use dse_ir::bytecode::CompiledProgram;
use dse_runtime::{BackendKind, Vm, VmConfig};
use dse_workloads::{all, Scale};

#[derive(Debug, PartialEq)]
struct Observed {
    return_value: String,
    trap: Option<String>,
    outputs_int: Vec<i64>,
    outputs_float: Vec<f64>,
    console: String,
    sync_ops: u64,
    localize_calls: u64,
    localize_copied_bytes: u64,
    private_direct: u64,
}

fn observe(compiled: &CompiledProgram, mut cfg: VmConfig, backend: BackendKind) -> Observed {
    cfg.backend = backend;
    let mut vm = Vm::new(compiled.clone(), cfg)
        .unwrap_or_else(|e| panic!("{backend:?}: construction failed: {e}"));
    let res = vm.run();
    let (return_value, trap, counters) = match res {
        Ok(report) => (format!("{:?}", report.return_value), None, report.counters),
        Err(e) => (String::new(), Some(e.to_string()), Default::default()),
    };
    Observed {
        return_value,
        trap,
        outputs_int: vm.outputs_int(),
        outputs_float: vm.outputs_float(),
        console: vm.console(),
        sync_ops: counters.sync_ops,
        localize_calls: counters.localize_calls,
        localize_copied_bytes: counters.localize_copied_bytes,
        private_direct: counters.private_direct,
    }
}

fn assert_backends_agree(label: &str, compiled: &CompiledProgram, cfg: VmConfig) {
    let stack = observe(compiled, cfg.clone(), BackendKind::Stack);
    let reg = observe(compiled, cfg, BackendKind::Reg);
    assert_eq!(stack, reg, "{label}: backends diverge");
}

#[test]
fn cee_fixtures_agree_across_backends() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("cee") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("fixture");
        let ast =
            dse_lang::compile_to_ast(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let compiled = dse_ir::lower_program(&ast, &Default::default())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Fixtures that read host inputs get a small deterministic set;
        // ones that don't simply ignore it.
        let cfg = VmConfig {
            inputs_int: vec![7, 3, 11, 5],
            ..Default::default()
        };
        assert_backends_agree(&path.display().to_string(), &compiled, cfg);
    }
    assert!(seen >= 2, "expected at least two .cee fixtures, saw {seen}");
}

#[test]
fn serial_workloads_agree_across_backends() {
    for w in all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut cfg = w.vm_config(Scale::Profile);
        cfg.nthreads = 1;
        assert_backends_agree(&format!("{} serial", w.name), &analysis.serial, cfg);
    }
}

#[test]
fn transformed_workloads_agree_across_backends() {
    for w in all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let t = analysis
            .transform(OptLevel::Full, 4)
            .unwrap_or_else(|e| panic!("{} transform: {e}", w.name));
        let mut cfg = w.vm_config(Scale::Profile);
        cfg.nthreads = 4;
        assert_backends_agree(&format!("{} full-opt n=4", w.name), &t.parallel, cfg);
    }
}

#[test]
fn baseline_workloads_agree_across_backends() {
    // The runtime-privatization baseline exercises `Localize` — the one
    // opcode class the transformed programs don't emit.
    for w in all() {
        let analysis = Analysis::from_source(w.source, w.vm_config(Scale::Profile))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let b = analysis
            .baseline_parallel(4)
            .unwrap_or_else(|e| panic!("{} baseline: {e}", w.name));
        let mut cfg = w.vm_config(Scale::Profile);
        cfg.nthreads = 4;
        let mut stack = observe(&b.parallel, cfg.clone(), BackendKind::Stack);
        let mut reg = observe(&b.parallel, cfg, BackendKind::Reg);
        // Copy-in bytes count per-*worker* first touches; with the
        // work-stealing pool, chunk-to-worker assignment is scheduling
        // noise, so this counter varies run-to-run on a single backend
        // (verified empirically). Calls stay deterministic and compare.
        stack.localize_copied_bytes = 0;
        reg.localize_copied_bytes = 0;
        assert_eq!(stack, reg, "{} baseline n=4: backends diverge", w.name);
    }
}
