//! Full-pipeline tests over the eight benchmark models: profile →
//! classify → expand → execute, checking (a) the classification matches
//! the paper's Table 4 parallelism, (b) the transformed program is
//! semantically equivalent to the original on 1/2/4/8 threads, and
//! (c) the runtime-privatization baseline agrees too.

use dse_core::{Analysis, OptLevel};
use dse_runtime::Vm;
use dse_workloads::{all, Scale, Workload};

fn run_outputs(
    compiled: dse_ir::bytecode::CompiledProgram,
    nthreads: u32,
    w: &Workload,
) -> (Vec<i64>, Vec<f64>) {
    let mut cfg = w.vm_config(Scale::Profile);
    cfg.nthreads = nthreads;
    let mut vm = Vm::new(compiled, cfg).expect("vm");
    vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (vm.outputs_int(), vm.outputs_float())
}

fn analyze(w: &Workload) -> Analysis {
    Analysis::from_source(w.source, w.vm_config(Scale::Profile))
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

#[test]
fn classification_matches_paper_parallelism() {
    for w in all() {
        let analysis = analyze(&w);
        for label in w.loops {
            let cls = analysis
                .classification(label)
                .unwrap_or_else(|| panic!("{}: loop {label} not profiled", w.name));
            assert_eq!(
                cls.mode, w.paper.parallelism,
                "{}::{label} classified {:?}, paper says {:?}",
                w.name, cls.mode, w.paper.parallelism
            );
        }
    }
}

#[test]
fn transformed_workloads_match_serial_results() {
    for w in all() {
        let analysis = analyze(&w);
        let reference = run_outputs(analysis.serial.clone(), 1, &w);
        for n in [1u32, 2, 4, 8] {
            let t = analysis
                .transform(OptLevel::Full, n)
                .unwrap_or_else(|e| panic!("{} transform n={n}: {e}", w.name));
            let got = run_outputs(t.parallel, n, &w);
            assert_eq!(got, reference, "{} full-opt n={n}", w.name);
        }
        // Unoptimized expansion must also be correct (Figure 9a config).
        let t = analysis
            .transform(OptLevel::None, 2)
            .unwrap_or_else(|e| panic!("{} transform no-opt: {e}", w.name));
        let got = run_outputs(t.parallel, 2, &w);
        assert_eq!(got, reference, "{} no-opt n=2", w.name);
    }
}

#[test]
fn baseline_workloads_match_serial_results() {
    for w in all() {
        let analysis = analyze(&w);
        let reference = run_outputs(analysis.serial.clone(), 1, &w);
        for n in [1u32, 4] {
            let b = analysis
                .baseline_parallel(n)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", w.name));
            let got = run_outputs(b.parallel, n, &w);
            assert_eq!(got, reference, "{} baseline n={n}", w.name);
        }
    }
}

#[test]
fn privatized_structure_counts_are_plausible() {
    // Table 5 reports between 1 and 8 privatized structures; our models
    // should land in the same small-integer regime.
    for w in all() {
        let analysis = analyze(&w);
        let t = analysis.transform(OptLevel::Full, 4).unwrap();
        let n = t.report.privatized_structures();
        assert!(
            (1..=16).contains(&n),
            "{}: privatized {n} structures (paper: {})",
            w.name,
            w.paper.privatized
        );
    }
}

#[test]
fn loops_dominate_runtime_where_paper_says_so() {
    // Table 4's %time column: all of our models spend most of their time
    // in the candidate loops (the paper's range is 43%..99.9%).
    for w in all() {
        let analysis = analyze(&w);
        let mut cfg = w.vm_config(Scale::Profile);
        cfg.nthreads = 1;
        // `profile.loops` instruction counts come from the stack-pinned
        // profiling phase; measure `total` in the same encoding.
        cfg.backend = dse_runtime::BackendKind::Stack;
        let mut vm = Vm::new(analysis.serial.clone(), cfg).unwrap();
        let total = vm.run().unwrap().counters.work;
        let in_loops: u64 = analysis.profile.loops.iter().map(|l| l.instructions).sum();
        let pct = in_loops as f64 / total as f64 * 100.0;
        assert!(
            pct > 30.0,
            "{}: candidate loops are only {pct:.1}% of execution",
            w.name
        );
    }
}

#[test]
fn expansion_overhead_is_modest_with_optimizations() {
    // Figure 9b: with Section 3.4 optimizations the sequential overhead of
    // the transformed code should be far below the unoptimized version.
    for w in all() {
        let analysis = analyze(&w);
        let mut cfg = w.vm_config(Scale::Profile);
        cfg.nthreads = 1;
        // Overhead ratios are defined in reference-encoding instruction
        // counts; register fusion compresses base and transformed code by
        // different factors, so the ratios only mean Figure 9 under the
        // stack backend.
        cfg.backend = dse_runtime::BackendKind::Stack;
        let base = {
            let mut vm = Vm::new(analysis.serial.clone(), cfg.clone()).unwrap();
            vm.run().unwrap().counters.work
        };
        let full = {
            let t = analysis.transform(OptLevel::Full, 1).unwrap();
            let mut vm = Vm::new(t.parallel, cfg.clone()).unwrap();
            vm.run().unwrap().counters.work
        };
        let none = {
            let t = analysis.transform(OptLevel::None, 1).unwrap();
            let mut vm = Vm::new(t.parallel, cfg).unwrap();
            vm.run().unwrap().counters.work
        };
        let oh_full = full as f64 / base as f64;
        let oh_none = none as f64 / base as f64;
        assert!(
            oh_full < oh_none,
            "{}: optimized overhead {oh_full:.3} !< unoptimized {oh_none:.3}",
            w.name
        );
        assert!(
            oh_full < 1.6,
            "{}: optimized overhead too high: {oh_full:.3}x",
            w.name
        );
        assert!(
            oh_none > 1.5,
            "{}: unoptimized expansion should be visibly expensive, got {oh_none:.3}x",
            w.name
        );
    }
}

#[test]
fn vm_config_is_ready_to_run() {
    for w in all() {
        let cfg = w.vm_config(Scale::Bench);
        assert!(!cfg.inputs_int.is_empty());
    }
}
