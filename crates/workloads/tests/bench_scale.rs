//! Bench-scale smoke tests (ignored by default: they run the full-size
//! inputs through the debug-build interpreter, which takes minutes).
//! Run with `cargo test -p dse-workloads --test bench_scale -- --ignored`
//! or, better, `--release`.

use dse_runtime::{Vm, VmConfig};
use dse_workloads::{all, Scale};

#[test]
#[ignore = "bench-scale inputs; run with --ignored (preferably --release)"]
fn workloads_run_at_bench_scale() {
    for w in all() {
        let p = dse_lang::compile_to_ast(w.source).unwrap();
        let c = dse_ir::lower_program(&p, &Default::default()).unwrap();
        let cfg: VmConfig = w.vm_config(Scale::Bench);
        let mut vm = Vm::new(c, cfg).unwrap();
        let report = vm.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(!vm.outputs_int().is_empty(), "{}", w.name);
        assert!(
            report.counters.work > 1_000_000,
            "{}: bench scale should be substantial, got {}",
            w.name,
            report.counters.work
        );
    }
}
