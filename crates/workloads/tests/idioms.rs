//! Checks that each workload model actually exercises the privatization
//! idiom DESIGN.md claims for it — the profile must show the
//! paper-relevant structure, not just produce correct output.

use dse_core::{Analysis, OptLevel};
use dse_depprof::DepKind;
use dse_workloads::{by_name, Scale};

fn analysis(name: &str) -> Analysis {
    let w = by_name(name).unwrap();
    Analysis::from_source(w.source, w.vm_config(Scale::Profile)).unwrap()
}

/// dijkstra: linked-list queue nodes and annotation arrays are heap
/// structures with carried anti/output but no carried flow.
#[test]
fn dijkstra_rebuilds_heap_structures() {
    let a = analysis("dijkstra");
    let ddg = a.profile.by_label("main_loop").unwrap();
    let heap_sites: Vec<_> = ddg
        .site_regions
        .iter()
        .filter(|(_, r)| r.heap)
        .map(|(s, _)| *s)
        .collect();
    assert!(heap_sites.len() > 10, "queue + dist + visited traffic");
    let plan = a.plan(OptLevel::Full, 4).unwrap();
    assert!(
        plan.expanded.len() >= 4,
        "queue nodes, dist, visited must expand: {:?}",
        plan.expanded
    );
    // The struct Node pointer type must be promoted (list links carry
    // pointers into expanded heap chunks of varying provenance).
    assert!(!plan.fat_types.is_empty());
}

/// md5: the global block buffer X is the expanded structure (Table 1's
/// global rule), and the digest scalars are classic scalar expansion.
#[test]
fn md5_expands_the_global_block_buffer() {
    let a = analysis("md5");
    let t = a.transform(OptLevel::Full, 4).unwrap();
    assert_eq!(t.report.expanded_globals, 1, "X[16]");
    assert!(t.report.expanded_scalar_locals >= 4, "a, b, c, d at least");
    assert_eq!(t.report.fat_pointer_types, 0, "no pointers need spans");
}

/// bzip2: the recast work array produces cross-width dependences and the
/// realloc'd pointer must be span-promoted.
#[test]
fn bzip2_recast_and_realloc() {
    let a = analysis("bzip2");
    let ddg = a.profile.by_label("compress_blocks").unwrap();
    // Sites of different widths touching the same allocation: the short
    // view and the int writes.
    let mut widths = std::collections::HashSet::new();
    for (site, allocs) in &ddg.site_allocs {
        if !allocs.is_empty() {
            widths.insert(a.serial.sites.info(*site).width);
        }
    }
    assert!(widths.contains(&2) && widths.contains(&4), "{widths:?}");
    let plan = a.plan(OptLevel::Full, 4).unwrap();
    assert!(
        !plan.fat_types.is_empty(),
        "zptr is realloc'd: dynamic spans required"
    );
}

/// hmmer: the DP matrix pointer has carried flow (the realloc chain) while
/// its contents stay expandable — the paper's Figure 3 situation.
#[test]
fn hmmer_pointer_carried_contents_private() {
    let a = analysis("hmmer");
    let ddg = a.profile.by_label("seq_loop").unwrap();
    let cls = a.classification("seq_loop").unwrap();
    let carried_flow = ddg.sites_in_carried(&[DepKind::Flow]);
    assert!(!carried_flow.is_empty(), "mx pointer + score accumulate");
    // Expandable accesses dominate the dynamic count (Figure 8's bar).
    let b = cls.access_breakdown(ddg);
    let (_, e, _) = b.fractions();
    assert!(e > 0.3, "DP matrix traffic should be expandable: {e}");
}

/// lbm: grids stay shared (disjoint writes, downward-exposed), only the
/// small distribution scratch expands — hence only ~1-2 structures.
#[test]
fn lbm_grids_stay_shared() {
    let a = analysis("lbm");
    let t = a.transform(OptLevel::Full, 4).unwrap();
    assert!(t.report.privatized_structures() <= 2, "{:?}", t.report);
    assert_eq!(t.report.expanded_allocs, 0, "src/dst grids must not expand");
}

/// mpeg2enc: the macroblock copy is a local array (Table 1's local array
/// rule) and the loop is DOALL at level 3.
#[test]
fn mpeg2enc_local_array_scratch() {
    let a = analysis("mpeg2enc");
    let t = a.transform(OptLevel::Full, 4).unwrap();
    assert!(t.report.expanded_locals >= 1, "blk[256]");
    assert_eq!(t.report.expanded_allocs, 0, "frames stay shared");
}
