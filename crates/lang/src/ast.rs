//! Abstract syntax tree for Cee.
//!
//! The parser produces an untyped tree; [`crate::sema`] decorates it in
//! place: every [`Expr`] gets a resolved [`Type`], every variable reference
//! gets a [`VarBinding`], and every declaration a slot index. Lowering in
//! `dse-ir` consumes the decorated tree.

use crate::source::SourceSpan;
use crate::types::{Type, TypeTable};

/// Binding of a name to a storage slot, resolved by semantic analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarBinding {
    /// Index into [`Program::globals`].
    Global(usize),
    /// Index into the enclosing function's [`Function::locals`]
    /// (parameters occupy the first slots).
    Local(usize),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Bitwise complement `~x`.
    BitNot,
    /// Logical not `!x`.
    Not,
}

/// Binary operators (assignment and member/index are separate nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    /// Short-circuit `&&`.
    LogAnd,
    /// Short-circuit `||`.
    LogOr,
}

impl BinOp {
    /// True for `< > <= >= == !=` and the logical connectives — operators
    /// whose result is an `int` truth value.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::LogAnd
                | BinOp::LogOr
        )
    }
}

/// Compound-assignment operator carried by [`ExprKind::Assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// Plain `=`.
    Set,
    /// `op=` for the given arithmetic/bitwise operator.
    Compound(BinOp),
}

/// Sentinel [`Expr::eid`] meaning "not numbered" (synthetic nodes made by
/// transformations after [`number_exprs`] ran keep this value).
pub const NO_EID: u32 = u32::MAX;

/// Expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source location.
    pub span: SourceSpan,
    /// Resolved type; `None` until sema runs. Array-typed expressions keep
    /// their array type here; consumers apply decay where C does.
    pub ty: Option<Type>,
    /// Stable unique id assigned by [`number_exprs`] after sema; used to key
    /// memory-access sites across profiling and transformation.
    pub eid: u32,
}

impl Expr {
    /// Creates an untyped expression node.
    pub fn new(kind: ExprKind, span: SourceSpan) -> Self {
        Expr {
            kind,
            span,
            ty: None,
            eid: NO_EID,
        }
    }

    /// Creates a synthetic, already-typed node (used by transformations).
    pub fn typed(kind: ExprKind, ty: Type) -> Self {
        Expr {
            kind,
            span: SourceSpan::default(),
            ty: Some(ty),
            eid: NO_EID,
        }
    }

    /// The resolved type after sema.
    ///
    /// # Panics
    ///
    /// Panics if called before semantic analysis.
    pub fn ty(&self) -> &Type {
        self.ty.as_ref().expect("expression not yet typed by sema")
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (char literals are folded here too).
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference; `binding` is filled by sema.
    Var {
        name: String,
        binding: Option<VarBinding>,
    },
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment `lhs = rhs` or `lhs op= rhs`; value is the stored value.
    Assign {
        op: AssignOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Conditional `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call { name: String, args: Vec<Expr> },
    /// Array/pointer indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Struct member access `base.field`; `p->f` parses as `(*p).f`.
    Field { base: Box<Expr>, field: String },
    /// Pointer dereference `*p`.
    Deref(Box<Expr>),
    /// Address-of `&lvalue`.
    AddrOf(Box<Expr>),
    /// Explicit cast `(T)e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(T)`.
    SizeofType(Type),
    /// `sizeof expr` (type-of-expression, operand not evaluated).
    SizeofExpr(Box<Expr>),
    /// `++x`, `x++`, `--x`, `x--`.
    IncDec {
        /// True for prefix forms.
        pre: bool,
        /// True for increment, false for decrement.
        inc: bool,
        /// The lvalue operand.
        target: Box<Expr>,
    },
}

/// Marks attached to a loop via `#pragma`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopMark {
    /// Set by `#pragma candidate [...]` — the loop is a parallelization
    /// candidate (the paper's "promising loop").
    pub candidate: bool,
    /// Optional label given after `candidate`, used to refer to the loop
    /// from the harness (e.g. `#pragma candidate main_loop`).
    pub label: Option<String>,
}

/// Statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Source location.
    pub span: SourceSpan,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local variable declaration; `slot` is assigned by sema.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
        slot: Option<usize>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then [else els]`.
    If {
        cond: Expr,
        then: Block,
        els: Option<Block>,
    },
    /// `while (cond) body`.
    While {
        cond: Expr,
        body: Block,
        mark: LoopMark,
    },
    /// `do body while (cond);`.
    DoWhile {
        body: Block,
        cond: Expr,
        mark: LoopMark,
    },
    /// `for (init; cond; step) body`. `init` may be a declaration.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
        mark: LoopMark,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return [e];`
    Return(Option<Expr>),
    /// Nested block scope.
    Block(Block),
}

impl StmtKind {
    /// Returns the loop mark if this statement is a loop.
    pub fn loop_mark(&self) -> Option<&LoopMark> {
        match self {
            StmtKind::While { mark, .. }
            | StmtKind::DoWhile { mark, .. }
            | StmtKind::For { mark, .. } => Some(mark),
            _ => None,
        }
    }
}

/// A `{ ... }` sequence of statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (arrays decay to pointers at sema time).
    pub ty: Type,
    /// Source location.
    pub span: SourceSpan,
}

/// A local variable slot, collected by sema (parameters first).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalVar {
    /// Source name (may repeat across sibling scopes; slots are unique).
    pub name: String,
    /// Variable type.
    pub ty: Type,
    /// True if this slot is a parameter.
    pub is_param: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Block,
    /// All local slots, populated by sema; params occupy `0..params.len()`.
    pub locals: Vec<LocalVar>,
    /// Source location of the header.
    pub span: SourceSpan,
}

/// Constant initializer for globals.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstInit {
    /// Scalar integer value.
    Int(i64),
    /// Scalar float value.
    Float(f64),
    /// Brace-enclosed list for arrays; shorter lists zero-fill the rest.
    List(Vec<ConstInit>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Global name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional constant initializer (zero-initialized otherwise).
    pub init: Option<ConstInit>,
    /// Source location.
    pub span: SourceSpan,
}

/// A complete, possibly typed, Cee translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct layouts.
    pub types: TypeTable,
    /// Global variables in declaration order.
    pub globals: Vec<GlobalVar>,
    /// Function definitions in declaration order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<(usize, &GlobalVar)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
    }
}

/// Calls `f` on every expression in the statement, children before parents,
/// in deterministic program order.
pub fn visit_exprs_in_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                visit_exprs(e, f);
            }
        }
        StmtKind::Expr(e) => visit_exprs(e, f),
        StmtKind::If { cond, then, els } => {
            visit_exprs(cond, f);
            visit_exprs_in_block(then, f);
            if let Some(b) = els {
                visit_exprs_in_block(b, f);
            }
        }
        StmtKind::While { cond, body, .. } => {
            visit_exprs(cond, f);
            visit_exprs_in_block(body, f);
        }
        StmtKind::DoWhile { body, cond, .. } => {
            visit_exprs_in_block(body, f);
            visit_exprs(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(s) = init {
                visit_exprs_in_stmt(s, f);
            }
            if let Some(c) = cond {
                visit_exprs(c, f);
            }
            if let Some(s) = step {
                visit_exprs(s, f);
            }
            visit_exprs_in_block(body, f);
        }
        StmtKind::Return(Some(e)) => visit_exprs(e, f),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => visit_exprs_in_block(b, f),
    }
}

/// Calls `f` on every expression in the block (see [`visit_exprs_in_stmt`]).
pub fn visit_exprs_in_block(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for s in &mut block.stmts {
        visit_exprs_in_stmt(s, f);
    }
}

/// Calls `f` on every expression node under `e`, children first.
pub fn visit_exprs(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut e.kind {
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::Var { .. }
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary(_, a)
        | ExprKind::Deref(a)
        | ExprKind::AddrOf(a)
        | ExprKind::Cast(_, a)
        | ExprKind::SizeofExpr(a)
        | ExprKind::IncDec { target: a, .. } => visit_exprs(a, f),
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign { lhs: a, rhs: b, .. }
        | ExprKind::Index { base: a, index: b } => {
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        ExprKind::Cond(a, b, c) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
            visit_exprs(c, f);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        ExprKind::Field { base, .. } => visit_exprs(base, f),
    }
    f(e);
}

/// Assigns a unique [`Expr::eid`] to every expression in the program, in
/// deterministic order. Returns the number of ids assigned. Called once
/// after sema; synthetic nodes created later keep [`NO_EID`].
pub fn number_exprs(program: &mut Program) -> u32 {
    let mut next = 0u32;
    for f in &mut program.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            e.eid = next;
            next += 1;
        });
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpan;

    #[test]
    fn expr_ty_panics_before_sema() {
        let e = Expr::new(ExprKind::IntLit(1), SourceSpan::default());
        let r = std::panic::catch_unwind(|| {
            let _ = e.ty();
        });
        assert!(r.is_err());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::LogAnd.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Shl.is_comparison());
    }

    #[test]
    fn loop_mark_accessor() {
        let mark = LoopMark {
            candidate: true,
            label: Some("l".into()),
        };
        let s = StmtKind::While {
            cond: Expr::new(ExprKind::IntLit(1), SourceSpan::default()),
            body: Block::default(),
            mark: mark.clone(),
        };
        assert_eq!(s.loop_mark(), Some(&mark));
        assert_eq!(StmtKind::Break.loop_mark(), None);
    }

    #[test]
    fn program_lookup_helpers() {
        let mut p = Program::default();
        p.globals.push(GlobalVar {
            name: "g".into(),
            ty: crate::types::Type::Int,
            init: None,
            span: SourceSpan::default(),
        });
        assert!(p.global("g").is_some());
        assert!(p.global("h").is_none());
        assert!(p.function("main").is_none());
    }
}
