//! The Cee type system: primitive types, pointers, arrays and structs with
//! C layout rules (natural alignment, field offsets, trailing padding).
//!
//! Byte sizes follow the paper's C model: `char` = 1, `short` = 2, `int` = 4,
//! `long` = 8, pointers = 8. `float` is stored as an IEEE `f64` in 8 bytes —
//! Cee has a single floating type, spelled `float` for C-likeness.

use std::fmt;

/// Index of a struct definition inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct#{}", self.0)
    }
}

/// A Cee type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a function return type or behind a pointer.
    Void,
    /// 1-byte signed integer.
    Char,
    /// 2-byte signed integer.
    Short,
    /// 4-byte signed integer.
    Int,
    /// 8-byte signed integer.
    Long,
    /// Floating point, stored as IEEE f64 in 8 bytes.
    Float,
    /// Pointer to a pointee type.
    Pointer(Box<Type>),
    /// Fixed-length array.
    Array(Box<Type>, u64),
    /// Named struct type; layout lives in the [`TypeTable`].
    Struct(StructId),
}

impl Type {
    /// Convenience constructor for a pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Pointer(Box::new(self))
    }

    /// Convenience constructor for an array of `n` elements of `self`.
    pub fn array_of(self, n: u64) -> Type {
        Type::Array(Box::new(self), n)
    }

    /// True for `char`/`short`/`int`/`long`.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Char | Type::Short | Type::Int | Type::Long)
    }

    /// True for the floating type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float)
    }

    /// True for integers and floats.
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_))
    }

    /// True for integers and pointers — types usable in conditions and
    /// pointer arithmetic.
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || self.is_pointer()
    }

    /// True for struct and array types.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Type::Struct(_) | Type::Array(..))
    }

    /// The pointee of a pointer type, or the element of an array type
    /// (arrays decay in expression contexts).
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Pointer(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Strips one level of array, yielding the decayed pointer type.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Pointer(elem.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::Short => write!(f, "short"),
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Pointer(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(id) => write!(f, "{id}"),
        }
    }
}

/// One field of a struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset from the start of the struct (filled in by layout).
    pub offset: u64,
}

/// A struct definition with computed layout.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Source name of the struct.
    pub name: String,
    /// Fields in declaration order, with offsets.
    pub fields: Vec<Field>,
    /// Total size in bytes including trailing padding.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

impl StructDef {
    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Registry of struct definitions; owns all layout information.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeTable {
    structs: Vec<StructDef>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a struct id before its fields are known, so the body can
    /// contain pointers to the struct itself (`struct Node *next`).
    /// Complete it with [`TypeTable::complete_struct`].
    pub fn declare_struct(&mut self, name: impl Into<String>) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(StructDef {
            name: name.into(),
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        id
    }

    /// Fills in the fields of a struct reserved by
    /// [`TypeTable::declare_struct`] and computes its layout.
    ///
    /// Returns `Err` with the offending field name if a field contains the
    /// struct itself *by value* (directly or through nested structs/arrays),
    /// which would make the type infinitely large.
    pub fn complete_struct(
        &mut self,
        id: StructId,
        fields: Vec<(String, Type)>,
    ) -> Result<(), String> {
        for (fname, fty) in &fields {
            if self.type_embeds_struct(fty, id) {
                return Err(fname.clone());
            }
        }
        let mut laid = Vec::with_capacity(fields.len());
        let mut offset = 0u64;
        let mut align = 1u64;
        for (fname, fty) in fields {
            let fa = self.align_of(&fty);
            let fs = self.size_of(&fty);
            offset = round_up(offset, fa);
            laid.push(Field {
                name: fname,
                ty: fty,
                offset,
            });
            offset += fs;
            align = align.max(fa);
        }
        let size = round_up(offset.max(1), align);
        let def = &mut self.structs[id.0 as usize];
        def.fields = laid;
        def.size = size;
        def.align = align;
        Ok(())
    }

    /// True if `ty` contains `target` by value (not behind a pointer).
    fn type_embeds_struct(&self, ty: &Type, target: StructId) -> bool {
        match ty {
            Type::Struct(id) if *id == target => true,
            Type::Struct(id) => self
                .struct_def(*id)
                .fields
                .iter()
                .any(|f| self.type_embeds_struct(&f.ty, target)),
            Type::Array(elem, _) => self.type_embeds_struct(elem, target),
            _ => false,
        }
    }

    /// Registers a struct with the given fields, computing its C layout.
    /// Use [`TypeTable::declare_struct`] + [`TypeTable::complete_struct`]
    /// for self-referential structs.
    ///
    /// # Panics
    ///
    /// Panics if a field embeds the struct by value (impossible here since
    /// the id is fresh) or any field type is unsized, which the parser
    /// rules out.
    pub fn define_struct(
        &mut self,
        name: impl Into<String>,
        fields: Vec<(String, Type)>,
    ) -> StructId {
        let id = self.declare_struct(name);
        self.complete_struct(id, fields)
            .expect("fresh struct cannot embed itself");
        id
    }

    /// Looks up a struct definition.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Finds a struct by source name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// All registered structs in definition order.
    pub fn structs(&self) -> &[StructDef] {
        &self.structs
    }

    /// Size of a type in bytes.
    ///
    /// # Panics
    ///
    /// Panics on `void`, which has no size.
    pub fn size_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Void => panic!("void has no size"),
            Type::Char => 1,
            Type::Short => 2,
            Type::Int => 4,
            Type::Long | Type::Float | Type::Pointer(_) => 8,
            Type::Array(elem, n) => self.size_of(elem) * n,
            Type::Struct(id) => self.struct_def(*id).size,
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, ty: &Type) -> u64 {
        match ty {
            Type::Void => 1,
            Type::Char => 1,
            Type::Short => 2,
            Type::Int => 4,
            Type::Long | Type::Float | Type::Pointer(_) => 8,
            Type::Array(elem, _) => self.align_of(elem),
            Type::Struct(id) => self.struct_def(*id).align,
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (which must be a power of
/// two or any positive integer — we use the generic formula).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes_match_c_model() {
        let tt = TypeTable::new();
        assert_eq!(tt.size_of(&Type::Char), 1);
        assert_eq!(tt.size_of(&Type::Short), 2);
        assert_eq!(tt.size_of(&Type::Int), 4);
        assert_eq!(tt.size_of(&Type::Long), 8);
        assert_eq!(tt.size_of(&Type::Float), 8);
        assert_eq!(tt.size_of(&Type::Int.ptr_to()), 8);
    }

    #[test]
    fn array_size_is_elem_times_len() {
        let tt = TypeTable::new();
        assert_eq!(tt.size_of(&Type::Int.array_of(10)), 40);
        assert_eq!(tt.size_of(&Type::Char.array_of(3).array_of(2)), 6);
    }

    #[test]
    fn struct_layout_inserts_padding() {
        let mut tt = TypeTable::new();
        // struct { char c; int i; } -> c@0, i@4, size 8, align 4
        let id = tt.define_struct("S", vec![("c".into(), Type::Char), ("i".into(), Type::Int)]);
        let s = tt.struct_def(id);
        assert_eq!(s.field("c").unwrap().offset, 0);
        assert_eq!(s.field("i").unwrap().offset, 4);
        assert_eq!(s.size, 8);
        assert_eq!(s.align, 4);
    }

    #[test]
    fn struct_trailing_padding() {
        let mut tt = TypeTable::new();
        // struct { long l; char c; } -> size 16 (rounded to align 8)
        let id = tt.define_struct(
            "S",
            vec![("l".into(), Type::Long), ("c".into(), Type::Char)],
        );
        assert_eq!(tt.struct_def(id).size, 16);
    }

    #[test]
    fn nested_struct_layout() {
        let mut tt = TypeTable::new();
        let inner = tt.define_struct(
            "In",
            vec![("a".into(), Type::Short), ("b".into(), Type::Long)],
        );
        assert_eq!(tt.struct_def(inner).size, 16);
        let outer = tt.define_struct(
            "Out",
            vec![("c".into(), Type::Char), ("s".into(), Type::Struct(inner))],
        );
        let o = tt.struct_def(outer);
        assert_eq!(o.field("s").unwrap().offset, 8);
        assert_eq!(o.size, 24);
    }

    #[test]
    fn empty_struct_has_nonzero_size() {
        let mut tt = TypeTable::new();
        let id = tt.define_struct("E", vec![]);
        assert_eq!(tt.struct_def(id).size, 1);
    }

    #[test]
    fn array_decays_to_pointer() {
        let arr = Type::Int.array_of(5);
        assert_eq!(arr.decayed(), Type::Int.ptr_to());
        assert_eq!(Type::Int.decayed(), Type::Int);
    }

    #[test]
    fn pointee_of_pointer_and_array() {
        assert_eq!(Type::Int.ptr_to().pointee(), Some(&Type::Int));
        assert_eq!(Type::Int.array_of(4).pointee(), Some(&Type::Int));
        assert_eq!(Type::Int.pointee(), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(Type::Char.is_integer());
        assert!(!Type::Float.is_integer());
        assert!(Type::Float.is_arithmetic());
        assert!(Type::Int.ptr_to().is_scalar());
        assert!(!Type::Int.array_of(2).is_scalar());
        assert!(Type::Int.array_of(2).is_aggregate());
    }

    #[test]
    fn struct_lookup_by_name() {
        let mut tt = TypeTable::new();
        let id = tt.define_struct("Node", vec![("v".into(), Type::Int)]);
        assert_eq!(tt.struct_by_name("Node"), Some(id));
        assert_eq!(tt.struct_by_name("Missing"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Int.ptr_to().to_string(), "int*");
        assert_eq!(Type::Int.array_of(3).to_string(), "int[3]");
    }

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }
}
