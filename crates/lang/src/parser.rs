//! Recursive-descent parser for Cee.
//!
//! The grammar is a C subset: struct definitions, global variables with
//! constant initializers, function definitions, and the full C expression
//! precedence ladder (assignment, `?:`, logical, bitwise, equality,
//! relational, shift, additive, multiplicative, unary, postfix).
//!
//! `#pragma candidate [label]` must appear immediately before a loop
//! statement and is attached to it as a [`LoopMark`].

use crate::ast::*;
use crate::error::LangError;
use crate::source::SourceSpan;
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::{Type, TypeTable};

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into an
/// untyped [`Program`]. Struct layouts are computed eagerly as definitions
/// are seen, so later declarations can use `sizeof`.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Program, LangError> {
    let mut p = Parser {
        tokens,
        idx: 0,
        program: Program::default(),
    };
    p.parse_program()?;
    Ok(p.program)
}

struct Parser<'a> {
    tokens: &'a [Token],
    idx: usize,
    program: Program,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.idx + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> SourceSpan {
        self.tokens[self.idx].span
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.idx];
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::parse(self.span(), msg)
    }

    fn eat_punct(&mut self, p: Punct) -> Result<SourceSpan, LangError> {
        if self.peek() == &TokenKind::Punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{}`, found {}", p.as_str(), self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> Result<SourceSpan, LangError> {
        if self.peek() == &TokenKind::Keyword(k) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{}`, found {}", k.as_str(), self.peek())))
        }
    }

    fn try_punct(&mut self, p: Punct) -> bool {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<(String, SourceSpan), LangError> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            let span = self.bump().span;
            Ok((s, span))
        } else {
            Err(self.err(format!("expected identifier, found {}", self.peek())))
        }
    }

    // ---- top level -----------------------------------------------------

    fn parse_program(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(()),
                TokenKind::Keyword(Keyword::Struct)
                    if self.peek_at(2) == &TokenKind::Punct(Punct::LBrace) =>
                {
                    self.parse_struct_def()?;
                }
                _ => self.parse_global_or_function()?,
            }
        }
    }

    fn parse_struct_def(&mut self) -> Result<(), LangError> {
        self.eat_keyword(Keyword::Struct)?;
        let (name, span) = self.eat_ident()?;
        if self.program.types.struct_by_name(&name).is_some() {
            return Err(LangError::parse(span, format!("struct `{name}` redefined")));
        }
        self.eat_punct(Punct::LBrace)?;
        // Pre-declare so the body may contain `struct Name *` self-pointers.
        let id = self.program.types.declare_struct(name.clone());
        let mut fields = Vec::new();
        while !self.try_punct(Punct::RBrace) {
            let base = self.parse_base_type()?;
            loop {
                let (fname, fty) = self.parse_declarator(base.clone())?;
                if fields.iter().any(|(n, _): &(String, Type)| n == &fname) {
                    return Err(self.err(format!("duplicate field `{fname}`")));
                }
                fields.push((fname, fty));
                if !self.try_punct(Punct::Comma) {
                    break;
                }
            }
            self.eat_punct(Punct::Semi)?;
        }
        self.eat_punct(Punct::Semi)?;
        self.program
            .types
            .complete_struct(id, fields)
            .map_err(|f| {
                LangError::parse(
                    span,
                    format!("field `{f}` embeds struct `{name}` by value (infinite size)"),
                )
            })?;
        Ok(())
    }

    fn parse_global_or_function(&mut self) -> Result<(), LangError> {
        let base = self.parse_base_type()?;
        let start = self.span();
        let mut ty = base.clone();
        while self.try_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        let (name, nspan) = self.eat_ident()?;
        if self.peek() == &TokenKind::Punct(Punct::LParen) {
            self.parse_function(ty, name, start)?;
        } else {
            // Array suffixes, optional initializer.
            let ty = self.parse_array_suffix(ty)?;
            let init = if self.try_punct(Punct::Assign) {
                Some(self.parse_const_init()?)
            } else {
                None
            };
            self.eat_punct(Punct::Semi)?;
            if self.program.global(&name).is_some() {
                return Err(LangError::parse(
                    nspan,
                    format!("global `{name}` redefined"),
                ));
            }
            self.program.globals.push(GlobalVar {
                name,
                ty,
                init,
                span: nspan,
            });
        }
        Ok(())
    }

    fn parse_function(
        &mut self,
        ret_ty: Type,
        name: String,
        span: SourceSpan,
    ) -> Result<(), LangError> {
        self.eat_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.try_punct(Punct::RParen) {
            if self.peek() == &TokenKind::Keyword(Keyword::Void)
                && self.peek_at(1) == &TokenKind::Punct(Punct::RParen)
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    let base = self.parse_base_type()?;
                    let (pname, pty) = self.parse_declarator(base)?;
                    let pspan = self.span();
                    // Parameters of array type decay to pointers, as in C.
                    params.push(Param {
                        name: pname,
                        ty: pty.decayed(),
                        span: pspan,
                    });
                    if !self.try_punct(Punct::Comma) {
                        break;
                    }
                }
                self.eat_punct(Punct::RParen)?;
            }
        }
        if self.program.function(&name).is_some() {
            return Err(LangError::parse(
                span,
                format!("function `{name}` redefined"),
            ));
        }
        let body = self.parse_block()?;
        self.program.functions.push(Function {
            name,
            ret_ty,
            params,
            body,
            locals: Vec::new(),
            span,
        });
        Ok(())
    }

    // ---- types ----------------------------------------------------------

    fn parse_base_type(&mut self) -> Result<Type, LangError> {
        let t = match self.peek().clone() {
            TokenKind::Keyword(Keyword::Char) => Type::Char,
            TokenKind::Keyword(Keyword::Short) => Type::Short,
            TokenKind::Keyword(Keyword::Int) => Type::Int,
            TokenKind::Keyword(Keyword::Long) => Type::Long,
            TokenKind::Keyword(Keyword::Float) => Type::Float,
            TokenKind::Keyword(Keyword::Void) => Type::Void,
            TokenKind::Keyword(Keyword::Struct) => {
                self.bump();
                let (name, span) = self.eat_ident()?;
                let id =
                    self.program.types.struct_by_name(&name).ok_or_else(|| {
                        LangError::parse(span, format!("unknown struct `{name}`"))
                    })?;
                return Ok(Type::Struct(id));
            }
            other => return Err(self.err(format!("expected type, found {other}"))),
        };
        self.bump();
        Ok(t)
    }

    /// Parses `*... name [n]...` given an already-parsed base type.
    fn parse_declarator(&mut self, base: Type) -> Result<(String, Type), LangError> {
        let mut ty = base;
        while self.try_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        let (name, _) = self.eat_ident()?;
        let ty = self.parse_array_suffix(ty)?;
        Ok((name, ty))
    }

    fn parse_array_suffix(&mut self, elem: Type) -> Result<Type, LangError> {
        let mut dims = Vec::new();
        while self.try_punct(Punct::LBracket) {
            let n = match self.peek().clone() {
                TokenKind::IntLit(v) if v > 0 => {
                    self.bump();
                    v as u64
                }
                _ => return Err(self.err("array length must be a positive integer literal")),
            };
            self.eat_punct(Punct::RBracket)?;
            dims.push(n);
        }
        let mut ty = elem;
        for n in dims.into_iter().rev() {
            ty = ty.array_of(n);
        }
        Ok(ty)
    }

    /// Is the token sequence starting at `(` a cast's type name?
    fn lparen_starts_type(&self) -> bool {
        matches!(
            self.peek_at(1),
            TokenKind::Keyword(
                Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Void
                    | Keyword::Struct
            )
        )
    }

    /// Parses a type name for casts/sizeof: base type plus `*` suffixes.
    fn parse_type_name(&mut self) -> Result<Type, LangError> {
        let mut ty = self.parse_base_type()?;
        while self.try_punct(Punct::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    // ---- constant initializers ------------------------------------------

    fn parse_const_init(&mut self) -> Result<ConstInit, LangError> {
        if self.try_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if !self.try_punct(Punct::RBrace) {
                loop {
                    items.push(self.parse_const_init()?);
                    if !self.try_punct(Punct::Comma) {
                        break;
                    }
                    // Allow trailing comma before `}`.
                    if self.peek() == &TokenKind::Punct(Punct::RBrace) {
                        break;
                    }
                }
                self.eat_punct(Punct::RBrace)?;
            }
            return Ok(ConstInit::List(items));
        }
        let neg = self.try_punct(Punct::Minus);
        match self.peek().clone() {
            TokenKind::IntLit(v) | TokenKind::CharLit(v) => {
                self.bump();
                Ok(ConstInit::Int(if neg { -v } else { v }))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(ConstInit::Float(if neg { -v } else { v }))
            }
            other => Err(self.err(format!("expected constant initializer, found {other}"))),
        }
    }

    // ---- statements -----------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, LangError> {
        self.eat_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.try_punct(Punct::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        // Pragma: must precede a loop.
        if let TokenKind::PragmaDirective(words) = self.peek().clone() {
            self.bump();
            if words[0] != "candidate" {
                return Err(LangError::parse(
                    span,
                    format!("unknown pragma `{}`", words[0]),
                ));
            }
            let mark = LoopMark {
                candidate: true,
                label: words.get(1).cloned(),
            };
            let mut stmt = self.parse_stmt()?;
            match &mut stmt.kind {
                StmtKind::While { mark: m, .. }
                | StmtKind::DoWhile { mark: m, .. }
                | StmtKind::For { mark: m, .. } => *m = mark,
                _ => {
                    return Err(LangError::parse(
                        span,
                        "#pragma candidate must precede a loop",
                    ))
                }
            }
            return Ok(stmt);
        }
        match self.peek().clone() {
            TokenKind::Keyword(
                Keyword::Char
                | Keyword::Short
                | Keyword::Int
                | Keyword::Long
                | Keyword::Float
                | Keyword::Struct,
            ) => self.parse_decl_stmt(),
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.eat_punct(Punct::RParen)?;
                let then = self.parse_stmt_as_block()?;
                let els = if self.peek() == &TokenKind::Keyword(Keyword::Else) {
                    self.bump();
                    Some(self.parse_stmt_as_block()?)
                } else {
                    None
                };
                Ok(Stmt {
                    kind: StmtKind::If { cond, then, els },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.eat_punct(Punct::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt {
                    kind: StmtKind::While {
                        cond,
                        body,
                        mark: LoopMark::default(),
                    },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.parse_stmt_as_block()?;
                self.eat_keyword(Keyword::While)?;
                self.eat_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::DoWhile {
                        body,
                        cond,
                        mark: LoopMark::default(),
                    },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let init = if self.try_punct(Punct::Semi) {
                    None
                } else {
                    let s = match self.peek() {
                        TokenKind::Keyword(
                            Keyword::Char
                            | Keyword::Short
                            | Keyword::Int
                            | Keyword::Long
                            | Keyword::Float
                            | Keyword::Struct,
                        ) => self.parse_decl_stmt()?,
                        _ => {
                            let e = self.parse_expr()?;
                            self.eat_punct(Punct::Semi)?;
                            Stmt {
                                kind: StmtKind::Expr(e),
                                span,
                            }
                        }
                    };
                    Some(Box::new(s))
                };
                let cond = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.eat_punct(Punct::Semi)?;
                let step = if self.peek() == &TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.eat_punct(Punct::RParen)?;
                let body = self.parse_stmt_as_block()?;
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                        mark: LoopMark::default(),
                    },
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span,
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let e = if self.peek() == &TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(e),
                    span,
                })
            }
            TokenKind::Punct(Punct::LBrace) => {
                let b = self.parse_block()?;
                Ok(Stmt {
                    kind: StmtKind::Block(b),
                    span,
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt {
                    kind: StmtKind::Block(Block::default()),
                    span,
                })
            }
            _ => {
                let e = self.parse_expr()?;
                self.eat_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Expr(e),
                    span,
                })
            }
        }
    }

    /// Wraps a single statement in a block unless it already is one, so the
    /// AST always has `Block` bodies for control flow.
    fn parse_stmt_as_block(&mut self) -> Result<Block, LangError> {
        if self.peek() == &TokenKind::Punct(Punct::LBrace) {
            self.parse_block()
        } else {
            let s = self.parse_stmt()?;
            Ok(Block { stmts: vec![s] })
        }
    }

    fn parse_decl_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let base = self.parse_base_type()?;
        let (name, ty) = self.parse_declarator(base)?;
        let init = if self.try_punct(Punct::Assign) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.eat_punct(Punct::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Decl {
                name,
                ty,
                init,
                slot: None,
            },
            span,
        })
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, LangError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, LangError> {
        let lhs = self.parse_cond()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => AssignOp::Set,
            TokenKind::Punct(Punct::PlusAssign) => AssignOp::Compound(BinOp::Add),
            TokenKind::Punct(Punct::MinusAssign) => AssignOp::Compound(BinOp::Sub),
            TokenKind::Punct(Punct::StarAssign) => AssignOp::Compound(BinOp::Mul),
            TokenKind::Punct(Punct::SlashAssign) => AssignOp::Compound(BinOp::Div),
            TokenKind::Punct(Punct::PercentAssign) => AssignOp::Compound(BinOp::Rem),
            TokenKind::Punct(Punct::AmpAssign) => AssignOp::Compound(BinOp::And),
            TokenKind::Punct(Punct::PipeAssign) => AssignOp::Compound(BinOp::Or),
            TokenKind::Punct(Punct::CaretAssign) => AssignOp::Compound(BinOp::Xor),
            TokenKind::Punct(Punct::ShlAssign) => AssignOp::Compound(BinOp::Shl),
            TokenKind::Punct(Punct::ShrAssign) => AssignOp::Compound(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn parse_cond(&mut self) -> Result<Expr, LangError> {
        let c = self.parse_binary(0)?;
        if self.try_punct(Punct::Question) {
            let t = self.parse_expr()?;
            self.eat_punct(Punct::Colon)?;
            let e = self.parse_cond()?;
            let span = c.span.merge(e.span);
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(c), Box::new(t), Box::new(e)),
                span,
            ));
        }
        Ok(c)
    }

    /// Precedence-climbing over binary operators. Level 0 is `||`.
    fn parse_binary(&mut self, min_level: u8) -> Result<Expr, LangError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::Punct(Punct::PipePipe) => (BinOp::LogOr, 0),
                TokenKind::Punct(Punct::AmpAmp) => (BinOp::LogAnd, 1),
                TokenKind::Punct(Punct::Pipe) => (BinOp::Or, 2),
                TokenKind::Punct(Punct::Caret) => (BinOp::Xor, 3),
                TokenKind::Punct(Punct::Amp) => (BinOp::And, 4),
                TokenKind::Punct(Punct::EqEq) => (BinOp::Eq, 5),
                TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 5),
                TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 6),
                TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 6),
                TokenKind::Punct(Punct::Le) => (BinOp::Le, 6),
                TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 6),
                TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 7),
                TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 7),
                TokenKind::Punct(Punct::Plus) => (BinOp::Add, 8),
                TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 8),
                TokenKind::Punct(Punct::Star) => (BinOp::Mul, 9),
                TokenKind::Punct(Punct::Slash) => (BinOp::Div, 9),
                TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 9),
                _ => return Ok(lhs),
            };
            if level < min_level {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(e)), span))
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span))
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::Deref(Box::new(e)), span))
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::AddrOf(Box::new(e)), span))
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(
                    ExprKind::IncDec {
                        pre: true,
                        inc: true,
                        target: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(
                    ExprKind::IncDec {
                        pre: true,
                        inc: false,
                        target: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.peek() == &TokenKind::Punct(Punct::LParen) && self.lparen_starts_type() {
                    self.bump();
                    let ty = self.parse_type_name()?;
                    let end = self.eat_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::SizeofType(ty), span.merge(end)))
                } else {
                    let e = self.parse_unary()?;
                    let span = span.merge(e.span);
                    Ok(Expr::new(ExprKind::SizeofExpr(Box::new(e)), span))
                }
            }
            TokenKind::Punct(Punct::LParen) if self.lparen_starts_type() => {
                self.bump();
                let ty = self.parse_type_name()?;
                self.eat_punct(Punct::RParen)?;
                let e = self.parse_unary()?;
                let span = span.merge(e.span);
                Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), span))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.parse_primary()?;
        loop {
            let span = self.span();
            match self.peek().clone() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    let end = self.eat_punct(Punct::RBracket)?;
                    let span = e.span.merge(end);
                    e = Expr::new(
                        ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(idx),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, fspan) = self.eat_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr::new(
                        ExprKind::Field {
                            base: Box::new(e),
                            field,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, fspan) = self.eat_ident()?;
                    let span = e.span.merge(fspan);
                    // p->f desugars to (*p).f
                    let deref = Expr::new(ExprKind::Deref(Box::new(e)), span);
                    e = Expr::new(
                        ExprKind::Field {
                            base: Box::new(deref),
                            field,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let sp = e.span.merge(span);
                    e = Expr::new(
                        ExprKind::IncDec {
                            pre: false,
                            inc: true,
                            target: Box::new(e),
                        },
                        sp,
                    );
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let sp = e.span.merge(span);
                    e = Expr::new(
                        ExprKind::IncDec {
                            pre: false,
                            inc: false,
                            target: Box::new(e),
                        },
                        sp,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(v) | TokenKind::CharLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.try_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.try_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.try_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.eat_punct(Punct::RParen)?;
                    }
                    Ok(Expr::new(ExprKind::Call { name, args }, span))
                } else {
                    Ok(Expr::new(
                        ExprKind::Var {
                            name,
                            binding: None,
                        },
                        span,
                    ))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

/// Pretty-printer used by tests and debugging: renders a [`Type`] using the
/// struct names from `types`.
pub fn display_type(ty: &Type, types: &TypeTable) -> String {
    match ty {
        Type::Struct(id) => format!("struct {}", types.struct_def(*id).name),
        Type::Pointer(t) => format!("{}*", display_type(t, types)),
        Type::Array(t, n) => format!("{}[{n}]", display_type(t, types)),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> LangError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn parses_empty_function() {
        let p = parse_src("void f() {}");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "f");
        assert_eq!(p.functions[0].ret_ty, Type::Void);
    }

    #[test]
    fn parses_globals_with_initializers() {
        let p = parse_src("int g = 5; float pi = 3.5; int arr[4] = {1, 2};");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].init, Some(ConstInit::Int(5)));
        assert_eq!(p.globals[1].init, Some(ConstInit::Float(3.5)));
        assert_eq!(
            p.globals[2].init,
            Some(ConstInit::List(vec![ConstInit::Int(1), ConstInit::Int(2)]))
        );
    }

    #[test]
    fn parses_negative_const_init() {
        let p = parse_src("int g = -5;");
        assert_eq!(p.globals[0].init, Some(ConstInit::Int(-5)));
    }

    #[test]
    fn parses_struct_definition_with_layout() {
        let p = parse_src("struct Node { int v; struct Node *next; };");
        let id = p.types.struct_by_name("Node").unwrap();
        let def = p.types.struct_def(id);
        assert_eq!(def.fields.len(), 2);
        assert_eq!(def.field("next").unwrap().offset, 8);
        assert_eq!(def.size, 16);
    }

    #[test]
    fn struct_global_vs_struct_def_disambiguation() {
        let p = parse_src("struct S { int x; }; struct S g; void f() {}");
        assert_eq!(p.globals.len(), 1);
        assert!(matches!(p.globals[0].ty, Type::Struct(_)));
    }

    #[test]
    fn parses_pointer_declarators() {
        let p = parse_src("int **pp; void f(int *a, char **b) {}");
        assert_eq!(p.globals[0].ty, Type::Int.ptr_to().ptr_to());
        let f = p.function("f").unwrap();
        assert_eq!(f.params[0].ty, Type::Int.ptr_to());
        assert_eq!(f.params[1].ty, Type::Char.ptr_to().ptr_to());
    }

    #[test]
    fn array_param_decays() {
        let p = parse_src("void f(int a[8]) {}");
        assert_eq!(p.function("f").unwrap().params[0].ty, Type::Int.ptr_to());
    }

    #[test]
    fn parses_multidim_array() {
        let p = parse_src("int m[3][4];");
        assert_eq!(p.globals[0].ty, Type::Int.array_of(4).array_of(3));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("void f() { int x; x = 1 + 2 * 3; }");
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[1].kind else {
            panic!("expected expr stmt");
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Add, _, r) = &rhs.kind else {
            panic!("expected add at top")
        };
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse_src("void f() { int a; int b; a = b = 1; }");
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[2].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn arrow_desugars_to_deref_field() {
        let p = parse_src("struct N { int v; }; void f(struct N *p) { p->v = 1; }");
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Assign { lhs, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Field { base, field } = &lhs.kind else {
            panic!()
        };
        assert_eq!(field, "v");
        assert!(matches!(base.kind, ExprKind::Deref(_)));
    }

    #[test]
    fn cast_vs_parenthesized_expr() {
        let p = parse_src("void f(int x) { int y; y = (int)x; y = (x) + 1; }");
        let StmtKind::Expr(e1) = &p.functions[0].body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e1.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Cast(Type::Int, _)));
        let StmtKind::Expr(e2) = &p.functions[0].body.stmts[2].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e2.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn sizeof_type_and_expr() {
        let p = parse_src("void f(int *p) { long n; n = sizeof(int); n = sizeof *p; }");
        let StmtKind::Expr(e1) = &p.functions[0].body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e1.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::SizeofType(Type::Int)));
        let StmtKind::Expr(e2) = &p.functions[0].body.stmts[2].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e2.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::SizeofExpr(_)));
    }

    #[test]
    fn pragma_attaches_to_loop() {
        let p = parse_src("void f() { #pragma candidate outer\nfor (int i = 0; i < 4; i++) {} }");
        let StmtKind::For { mark, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(mark.candidate);
        assert_eq!(mark.label.as_deref(), Some("outer"));
    }

    #[test]
    fn pragma_on_while_and_do() {
        let p = parse_src(
            "void f() { #pragma candidate\nwhile (1) { break; } #pragma candidate\ndo { } while (0); }",
        );
        assert!(
            p.functions[0].body.stmts[0]
                .kind
                .loop_mark()
                .unwrap()
                .candidate
        );
        assert!(
            p.functions[0].body.stmts[1]
                .kind
                .loop_mark()
                .unwrap()
                .candidate
        );
    }

    #[test]
    fn pragma_on_non_loop_is_error() {
        let e = parse_err("void f() { #pragma candidate\nint x; }");
        assert!(e.message().contains("must precede a loop"));
    }

    #[test]
    fn ternary_parses() {
        let p = parse_src("int max(int a, int b) { return a > b ? a : b; }");
        let StmtKind::Return(Some(e)) = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Cond(..)));
    }

    #[test]
    fn compound_assignment_ops() {
        let p = parse_src("void f() { int x; x += 1; x <<= 2; x %= 3; }");
        for (i, want) in [(1, BinOp::Add), (2, BinOp::Shl), (3, BinOp::Rem)] {
            let StmtKind::Expr(e) = &p.functions[0].body.stmts[i].kind else {
                panic!()
            };
            let ExprKind::Assign { op, .. } = &e.kind else {
                panic!()
            };
            assert_eq!(*op, AssignOp::Compound(want));
        }
    }

    #[test]
    fn postfix_and_prefix_incdec() {
        let p = parse_src("void f() { int i; i++; ++i; i--; --i; }");
        let stmts = &p.functions[0].body.stmts;
        let get = |i: usize| {
            let StmtKind::Expr(e) = &stmts[i].kind else {
                panic!()
            };
            let ExprKind::IncDec { pre, inc, .. } = &e.kind else {
                panic!()
            };
            (*pre, *inc)
        };
        assert_eq!(get(1), (false, true));
        assert_eq!(get(2), (true, true));
        assert_eq!(get(3), (false, false));
        assert_eq!(get(4), (true, false));
    }

    #[test]
    fn for_without_init_cond_step() {
        let p = parse_src("void f() { for (;;) { break; } }");
        let StmtKind::For {
            init, cond, step, ..
        } = &p.functions[0].body.stmts[0].kind
        else {
            panic!()
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let p = parse_src("void f(int a, int b) { if (a) if (b) a = 1; else a = 2; }");
        let StmtKind::If { els, then, .. } = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(els.is_none());
        let StmtKind::If { els: inner_els, .. } = &then.stmts[0].kind else {
            panic!()
        };
        assert!(inner_els.is_some());
    }

    #[test]
    fn redefinitions_are_errors() {
        assert!(parse_err("int g; int g;").message().contains("redefined"));
        assert!(parse_err("void f() {} void f() {}")
            .message()
            .contains("redefined"));
        assert!(parse_err("struct S { int a; }; struct S { int b; };")
            .message()
            .contains("redefined"));
    }

    #[test]
    fn duplicate_field_is_error() {
        assert!(parse_err("struct S { int a; int a; };")
            .message()
            .contains("duplicate field"));
    }

    #[test]
    fn self_embedding_struct_is_error() {
        assert!(parse_err("struct S { int a; struct S s; };")
            .message()
            .contains("infinite size"));
        assert!(
            parse_err("struct A { int x; }; struct B { struct B inner[2]; };")
                .message()
                .contains("infinite size")
        );
    }

    #[test]
    fn unknown_struct_is_error() {
        assert!(parse_err("struct T *p;")
            .message()
            .contains("unknown struct"));
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse_err("void f() { int x }")
            .message()
            .contains("expected"));
    }

    #[test]
    fn zero_length_array_is_error() {
        assert!(parse_err("int a[0];")
            .message()
            .contains("positive integer"));
    }

    #[test]
    fn chained_calls_and_indexing() {
        let p = parse_src("int g(int x) { return x; } void f(int *a) { a[g(1)] = a[0] + 1; }");
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn shift_precedence_below_additive() {
        // 1 << 2 + 3 parses as 1 << (2+3)
        let p = parse_src("void f() { int x; x = 1 << 2 + 3; }");
        let StmtKind::Expr(e) = &p.functions[0].body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Binary(BinOp::Shl, _, r) = &rhs.kind else {
            panic!()
        };
        assert!(matches!(r.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn void_param_list() {
        let p = parse_src("int f(void) { return 0; }");
        assert!(p.functions[0].params.is_empty());
    }
}
