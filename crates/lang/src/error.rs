//! Frontend error type shared by the lexer, parser and semantic analyzer.

use crate::source::SourceSpan;
use std::error::Error;
use std::fmt;

/// The phase of the frontend that produced a [`LangError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Type checking and name resolution.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        f.write_str(s)
    }
}

/// An error produced while compiling Cee source to a typed AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    phase: Phase,
    span: SourceSpan,
    message: String,
}

impl LangError {
    /// Creates an error attributed to `phase` at `span`.
    pub fn new(phase: Phase, span: SourceSpan, message: impl Into<String>) -> Self {
        LangError {
            phase,
            span,
            message: message.into(),
        }
    }

    /// Convenience constructor for lexer errors.
    pub fn lex(span: SourceSpan, message: impl Into<String>) -> Self {
        Self::new(Phase::Lex, span, message)
    }

    /// Convenience constructor for parser errors.
    pub fn parse(span: SourceSpan, message: impl Into<String>) -> Self {
        Self::new(Phase::Parse, span, message)
    }

    /// Convenience constructor for semantic errors.
    pub fn sema(span: SourceSpan, message: impl Into<String>) -> Self {
        Self::new(Phase::Sema, span, message)
    }

    /// The phase that produced this error.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Where in the source the error was detected.
    pub fn span(&self) -> SourceSpan {
        self.span
    }

    /// Human-readable description without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{SourcePos, SourceSpan};

    #[test]
    fn display_includes_phase_and_location() {
        let e = LangError::parse(SourceSpan::at(SourcePos::new(3, 14)), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:14: expected `;`");
    }

    #[test]
    fn accessors_round_trip() {
        let span = SourceSpan::at(SourcePos::new(1, 2));
        let e = LangError::sema(span, "bad");
        assert_eq!(e.phase(), Phase::Sema);
        assert_eq!(e.span(), span);
        assert_eq!(e.message(), "bad");
    }
}
