//! Token definitions for the Cee lexer.

use crate::source::SourceSpan;
use std::fmt;

/// A reserved word of the Cee language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Char,
    Short,
    Int,
    Long,
    Float,
    Void,
    Struct,
    If,
    Else,
    While,
    Do,
    For,
    Break,
    Continue,
    Return,
    Sizeof,
    Pragma,
}

impl Keyword {
    /// Looks up the keyword named by `s`, if any. (Not the std `FromStr`
    /// trait: lookup failure is an expected `None`, not an error.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "char" => Keyword::Char,
            "short" => Keyword::Short,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "float" => Keyword::Float,
            "void" => Keyword::Void,
            "struct" => Keyword::Struct,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "return" => Keyword::Return,
            "sizeof" => Keyword::Sizeof,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Char => "char",
            Keyword::Short => "short",
            Keyword::Int => "int",
            Keyword::Long => "long",
            Keyword::Float => "float",
            Keyword::Void => "void",
            Keyword::Struct => "struct",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::For => "for",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Return => "return",
            Keyword::Sizeof => "sizeof",
            Keyword::Pragma => "#pragma",
        }
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
}

impl Punct {
    /// The source spelling of the punctuator.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
            Question => "?",
            Colon => ":",
        }
    }
}

/// The payload of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Reserved word.
    Keyword(Keyword),
    /// Identifier (variable, function, struct or field name).
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Character literal, already decoded to its numeric value.
    CharLit(i64),
    /// `#pragma <ident>` directive; the payload is the pragma body words.
    PragmaDirective(Vec<String>),
    /// Operator or punctuation.
    Punct(Punct),
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::CharLit(v) => write!(f, "char literal `{v}`"),
            TokenKind::PragmaDirective(ws) => write!(f, "#pragma {}", ws.join(" ")),
            TokenKind::Punct(p) => write!(f, "`{}`", p.as_str()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: SourceSpan,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Char,
            Keyword::Short,
            Keyword::Int,
            Keyword::Long,
            Keyword::Float,
            Keyword::Void,
            Keyword::Struct,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::Do,
            Keyword::For,
            Keyword::Break,
            Keyword::Continue,
            Keyword::Return,
            Keyword::Sizeof,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(Keyword::from_str("integer"), None);
        assert_eq!(Keyword::from_str(""), None);
    }

    #[test]
    fn token_kind_display_forms() {
        assert_eq!(TokenKind::Punct(Punct::Arrow).to_string(), "`->`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
