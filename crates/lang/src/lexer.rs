//! Hand-written lexer for Cee.
//!
//! Supports `//` and `/* */` comments, decimal / hexadecimal integer
//! literals, floating literals, character literals with the common escape
//! sequences, all C operators used by the grammar, and `#pragma` directives
//! (which become first-class tokens so the parser can attach them to loops).

use crate::error::LangError;
use crate::source::{SourcePos, SourceSpan};
use crate::token::{Keyword, Punct, Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    idx: usize,
    pos: SourcePos,
}

/// Tokenizes `source`, returning the token stream terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LangError`] on unterminated comments/char literals, malformed
/// numbers, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        idx: 0,
        pos: SourcePos::START,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let start = lx.pos;
        let Some(c) = lx.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                span: SourceSpan::at(start),
            });
            return Ok(out);
        };
        let kind = match c {
            b'#' => lx.lex_pragma()?,
            b'0'..=b'9' => lx.lex_number()?,
            b'\'' => lx.lex_char()?,
            c if c == b'_' || c.is_ascii_alphabetic() => lx.lex_ident(),
            _ => lx.lex_punct()?,
        };
        out.push(Token {
            kind,
            span: SourceSpan::new(start, lx.pos),
        });
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.idx += 1;
        if c == b'\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn error_here(&self, msg: impl Into<String>) -> LangError {
        LangError::lex(SourceSpan::at(self.pos), msg)
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LangError::lex(
                                    SourceSpan::at(open),
                                    "unterminated block comment",
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_pragma(&mut self) -> Result<TokenKind, LangError> {
        let line = self.pos.line;
        self.bump(); // '#'
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                word.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if word != "pragma" {
            return Err(self.error_here(format!("unknown directive `#{word}`")));
        }
        // Collect whitespace-separated words until end of line.
        let mut words = Vec::new();
        let mut cur = String::new();
        while let Some(c) = self.peek() {
            if self.pos.line != line || c == b'\n' {
                break;
            }
            if c.is_ascii_whitespace() {
                self.bump();
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            } else {
                cur.push(self.bump().unwrap() as char);
            }
        }
        if !cur.is_empty() {
            words.push(cur);
        }
        if words.is_empty() {
            return Err(self.error_here("empty #pragma"));
        }
        Ok(TokenKind::PragmaDirective(words))
    }

    fn lex_number(&mut self) -> Result<TokenKind, LangError> {
        let mut text = String::new();
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(self.bump().unwrap() as char);
                } else {
                    break;
                }
            }
            if text.is_empty() {
                return Err(self.error_here("hex literal needs at least one digit"));
            }
            // Parse as u64 so 0xFFFFFFFFFFFFFFFF round-trips through i64 bits.
            let v = u64::from_str_radix(&text, 16)
                .map_err(|_| self.error_here("hex literal out of range"))?;
            return Ok(TokenKind::IntLit(v as i64));
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(self.bump().unwrap() as char);
            } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap() as char);
            } else if (c == b'e' || c == b'E')
                && is_float
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == b'-' || d == b'+')
            {
                text.push(self.bump().unwrap() as char);
                text.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error_here("malformed float literal"))?;
            Ok(TokenKind::FloatLit(v))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error_here("integer literal out of range"))?;
            Ok(TokenKind::IntLit(v))
        }
    }

    fn lex_char(&mut self) -> Result<TokenKind, LangError> {
        self.bump(); // opening quote
        let v = match self.bump() {
            Some(b'\\') => match self.bump() {
                Some(b'n') => b'\n' as i64,
                Some(b't') => b'\t' as i64,
                Some(b'r') => b'\r' as i64,
                Some(b'0') => 0,
                Some(b'\\') => b'\\' as i64,
                Some(b'\'') => b'\'' as i64,
                _ => return Err(self.error_here("unknown escape in char literal")),
            },
            Some(c) => c as i64,
            None => return Err(self.error_here("unterminated char literal")),
        };
        if self.bump() != Some(b'\'') {
            return Err(self.error_here("char literal must be a single character"));
        }
        Ok(TokenKind::CharLit(v))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                s.push(self.bump().unwrap() as char);
            } else {
                break;
            }
        }
        match Keyword::from_str(&s) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(s),
        }
    }

    fn lex_punct(&mut self) -> Result<TokenKind, LangError> {
        use Punct::*;
        let c = self.bump().unwrap();
        let d = self.peek();
        let e = self.peek2();
        let p = match (c, d, e) {
            (b'<', Some(b'<'), Some(b'=')) => {
                self.bump();
                self.bump();
                ShlAssign
            }
            (b'>', Some(b'>'), Some(b'=')) => {
                self.bump();
                self.bump();
                ShrAssign
            }
            (b'-', Some(b'>'), _) => {
                self.bump();
                Arrow
            }
            (b'+', Some(b'+'), _) => {
                self.bump();
                PlusPlus
            }
            (b'-', Some(b'-'), _) => {
                self.bump();
                MinusMinus
            }
            (b'<', Some(b'<'), _) => {
                self.bump();
                Shl
            }
            (b'>', Some(b'>'), _) => {
                self.bump();
                Shr
            }
            (b'<', Some(b'='), _) => {
                self.bump();
                Le
            }
            (b'>', Some(b'='), _) => {
                self.bump();
                Ge
            }
            (b'=', Some(b'='), _) => {
                self.bump();
                EqEq
            }
            (b'!', Some(b'='), _) => {
                self.bump();
                Ne
            }
            (b'&', Some(b'&'), _) => {
                self.bump();
                AmpAmp
            }
            (b'|', Some(b'|'), _) => {
                self.bump();
                PipePipe
            }
            (b'+', Some(b'='), _) => {
                self.bump();
                PlusAssign
            }
            (b'-', Some(b'='), _) => {
                self.bump();
                MinusAssign
            }
            (b'*', Some(b'='), _) => {
                self.bump();
                StarAssign
            }
            (b'/', Some(b'='), _) => {
                self.bump();
                SlashAssign
            }
            (b'%', Some(b'='), _) => {
                self.bump();
                PercentAssign
            }
            (b'&', Some(b'='), _) => {
                self.bump();
                AmpAssign
            }
            (b'|', Some(b'='), _) => {
                self.bump();
                PipeAssign
            }
            (b'^', Some(b'='), _) => {
                self.bump();
                CaretAssign
            }
            (b'(', _, _) => LParen,
            (b')', _, _) => RParen,
            (b'{', _, _) => LBrace,
            (b'}', _, _) => RBrace,
            (b'[', _, _) => LBracket,
            (b']', _, _) => RBracket,
            (b';', _, _) => Semi,
            (b',', _, _) => Comma,
            (b'.', _, _) => Dot,
            (b'+', _, _) => Plus,
            (b'-', _, _) => Minus,
            (b'*', _, _) => Star,
            (b'/', _, _) => Slash,
            (b'%', _, _) => Percent,
            (b'&', _, _) => Amp,
            (b'|', _, _) => Pipe,
            (b'^', _, _) => Caret,
            (b'~', _, _) => Tilde,
            (b'!', _, _) => Bang,
            (b'<', _, _) => Lt,
            (b'>', _, _) => Gt,
            (b'=', _, _) => Assign,
            (b'?', _, _) => Question,
            (b':', _, _) => Colon,
            _ => return Err(self.error_here(format!("unexpected character `{}`", c as char))),
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let ks = kinds("int x;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_hex_and_decimal() {
        assert_eq!(kinds("0xff")[0], TokenKind::IntLit(255));
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("0xFFFFFFFFFFFFFFFF")[0], TokenKind::IntLit(-1i64));
    }

    #[test]
    fn lexes_floats_with_exponent() {
        assert_eq!(kinds("3.5")[0], TokenKind::FloatLit(3.5));
        assert_eq!(kinds("1.0e-3")[0], TokenKind::FloatLit(1.0e-3));
        assert_eq!(kinds("2.5E+2")[0], TokenKind::FloatLit(250.0));
    }

    #[test]
    fn dot_after_integer_is_member_access_when_no_digit() {
        // `a.b` must not swallow the dot into a float.
        let ks = kinds("1.x");
        assert_eq!(ks[0], TokenKind::IntLit(1));
        assert_eq!(ks[1], TokenKind::Punct(Punct::Dot));
    }

    #[test]
    fn lexes_char_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::CharLit(97));
        assert_eq!(kinds(r"'\n'")[0], TokenKind::CharLit(10));
        assert_eq!(kinds(r"'\0'")[0], TokenKind::CharLit(0));
    }

    #[test]
    fn lexes_multi_char_operators_longest_match() {
        let ks = kinds("<<= >>= -> ++ -- << >> <= >= == != && || += << <");
        let expect = [
            Punct::ShlAssign,
            Punct::ShrAssign,
            Punct::Arrow,
            Punct::PlusPlus,
            Punct::MinusMinus,
            Punct::Shl,
            Punct::Shr,
            Punct::Le,
            Punct::Ge,
            Punct::EqEq,
            Punct::Ne,
            Punct::AmpAmp,
            Punct::PipePipe,
            Punct::PlusAssign,
            Punct::Shl,
            Punct::Lt,
        ];
        for (i, p) in expect.iter().enumerate() {
            assert_eq!(ks[i], TokenKind::Punct(*p), "operator #{i}");
        }
    }

    #[test]
    fn skips_line_and_block_comments() {
        let ks = kinds("int /* hi\nthere */ x; // trailing\n");
        assert_eq!(ks.len(), 4); // int, x, ;, eof
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn pragma_becomes_directive_token() {
        let ks = kinds("#pragma candidate\nint x;");
        assert_eq!(ks[0], TokenKind::PragmaDirective(vec!["candidate".into()]));
    }

    #[test]
    fn pragma_with_arguments() {
        let ks = kinds("#pragma candidate doacross\n");
        assert_eq!(
            ks[0],
            TokenKind::PragmaDirective(vec!["candidate".into(), "doacross".into()])
        );
    }

    #[test]
    fn unknown_directive_is_error() {
        assert!(lex("#include <stdio.h>").is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("int\nx;").unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(lex("int $x;").is_err());
        assert!(lex("\"str\"").is_err());
    }
}
