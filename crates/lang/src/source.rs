//! Source positions and spans used by diagnostics throughout the frontend.

use std::fmt;

/// A position in the source text: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl SourcePos {
    /// Position of the first character of a source file.
    pub const START: SourcePos = SourcePos { line: 1, col: 1 };

    /// Creates a position from a 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        SourcePos { line, col }
    }
}

impl Default for SourcePos {
    fn default() -> Self {
        SourcePos::START
    }
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text, from `start` to `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SourceSpan {
    /// Start position (inclusive).
    pub start: SourcePos,
    /// End position (exclusive).
    pub end: SourcePos,
}

impl SourceSpan {
    /// Creates a span covering `start..end`.
    pub fn new(start: SourcePos, end: SourcePos) -> Self {
        SourceSpan { start, end }
    }

    /// A zero-width span at a single position.
    pub fn at(pos: SourcePos) -> Self {
        SourceSpan {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: SourceSpan) -> SourceSpan {
        SourceSpan {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_ordering_is_line_major() {
        assert!(SourcePos::new(1, 9) < SourcePos::new(2, 1));
        assert!(SourcePos::new(3, 1) < SourcePos::new(3, 2));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = SourceSpan::new(SourcePos::new(1, 1), SourcePos::new(1, 5));
        let b = SourceSpan::new(SourcePos::new(2, 3), SourcePos::new(2, 9));
        let m = a.merge(b);
        assert_eq!(m.start, SourcePos::new(1, 1));
        assert_eq!(m.end, SourcePos::new(2, 9));
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(SourcePos::new(4, 7).to_string(), "4:7");
    }
}
