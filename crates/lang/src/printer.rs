//! Pretty-printer: renders a [`Program`] back to Cee source.
//!
//! Used to inspect what the expansion pass produced (the paper presents
//! its transformation as source-to-source in Figures 1/3/4) and as a
//! round-trip test oracle: `parse(print(p))` must equal `p` up to type
//! decorations.
//!
//! One caveat: the expansion pass can build types that Cee's declarator
//! grammar cannot spell (pointers to arrays). [`print_program`] renders
//! them in C's suffix syntax; such programs print for reading but do not
//! re-parse. [`roundtrips`] reports whether a program is within the
//! printable-and-parsable subset.

use crate::ast::*;
use crate::types::{Type, TypeTable};
use std::fmt::Write;

/// Renders a full program as Cee source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in p.types.structs() {
        if s.name.starts_with("__fat_") && s.fields.len() == 2 {
            // Render fat records like ordinary structs for readability.
        }
        let _ = writeln!(out, "struct {} {{", s.name);
        for f in &s.fields {
            let _ = writeln!(out, "  {};", declarator(&f.ty, &f.name, &p.types));
        }
        let _ = writeln!(out, "}};");
    }
    for g in &p.globals {
        match &g.init {
            Some(init) => {
                let _ = writeln!(
                    out,
                    "{} = {};",
                    declarator(&g.ty, &g.name, &p.types),
                    const_init(init)
                );
            }
            None => {
                let _ = writeln!(out, "{};", declarator(&g.ty, &g.name, &p.types));
            }
        }
    }
    for f in &p.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|par| declarator(&par.ty, &par.name, &p.types))
            .collect();
        let _ = writeln!(
            out,
            "{}({}) {{",
            declarator(&f.ret_ty, &f.name, &p.types),
            params.join(", ")
        );
        print_block_inner(&f.body, p, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

/// True when `print_program(p)` re-parses to an equivalent program (i.e. no
/// unprintable types such as pointer-to-array appear in declarations).
pub fn roundtrips(p: &Program) -> bool {
    fn printable(ty: &Type) -> bool {
        match ty {
            Type::Pointer(inner) => !matches!(**inner, Type::Array(..)) && printable(inner),
            Type::Array(inner, _) => printable(inner),
            _ => true,
        }
    }
    // Struct bodies may only reference structs declared earlier (or
    // themselves): the printer emits them in table order and the parser
    // has no forward declarations.
    fn max_struct_ref(ty: &Type) -> Option<u32> {
        match ty {
            Type::Struct(id) => Some(id.0),
            Type::Pointer(inner) | Type::Array(inner, _) => max_struct_ref(inner),
            _ => None,
        }
    }
    let order_ok = p.types.structs().iter().enumerate().all(|(i, s)| {
        s.fields
            .iter()
            .all(|f| max_struct_ref(&f.ty).is_none_or(|r| r <= i as u32))
    });
    order_ok
        && p.globals.iter().all(|g| printable(&g.ty))
        && p.types
            .structs()
            .iter()
            .all(|s| s.fields.iter().all(|f| printable(&f.ty)))
        && p.functions.iter().all(|f| {
            printable(&f.ret_ty)
                && f.params.iter().all(|par| printable(&par.ty))
                && all_decls_printable(&f.body)
        })
}

fn all_decls_printable(b: &Block) -> bool {
    fn printable(ty: &Type) -> bool {
        match ty {
            Type::Pointer(inner) => !matches!(**inner, Type::Array(..)) && printable(inner),
            Type::Array(inner, _) => printable(inner),
            _ => true,
        }
    }
    b.stmts.iter().all(|s| match &s.kind {
        StmtKind::Decl { ty, .. } => printable(ty),
        StmtKind::If { then, els, .. } => {
            all_decls_printable(then) && els.as_ref().is_none_or(all_decls_printable)
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => all_decls_printable(body),
        StmtKind::For { init, body, .. } => {
            init.as_ref().is_none_or(|i| match &i.kind {
                StmtKind::Decl { ty, .. } => printable(ty),
                _ => true,
            }) && all_decls_printable(body)
        }
        StmtKind::Block(b) => all_decls_printable(b),
        _ => true,
    })
}

/// C-style declarator: base type, name, and array suffixes
/// (`int (*p)[4]` becomes the suffix form `int* p[4]`-free rendering using
/// explicit parentheses).
fn declarator(ty: &Type, name: &str, types: &TypeTable) -> String {
    // Collect array suffixes outside-in.
    let mut dims = Vec::new();
    let mut t = ty;
    while let Type::Array(inner, n) = t {
        dims.push(*n);
        t = inner;
    }
    // Pointer chain.
    let mut stars = String::new();
    let mut core = t;
    while let Type::Pointer(inner) = core {
        // Pointer to array needs a parenthesized declarator.
        if let Type::Array(..) = **inner {
            return declarator(inner, &format!("(*{name})"), types);
        }
        stars.push('*');
        core = inner;
    }
    let base = base_type_name(core, types);
    let suffix: String = dims.iter().map(|n| format!("[{n}]")).collect();
    format!("{base} {stars}{name}{suffix}")
}

fn base_type_name(ty: &Type, types: &TypeTable) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Char => "char".into(),
        Type::Short => "short".into(),
        Type::Int => "int".into(),
        Type::Long => "long".into(),
        Type::Float => "float".into(),
        Type::Struct(id) => format!("struct {}", types.struct_def(*id).name),
        Type::Pointer(_) | Type::Array(..) => unreachable!("peeled by declarator"),
    }
}

fn type_name(ty: &Type, types: &TypeTable) -> String {
    match ty {
        Type::Pointer(inner) => format!("{}*", type_name(inner, types)),
        Type::Array(inner, n) => format!("{}[{n}]", type_name(inner, types)),
        other => base_type_name(other, types),
    }
}

fn const_init(c: &ConstInit) -> String {
    match c {
        ConstInit::Int(v) => v.to_string(),
        ConstInit::Float(v) => format_float(*v),
        ConstInit::List(items) => {
            let inner: Vec<String> = items.iter().map(const_init).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn format_float(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block_inner(b: &Block, p: &Program, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, p, depth, out);
    }
}

fn print_stmt(s: &Stmt, p: &Program, depth: usize, out: &mut String) {
    indent(depth, out);
    match &s.kind {
        StmtKind::Decl { name, ty, init, .. } => match init {
            Some(e) => {
                let _ = writeln!(out, "{} = {};", declarator(ty, name, &p.types), expr(e, p));
            }
            None => {
                let _ = writeln!(out, "{};", declarator(ty, name, &p.types));
            }
        },
        StmtKind::Expr(e) => {
            let _ = writeln!(out, "{};", expr(e, p));
        }
        StmtKind::If { cond, then, els } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond, p));
            print_block_inner(then, p, depth + 1, out);
            match els {
                Some(e) => {
                    indent(depth, out);
                    let _ = writeln!(out, "}} else {{");
                    print_block_inner(e, p, depth + 1, out);
                    indent(depth, out);
                    let _ = writeln!(out, "}}");
                }
                None => {
                    indent(depth, out);
                    let _ = writeln!(out, "}}");
                }
            }
        }
        StmtKind::While { cond, body, mark } => {
            print_mark(mark, depth, out);
            indent(0, out);
            let _ = writeln!(out, "while ({}) {{", expr(cond, p));
            print_block_inner(body, p, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        StmtKind::DoWhile { body, cond, mark } => {
            print_mark(mark, depth, out);
            let _ = writeln!(out, "do {{");
            print_block_inner(body, p, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}} while ({});", expr(cond, p));
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            mark,
        } => {
            print_mark(mark, depth, out);
            let init_s = match init {
                Some(i) => {
                    let mut tmp = String::new();
                    print_stmt(i, p, 0, &mut tmp);
                    tmp.trim_end().trim_end_matches(';').to_string() + ";"
                }
                None => ";".into(),
            };
            let cond_s = cond.as_ref().map(|c| expr(c, p)).unwrap_or_default();
            let step_s = step.as_ref().map(|st| expr(st, p)).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s} {cond_s}; {step_s}) {{");
            print_block_inner(body, p, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
        StmtKind::Break => {
            let _ = writeln!(out, "break;");
        }
        StmtKind::Continue => {
            let _ = writeln!(out, "continue;");
        }
        StmtKind::Return(e) => match e {
            Some(e) => {
                let _ = writeln!(out, "return {};", expr(e, p));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
        StmtKind::Block(b) => {
            let _ = writeln!(out, "{{");
            print_block_inner(b, p, depth + 1, out);
            indent(depth, out);
            let _ = writeln!(out, "}}");
        }
    }
}

fn print_mark(mark: &LoopMark, _depth: usize, out: &mut String) {
    if mark.candidate {
        // The pragma must sit on its own line directly before the loop.
        let trimmed = out.trim_end_matches(' ').len();
        out.truncate(trimmed);
        match &mark.label {
            Some(l) => {
                let _ = writeln!(out, "#pragma candidate {l}");
            }
            None => {
                let _ = writeln!(out, "#pragma candidate");
            }
        }
    }
}

fn bin_op(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        And => "&",
        Or => "|",
        Xor => "^",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Gt => ">",
        Le => "<=",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        LogAnd => "&&",
        LogOr => "||",
    }
}

/// Renders an expression (fully parenthesized: correct and unambiguous,
/// if not minimal).
pub fn expr(e: &Expr, p: &Program) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => format_float(*v),
        ExprKind::Var { name, .. } => name.clone(),
        ExprKind::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
                UnOp::Not => "!",
            };
            format!("{sym}({})", expr(a, p))
        }
        ExprKind::Binary(op, l, r) => {
            format!("({} {} {})", expr(l, p), bin_op(*op), expr(r, p))
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let sym = match op {
                AssignOp::Set => "=".to_string(),
                AssignOp::Compound(b) => format!("{}=", bin_op(*b)),
            };
            format!("{} {} {}", expr(lhs, p), sym, expr(rhs, p))
        }
        ExprKind::Cond(c, t, f) => {
            format!("({} ? {} : {})", expr(c, p), expr(t, p), expr(f, p))
        }
        ExprKind::Call { name, args } => {
            let a: Vec<String> = args.iter().map(|x| expr(x, p)).collect();
            format!("{name}({})", a.join(", "))
        }
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr(base, p), expr(index, p))
        }
        ExprKind::Field { base, field } => {
            // Re-sugar (*p).f to p->f for readability.
            if let ExprKind::Deref(inner) = &base.kind {
                format!("{}->{field}", expr(inner, p))
            } else {
                format!("{}.{field}", expr(base, p))
            }
        }
        ExprKind::Deref(x) => format!("(*{})", expr(x, p)),
        ExprKind::AddrOf(x) => format!("(&{})", expr(x, p)),
        ExprKind::Cast(ty, x) => {
            format!("(({}){})", type_name(ty, &p.types), expr(x, p))
        }
        ExprKind::SizeofType(ty) => format!("sizeof({})", type_name(ty, &p.types)),
        ExprKind::SizeofExpr(x) => format!("sizeof {}", expr(x, p)),
        ExprKind::IncDec { pre, inc, target } => {
            let sym = if *inc { "++" } else { "--" };
            if *pre {
                format!("{sym}{}", expr(target, p))
            } else {
                format!("{}{sym}", expr(target, p))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ast;

    /// Strips type decorations so reparsed programs compare equal.
    fn normalize(mut p: Program) -> Program {
        for g in &mut p.globals {
            g.span = crate::SourceSpan::default();
        }
        for f in &mut p.functions {
            f.span = crate::SourceSpan::default();
            for par in &mut f.params {
                par.span = crate::SourceSpan::default();
            }
            f.locals.clear();
            visit_exprs_in_block(&mut f.body, &mut |e| {
                e.ty = None;
                e.eid = 0;
                e.span = crate::SourceSpan::default();
                if let ExprKind::Var { binding, .. } = &mut e.kind {
                    *binding = None;
                }
            });
            clear_stmt_meta(&mut f.body);
        }
        p
    }

    fn clear_stmt_meta(b: &mut Block) {
        for s in &mut b.stmts {
            s.span = crate::SourceSpan::default();
            match &mut s.kind {
                StmtKind::Decl { slot, .. } => *slot = None,
                StmtKind::If { then, els, .. } => {
                    clear_stmt_meta(then);
                    if let Some(e) = els {
                        clear_stmt_meta(e);
                    }
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    clear_stmt_meta(body)
                }
                StmtKind::For { init, body, .. } => {
                    if let Some(i) = init {
                        i.span = crate::SourceSpan::default();
                        if let StmtKind::Decl { slot, .. } = &mut i.kind {
                            *slot = None;
                        }
                    }
                    clear_stmt_meta(body);
                }
                StmtKind::Block(b) => clear_stmt_meta(b),
                _ => {}
            }
        }
    }

    fn roundtrip(src: &str) {
        let p1 = compile_to_ast(src).unwrap();
        assert!(roundtrips(&p1), "program should be printable");
        let printed = print_program(&p1);
        let p2 = compile_to_ast(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            normalize(p1),
            normalize(p2),
            "round-trip mismatch\n--- printed ---\n{printed}"
        );
    }

    #[test]
    fn roundtrip_expressions_and_statements() {
        roundtrip(
            "int g = 3;
             int helper(int a, int b) { return a > b ? a - b : b - a; }
             int main() {
               int x; x = 0;
               for (int i = 0; i < 10; i++) {
                 x += helper(i, g) * 2;
                 if (x % 3 == 0 && x != 0) { x--; } else { ++x; }
               }
               int k; k = 0;
               while (k < 5) { k = k + 1; if (k == 2) { continue; } }
               do { k--; } while (k > 0);
               return x << 1 | 1;
             }",
        );
    }

    #[test]
    fn roundtrip_pointers_structs_arrays() {
        roundtrip(
            "struct Node { int v; struct Node *next; };
             int table[4] = {1, 2, 3};
             int main() {
               struct Node *head; head = 0;
               for (int i = 0; i < 4; i++) {
                 struct Node *n; n = malloc(sizeof(struct Node));
                 n->v = table[i];
                 n->next = head;
                 head = n;
               }
               int s; s = 0;
               while (head) {
                 s += head->v;
                 struct Node *d; d = head;
                 head = head->next;
                 free(d);
               }
               short *view; int *buf; buf = malloc(16);
               view = (short*)buf;
               view[0] = (short)s;
               s = view[0];
               free(buf);
               return s;
             }",
        );
    }

    #[test]
    fn roundtrip_pragma_and_floats() {
        roundtrip(
            "float acc = 1.5;
             int main() {
               float x; x = 0.25;
               #pragma candidate hot
               for (int i = 0; i < 8; i++) {
                 int t; t = i * 2;
                 x = x + (float)t * 0.5;
               }
               out_float(x);
               return (int)x;
             }",
        );
    }

    #[test]
    fn prints_transformed_style_types() {
        // Pointer-to-array (the expanded-global handle shape) is printable
        // even though it cannot re-parse.
        let mut p = compile_to_ast("int main() { return 0; }").unwrap();
        p.globals.push(GlobalVar {
            name: "handle".into(),
            ty: Type::Int.array_of(4).ptr_to(),
            init: None,
            span: crate::SourceSpan::default(),
        });
        assert!(!roundtrips(&p));
        let printed = print_program(&p);
        assert!(printed.contains("int (*handle)[4]"), "{printed}");
    }
}
