//! # dse-lang — the *Cee* frontend
//!
//! `dse-lang` implements a from-scratch frontend for **Cee**, a C-subset
//! language used as the source language of the data-structure-expansion
//! compiler described in *"General Data Structure Expansion for
//! Multi-threading"* (Yu, Ko, Li — PLDI 2013). The paper's transformation is
//! defined over C declarations and memory references (locals, globals, heap
//! objects; scalars, records, arrays; pointer dereferences and recasts), so
//! the frontend supports exactly those constructs:
//!
//! * primitive types `char` (1 byte), `short` (2), `int` (4), `long` (8) and
//!   `float` (stored as IEEE f64 in 8 bytes),
//! * `struct` types with C layout rules (natural alignment, trailing padding),
//! * pointers (any depth), arrays (any rank), pointer/integer casts,
//! * heap management builtins `malloc`, `calloc`, `realloc`, `free`,
//! * functions, global variables with optional constant initializers,
//! * the full C statement repertoire used by the paper's benchmarks
//!   (`if`/`else`, `while`, `do`, `for`, `break`, `continue`, `return`),
//! * `#pragma candidate` to mark a loop as a parallelization candidate
//!   (standing in for the paper's "promising loop" selection).
//!
//! The crate exposes a classic pipeline:
//!
//! ```
//! use dse_lang::compile_to_ast;
//!
//! # fn main() -> Result<(), dse_lang::LangError> {
//! let program = compile_to_ast(
//!     "int main() { int x; x = 21; return x * 2; }")?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! Semantic analysis ([`sema`]) produces a fully typed AST where every
//! expression node carries its resolved [`types::Type`], ready for lowering
//! by `dse-ir`.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod source;
pub mod token;
pub mod types;

pub use ast::Program;
pub use error::LangError;
pub use source::{SourcePos, SourceSpan};

/// Lexes, parses and type-checks a Cee source string into a typed [`Program`].
///
/// This is the one-call entry point used by the rest of the workspace.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first lexical, syntactic or
/// semantic problem found, with a source location.
pub fn compile_to_ast(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let mut program = parser::parse(&tokens)?;
    sema::check(&mut program)?;
    ast::number_exprs(&mut program);
    Ok(program)
}
