//! Semantic analysis: name resolution, type checking, local-slot assignment.
//!
//! `check` decorates the AST in place:
//! * every [`Expr`] receives its resolved [`Type`] (arrays keep their array
//!   type; consumers apply C decay),
//! * every `Var` receives a [`VarBinding`],
//! * every local declaration receives a slot index in
//!   [`Function::locals`] (parameters occupy the first slots),
//! * lvalue-ness, implicit-conversion and builtin-signature rules of the C
//!   subset are enforced.

use crate::ast::*;
use crate::error::LangError;
use crate::source::SourceSpan;
use crate::types::{Type, TypeTable};

/// Signature of a callable: parameter types and return type.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Names of the builtin functions provided by the VM, with signatures.
///
/// `malloc`/`calloc`/`realloc`/`free` manage the VM heap; `in_*`/`out_*`
/// exchange data with the host harness; `print_*` write to the VM's console
/// stream; `fsqrt`/`fabs` are the float math used by the numeric workloads.
pub fn builtin_signature(name: &str) -> Option<Signature> {
    let void_ptr = Type::Void.ptr_to();
    Some(match name {
        "malloc" => Signature {
            params: vec![Type::Long],
            ret: void_ptr,
        },
        "calloc" => Signature {
            params: vec![Type::Long, Type::Long],
            ret: void_ptr,
        },
        "realloc" => Signature {
            params: vec![void_ptr, Type::Long],
            ret: Type::Void.ptr_to(),
        },
        "free" => Signature {
            params: vec![void_ptr],
            ret: Type::Void,
        },
        "in_long" => Signature {
            params: vec![Type::Long],
            ret: Type::Long,
        },
        "in_float" => Signature {
            params: vec![Type::Long],
            ret: Type::Float,
        },
        "in_len" => Signature {
            params: vec![],
            ret: Type::Long,
        },
        "out_long" => Signature {
            params: vec![Type::Long],
            ret: Type::Void,
        },
        "out_float" => Signature {
            params: vec![Type::Float],
            ret: Type::Void,
        },
        "print_long" => Signature {
            params: vec![Type::Long],
            ret: Type::Void,
        },
        "print_float" => Signature {
            params: vec![Type::Float],
            ret: Type::Void,
        },
        "fsqrt" => Signature {
            params: vec![Type::Float],
            ret: Type::Float,
        },
        "fabs" => Signature {
            params: vec![Type::Float],
            ret: Type::Float,
        },
        // Reserved internal builtins (names starting with `__`), emitted by
        // the expansion pass: worker index, thread count, expanded realloc
        // (moves each thread's copy), and raw memory copy.
        "__tid" => Signature {
            params: vec![],
            ret: Type::Long,
        },
        "__nthreads" => Signature {
            params: vec![],
            ret: Type::Long,
        },
        "__realloc_expanded" => Signature {
            params: vec![Type::Void.ptr_to(), Type::Long, Type::Long],
            ret: Type::Void.ptr_to(),
        },
        "__memcpy" => Signature {
            params: vec![Type::Void.ptr_to(), Type::Void.ptr_to(), Type::Long],
            ret: Type::Void,
        },
        "__localize" => Signature {
            params: vec![Type::Void.ptr_to()],
            ret: Type::Void.ptr_to(),
        },
        _ => return None,
    })
}

/// Type-checks and resolves `program` in place.
///
/// # Errors
///
/// Returns the first semantic error found.
pub fn check(program: &mut Program) -> Result<(), LangError> {
    // Collect user function signatures first so calls can be forward.
    let mut signatures = Vec::with_capacity(program.functions.len());
    for f in &program.functions {
        if builtin_signature(&f.name).is_some() {
            return Err(LangError::sema(
                f.span,
                format!("function `{}` shadows a builtin", f.name),
            ));
        }
        signatures.push((
            f.name.clone(),
            Signature {
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ret: f.ret_ty.clone(),
            },
        ));
    }
    for g in &program.globals {
        check_object_type(&g.ty, g.span)?;
        if let Some(init) = &g.init {
            check_const_init(&g.ty, init, g.span)?;
        }
    }
    let globals: Vec<(String, Type)> = program
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.ty.clone()))
        .collect();
    let types = program.types.clone();
    for f in &mut program.functions {
        let mut cx = FnCx {
            types: &types,
            globals: &globals,
            signatures: &signatures,
            ret_ty: f.ret_ty.clone(),
            locals: Vec::new(),
            scopes: vec![Vec::new()],
            loop_depth: 0,
        };
        for p in &f.params {
            check_object_type(&p.ty, p.span)?;
            if p.ty == Type::Void {
                return Err(LangError::sema(p.span, "parameter cannot be void"));
            }
            cx.declare(&p.name, p.ty.clone(), true, p.span)?;
        }
        cx.check_block(&mut f.body)?;
        f.locals = cx.locals;
    }
    Ok(())
}

/// Rejects types that cannot be the type of an object (e.g. plain `void`).
fn check_object_type(ty: &Type, span: SourceSpan) -> Result<(), LangError> {
    match ty {
        Type::Void => Err(LangError::sema(
            span,
            "cannot declare an object of type void",
        )),
        Type::Array(elem, _) => check_object_type(elem, span),
        _ => Ok(()),
    }
}

fn check_const_init(ty: &Type, init: &ConstInit, span: SourceSpan) -> Result<(), LangError> {
    match (ty, init) {
        (t, ConstInit::Int(_)) if t.is_integer() || t.is_pointer() => Ok(()),
        (Type::Float, ConstInit::Int(_) | ConstInit::Float(_)) => Ok(()),
        (t, ConstInit::Float(_)) if t.is_integer() => Ok(()),
        (Type::Array(elem, n), ConstInit::List(items)) => {
            if items.len() as u64 > *n {
                return Err(LangError::sema(span, "too many initializers for array"));
            }
            for it in items {
                check_const_init(elem, it, span)?;
            }
            Ok(())
        }
        _ => Err(LangError::sema(
            span,
            "initializer does not match declared type",
        )),
    }
}

struct FnCx<'a> {
    types: &'a TypeTable,
    globals: &'a [(String, Type)],
    signatures: &'a [(String, Signature)],
    ret_ty: Type,
    locals: Vec<LocalVar>,
    /// Stack of scopes; each holds (name, slot).
    scopes: Vec<Vec<(String, usize)>>,
    loop_depth: u32,
}

impl<'a> FnCx<'a> {
    fn declare(
        &mut self,
        name: &str,
        ty: Type,
        is_param: bool,
        span: SourceSpan,
    ) -> Result<usize, LangError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.iter().any(|(n, _)| n == name) {
            return Err(LangError::sema(
                span,
                format!("`{name}` redeclared in same scope"),
            ));
        }
        let slot = self.locals.len();
        self.locals.push(LocalVar {
            name: name.to_string(),
            ty,
            is_param,
        });
        scope.push((name.to_string(), slot));
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<VarBinding> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, slot)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(VarBinding::Local(*slot));
            }
        }
        self.globals
            .iter()
            .position(|(n, _)| n == name)
            .map(VarBinding::Global)
    }

    fn binding_type(&self, b: VarBinding) -> Type {
        match b {
            VarBinding::Local(slot) => self.locals[slot].ty.clone(),
            VarBinding::Global(i) => self.globals[i].1.clone(),
        }
    }

    fn check_block(&mut self, block: &mut Block) -> Result<(), LangError> {
        self.scopes.push(Vec::new());
        for s in &mut block.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &mut Stmt) -> Result<(), LangError> {
        let span = stmt.span;
        match &mut stmt.kind {
            StmtKind::Decl {
                name,
                ty,
                init,
                slot,
            } => {
                check_object_type(ty, span)?;
                if ty == &Type::Void {
                    return Err(LangError::sema(span, "cannot declare void variable"));
                }
                // The initializer is checked in the outer scope (C allows
                // `int x = x;` to see an outer x, but we keep it simple and
                // check before declaring, which matches C shadowing rules).
                if let Some(e) = init {
                    let ety = self.check_expr(e)?;
                    require_assignable(ty, &ety, self.types, e.span)?;
                }
                *slot = Some(self.declare(name, ty.clone(), false, span)?);
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                self.check_cond(cond)?;
                self.check_block(then)?;
                if let Some(b) = els {
                    self.check_block(b)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body, .. } => {
                self.check_cond(cond)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.check_cond(cond)?;
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(Vec::new());
                if let Some(s) = init {
                    self.check_stmt(s)?;
                }
                if let Some(c) = cond {
                    self.check_cond(c)?;
                }
                if let Some(s) = step {
                    self.check_expr(s)?;
                }
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(LangError::sema(span, "break/continue outside of loop"));
                }
                Ok(())
            }
            StmtKind::Return(e) => match (e, self.ret_ty.clone()) {
                (None, Type::Void) => Ok(()),
                (None, _) => Err(LangError::sema(span, "missing return value")),
                (Some(_), Type::Void) => {
                    Err(LangError::sema(span, "void function returns a value"))
                }
                (Some(e), ret) => {
                    let ety = self.check_expr(e)?;
                    require_assignable(&ret, &ety, self.types, e.span)
                }
            },
            StmtKind::Block(b) => self.check_block(b),
        }
    }

    fn check_cond(&mut self, e: &mut Expr) -> Result<(), LangError> {
        let t = self.check_expr(e)?;
        if !t.decayed().is_scalar() {
            return Err(LangError::sema(
                e.span,
                format!("condition must be scalar, got {t}"),
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, e: &mut Expr) -> Result<Type, LangError> {
        let span = e.span;
        let ty = match &mut e.kind {
            ExprKind::IntLit(v) => {
                if i32::try_from(*v).is_ok() {
                    Type::Int
                } else {
                    Type::Long
                }
            }
            ExprKind::FloatLit(_) => Type::Float,
            ExprKind::Var { name, binding } => {
                let b = self
                    .lookup(name)
                    .ok_or_else(|| LangError::sema(span, format!("unknown variable `{name}`")))?;
                *binding = Some(b);
                self.binding_type(b)
            }
            ExprKind::Unary(op, inner) => {
                let t = self.check_expr(inner)?.decayed();
                match op {
                    UnOp::Neg => {
                        if !t.is_arithmetic() {
                            return Err(LangError::sema(span, "operand of `-` must be arithmetic"));
                        }
                        promote(&t)
                    }
                    UnOp::BitNot => {
                        if !t.is_integer() {
                            return Err(LangError::sema(span, "operand of `~` must be integer"));
                        }
                        promote(&t)
                    }
                    UnOp::Not => {
                        if !t.is_scalar() {
                            return Err(LangError::sema(span, "operand of `!` must be scalar"));
                        }
                        Type::Int
                    }
                }
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.check_expr(l)?.decayed();
                let rt = self.check_expr(r)?.decayed();
                self.binary_result(*op, &lt, &rt, span)?
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                require_lvalue(lhs)?;
                let rt = self.check_expr(rhs)?;
                if let AssignOp::Compound(b) = op {
                    // lhs op rhs must be well-typed and storable back.
                    let res = self.binary_result(*b, &lt.decayed(), &rt.decayed(), span)?;
                    require_assignable(&lt, &res, self.types, span)?;
                } else {
                    require_assignable(&lt, &rt, self.types, span)?;
                }
                lt
            }
            ExprKind::Cond(c, t, f) => {
                let ct = self.check_expr(c)?;
                if !ct.decayed().is_scalar() {
                    return Err(LangError::sema(c.span, "`?:` condition must be scalar"));
                }
                let tt = self.check_expr(t)?.decayed();
                let ft = self.check_expr(f)?.decayed();
                common_type(&tt, &ft).ok_or_else(|| {
                    LangError::sema(span, format!("incompatible `?:` arms: {tt} vs {ft}"))
                })?
            }
            ExprKind::Call { name, args } => {
                let sig = builtin_signature(name)
                    .or_else(|| {
                        self.signatures
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, s)| s.clone())
                    })
                    .ok_or_else(|| LangError::sema(span, format!("unknown function `{name}`")))?;
                if sig.params.len() != args.len() {
                    return Err(LangError::sema(
                        span,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (a, pt) in args.iter_mut().zip(&sig.params) {
                    let at = self.check_expr(a)?;
                    require_assignable(pt, &at, self.types, a.span)?;
                }
                sig.ret
            }
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(index)?.decayed();
                if !it.is_integer() {
                    return Err(LangError::sema(index.span, "array index must be integer"));
                }
                match bt.pointee() {
                    Some(Type::Void) | None => {
                        return Err(LangError::sema(
                            base.span,
                            format!("cannot index value of type {bt}"),
                        ))
                    }
                    Some(elem) => elem.clone(),
                }
            }
            ExprKind::Field { base, field } => {
                let bt = self.check_expr(base)?;
                let Type::Struct(id) = bt else {
                    return Err(LangError::sema(
                        base.span,
                        format!("member access on non-struct type {bt}"),
                    ));
                };
                let def = self.types.struct_def(id);
                let f = def.field(field).ok_or_else(|| {
                    LangError::sema(
                        span,
                        format!("struct `{}` has no field `{field}`", def.name),
                    )
                })?;
                f.ty.clone()
            }
            ExprKind::Deref(inner) => {
                let t = self.check_expr(inner)?.decayed();
                match t.pointee() {
                    Some(Type::Void) => {
                        return Err(LangError::sema(span, "cannot dereference void*"))
                    }
                    Some(p) => p.clone(),
                    None => {
                        return Err(LangError::sema(
                            span,
                            format!("cannot dereference non-pointer type {t}"),
                        ))
                    }
                }
            }
            ExprKind::AddrOf(inner) => {
                let t = self.check_expr(inner)?;
                require_lvalue(inner)?;
                t.ptr_to()
            }
            ExprKind::Cast(ty, inner) => {
                let from = self.check_expr(inner)?.decayed();
                let ok = (ty.is_scalar() && from.is_scalar()) || (ty == &Type::Void); // cast-to-void discards
                if !ok {
                    return Err(LangError::sema(
                        span,
                        format!("invalid cast from {from} to {ty}"),
                    ));
                }
                // float<->pointer casts are not meaningful in our model.
                if (ty.is_pointer() && from.is_float()) || (ty.is_float() && from.is_pointer()) {
                    return Err(LangError::sema(
                        span,
                        "cannot cast between float and pointer",
                    ));
                }
                ty.clone()
            }
            ExprKind::SizeofType(ty) => {
                check_object_type(ty, span)?;
                if ty == &Type::Void {
                    return Err(LangError::sema(span, "sizeof(void) is invalid"));
                }
                Type::Long
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.check_expr(inner)?;
                if t == Type::Void {
                    return Err(LangError::sema(span, "sizeof void expression"));
                }
                Type::Long
            }
            ExprKind::IncDec { target, .. } => {
                let t = self.check_expr(target)?;
                require_lvalue(target)?;
                let d = t.decayed();
                if !(d.is_integer() || d.is_pointer()) {
                    return Err(LangError::sema(
                        span,
                        "++/-- target must be integer or pointer",
                    ));
                }
                t
            }
        };
        e.ty = Some(ty.clone());
        Ok(ty)
    }

    fn binary_result(
        &self,
        op: BinOp,
        lt: &Type,
        rt: &Type,
        span: SourceSpan,
    ) -> Result<Type, LangError> {
        use BinOp::*;
        match op {
            LogAnd | LogOr => {
                if lt.is_scalar() && rt.is_scalar() {
                    Ok(Type::Int)
                } else {
                    Err(LangError::sema(span, "logical operands must be scalar"))
                }
            }
            Eq | Ne | Lt | Gt | Le | Ge => {
                let ok = (lt.is_arithmetic() && rt.is_arithmetic())
                    || (lt.is_pointer() && rt.is_pointer())
                    || (lt.is_pointer() && rt.is_integer())
                    || (lt.is_integer() && rt.is_pointer());
                if ok {
                    Ok(Type::Int)
                } else {
                    Err(LangError::sema(
                        span,
                        format!("cannot compare {lt} and {rt}"),
                    ))
                }
            }
            Add => match (lt.is_pointer(), rt.is_pointer()) {
                (true, false) if rt.is_integer() => Ok(lt.clone()),
                (false, true) if lt.is_integer() => Ok(rt.clone()),
                (false, false) if lt.is_arithmetic() && rt.is_arithmetic() => {
                    Ok(arith_common(lt, rt))
                }
                _ => Err(LangError::sema(span, format!("cannot add {lt} and {rt}"))),
            },
            Sub => match (lt.is_pointer(), rt.is_pointer()) {
                (true, true) => {
                    if lt == rt {
                        Ok(Type::Long)
                    } else {
                        Err(LangError::sema(span, "pointer difference of unlike types"))
                    }
                }
                (true, false) if rt.is_integer() => Ok(lt.clone()),
                (false, false) if lt.is_arithmetic() && rt.is_arithmetic() => {
                    Ok(arith_common(lt, rt))
                }
                _ => Err(LangError::sema(
                    span,
                    format!("cannot subtract {rt} from {lt}"),
                )),
            },
            Mul | Div => {
                if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(arith_common(lt, rt))
                } else {
                    Err(LangError::sema(span, "arithmetic operands required"))
                }
            }
            Rem | And | Or | Xor | Shl | Shr => {
                if lt.is_integer() && rt.is_integer() {
                    Ok(arith_common(lt, rt))
                } else {
                    Err(LangError::sema(span, "integer operands required"))
                }
            }
        }
    }
}

/// C integer promotion: sub-`int` types widen to `int`.
fn promote(t: &Type) -> Type {
    match t {
        Type::Char | Type::Short => Type::Int,
        other => other.clone(),
    }
}

/// Usual arithmetic conversions over our reduced rank ladder.
fn arith_common(a: &Type, b: &Type) -> Type {
    if a.is_float() || b.is_float() {
        Type::Float
    } else if a == &Type::Long || b == &Type::Long {
        Type::Long
    } else {
        Type::Int
    }
}

/// Common type of `?:` arms.
fn common_type(a: &Type, b: &Type) -> Option<Type> {
    if a == b {
        return Some(a.clone());
    }
    if a.is_arithmetic() && b.is_arithmetic() {
        return Some(arith_common(a, b));
    }
    match (a, b) {
        (Type::Pointer(x), Type::Pointer(_)) if **x == Type::Void => Some(b.clone()),
        (Type::Pointer(_), Type::Pointer(y)) if **y == Type::Void => Some(a.clone()),
        (p @ Type::Pointer(_), i) | (i, p @ Type::Pointer(_)) if i.is_integer() => Some(p.clone()),
        _ => None,
    }
}

/// Whether a value of type `src` can be implicitly stored into `dst`.
fn require_assignable(
    dst: &Type,
    src: &Type,
    _types: &TypeTable,
    span: SourceSpan,
) -> Result<(), LangError> {
    let src = src.decayed();
    let ok = match (dst, &src) {
        (d, s) if d == s => true,
        (d, s) if d.is_arithmetic() && s.is_arithmetic() => true,
        // void* converts to/from any object pointer (C's malloc idiom).
        (Type::Pointer(d), Type::Pointer(_)) if **d == Type::Void => true,
        (Type::Pointer(_), Type::Pointer(s)) if **s == Type::Void => true,
        // Integer-to-pointer only for constants like 0 is checked loosely:
        // we accept any integer here; the workloads use it only for NULL.
        (Type::Pointer(_), s) if s.is_integer() => true,
        (d, Type::Pointer(_)) if d.is_integer() => false,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(LangError::sema(
            span,
            format!("cannot assign {src} to {dst}"),
        ))
    }
}

/// Lvalues: variables, dereferences, indexing, and field access on lvalues.
fn require_lvalue(e: &Expr) -> Result<(), LangError> {
    match &e.kind {
        ExprKind::Var { .. } | ExprKind::Deref(_) | ExprKind::Index { .. } => Ok(()),
        ExprKind::Field { base, .. } => require_lvalue(base),
        _ => Err(LangError::sema(e.span, "expression is not assignable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_ast;

    fn ok(src: &str) -> Program {
        compile_to_ast(src).unwrap()
    }

    fn err(src: &str) -> String {
        compile_to_ast(src).unwrap_err().message().to_string()
    }

    #[test]
    fn resolves_locals_params_globals() {
        let p = ok("int g; void f(int a) { int b; b = a + g; }");
        let f = p.function("f").unwrap();
        assert_eq!(f.locals.len(), 2);
        assert!(f.locals[0].is_param);
        assert!(!f.locals[1].is_param);
        let StmtKind::Expr(e) = &f.body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { lhs, rhs, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Var { binding, .. } = &lhs.kind else {
            panic!()
        };
        assert_eq!(*binding, Some(VarBinding::Local(1)));
        let ExprKind::Binary(_, a, g) = &rhs.kind else {
            panic!()
        };
        let ExprKind::Var { binding: ab, .. } = &a.kind else {
            panic!()
        };
        assert_eq!(*ab, Some(VarBinding::Local(0)));
        let ExprKind::Var { binding: gb, .. } = &g.kind else {
            panic!()
        };
        assert_eq!(*gb, Some(VarBinding::Global(0)));
    }

    #[test]
    fn shadowing_in_inner_scope() {
        let p = ok("void f() { int x; { int x; x = 1; } x = 2; }");
        let f = p.function("f").unwrap();
        assert_eq!(f.locals.len(), 2);
        let StmtKind::Block(inner) = &f.body.stmts[1].kind else {
            panic!()
        };
        let StmtKind::Expr(e) = &inner.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { lhs, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Var { binding, .. } = &lhs.kind else {
            panic!()
        };
        assert_eq!(*binding, Some(VarBinding::Local(1)));
    }

    #[test]
    fn redeclaration_in_same_scope_is_error() {
        assert!(err("void f() { int x; int x; }").contains("redeclared"));
    }

    #[test]
    fn unknown_variable_is_error() {
        assert!(err("void f() { y = 1; }").contains("unknown variable"));
    }

    #[test]
    fn literal_typing() {
        let p = ok("void f() { long x; x = 5000000000; x = 1; }");
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Long);
        let StmtKind::Expr(e) = &f.body.stmts[2].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Int);
    }

    #[test]
    fn pointer_arithmetic_types() {
        let p = ok("void f(int *p, int *q) { long d; int *r; r = p + 1; d = p - q; }");
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[2].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Int.ptr_to());
        let StmtKind::Expr(e) = &f.body.stmts[3].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Long);
    }

    #[test]
    fn pointer_difference_of_unlike_types_is_error() {
        assert!(err("void f(int *p, char *q) { long d; d = p - q; }").contains("unlike types"));
    }

    #[test]
    fn malloc_returns_void_star_assignable_to_typed_pointer() {
        ok("void f() { int *p; p = malloc(40); free(p); }");
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(err("void f() { malloc(); }").contains("expects 1 arguments"));
    }

    #[test]
    fn deref_void_star_is_error() {
        assert!(err("void f(void *p) { *p; }").contains("void*"));
    }

    #[test]
    fn index_through_pointer_and_array() {
        let p = ok("int a[10]; void f(int *p) { a[1] = p[2]; }");
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Assign { lhs, rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(lhs.ty(), &Type::Int);
        assert_eq!(rhs.ty(), &Type::Int);
    }

    #[test]
    fn field_access_requires_struct() {
        assert!(err("void f(int x) { x.y = 1; }").contains("non-struct"));
        assert!(err("struct S { int a; }; void f(struct S s) { s.b = 1; }").contains("no field"));
    }

    #[test]
    fn struct_assignment_allowed() {
        ok("struct S { int a; int b; }; void f(struct S x, struct S y) { x = y; }");
    }

    #[test]
    fn struct_to_different_struct_is_error() {
        assert!(err(
            "struct S { int a; }; struct T { int a; }; void f(struct S x, struct T y) { x = y; }"
        )
        .contains("cannot assign"));
    }

    #[test]
    fn addr_of_requires_lvalue() {
        assert!(err("void f() { int *p; p = &3; }").contains("not assignable"));
        ok("void f() { int x; int *p; p = &x; }");
    }

    #[test]
    fn assign_to_rvalue_is_error() {
        assert!(err("void f(int a, int b) { a + b = 3; }").contains("not assignable"));
    }

    #[test]
    fn cast_rules() {
        ok("void f(long x) { int *p; p = (int*)x; x = (long)p; }");
        ok("void f(int *p) { short *s; s = (short*)p; }");
        assert!(err("void f(float x) { int *p; p = (int*)x; }").contains("float and pointer"));
    }

    #[test]
    fn recast_pattern_from_bzip2_typechecks() {
        // The motivating case: an int buffer viewed as shorts.
        ok("void f() {
              int *zptr; short *view; long i;
              zptr = malloc(400);
              view = (short*)zptr;
              i = 0;
              while (i < 200) { view[i] = 7; i = i + 1; }
              free(zptr);
            }");
    }

    #[test]
    fn break_outside_loop_is_error() {
        assert!(err("void f() { break; }").contains("outside of loop"));
    }

    #[test]
    fn return_type_checked() {
        assert!(err("int f() { return; }").contains("missing return value"));
        assert!(err("void f() { return 3; }").contains("void function"));
        ok("float f() { return 1; }"); // int converts to float
    }

    #[test]
    fn call_before_definition_resolves() {
        ok("int helper(int a); int helper(int a) { return a; }"
            .replace("int helper(int a);", "int user() { return helper(5); }")
            .as_str());
    }

    #[test]
    fn shadowing_builtin_function_is_error() {
        assert!(err("int malloc(long n) { return 0; }").contains("shadows a builtin"));
    }

    #[test]
    fn ternary_common_type() {
        let p = ok("void f(int c, int *p) { int *q; q = c ? p : 0; }");
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Int.ptr_to());
    }

    #[test]
    fn incdec_on_pointer_ok_on_float_error() {
        ok("void f(int *p) { p++; --p; }");
        assert!(err("void f(float x) { x++; }").contains("integer or pointer"));
    }

    #[test]
    fn global_initializer_type_checked() {
        assert!(err("int g = {1};").contains("does not match"));
        assert!(err("int a[2] = {1,2,3};").contains("too many initializers"));
        ok("float x = 2; int a[3] = {1};");
    }

    #[test]
    fn sizeof_results_are_long() {
        let p = ok("void f(int *p) { long n; n = sizeof(int) + sizeof *p; }");
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::Assign { rhs, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(rhs.ty(), &Type::Long);
    }

    #[test]
    fn void_variable_is_error() {
        assert!(err("void f() { void x; }").contains("void"));
    }

    #[test]
    fn condition_must_be_scalar() {
        assert!(err("struct S { int a; }; void f(struct S s) { if (s) {} }").contains("scalar"));
    }

    #[test]
    fn array_decays_in_conditions_and_args() {
        ok("void g(int *p) {} int a[4]; void f() { if (a) {} g(a); }");
    }
}
