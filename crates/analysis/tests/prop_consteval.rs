//! Cross-validation property: for randomly generated constant integer
//! expressions, the static evaluator ([`dse_analysis::const_eval`]) must
//! agree with actually executing the expression through the full pipeline
//! (parser → sema → lowering → VM). This pins the two integer semantics
//! (wrapping 64-bit arithmetic, masked shifts, C-style truncating casts)
//! to each other.

use dse_analysis::const_eval;
use dse_lang::ast::StmtKind;
use dse_runtime::{Value, Vm, VmConfig};
use proptest::prelude::*;

/// Generated constant expression, rendered to Cee source.
#[derive(Debug, Clone)]
enum CExpr {
    Lit(i32),
    SizeofInt,
    SizeofS,
    Neg(Box<CExpr>),
    Not(Box<CExpr>),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Div(Box<CExpr>, Box<CExpr>),
    Rem(Box<CExpr>, Box<CExpr>),
    Shl(Box<CExpr>, Box<CExpr>),
    Shr(Box<CExpr>, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Xor(Box<CExpr>, Box<CExpr>),
    CastChar(Box<CExpr>),
    CastInt(Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn render(&self) -> String {
        use CExpr::*;
        match self {
            Lit(v) => format!("{v}"),
            SizeofInt => "(long)sizeof(int)".into(),
            SizeofS => "(long)sizeof(struct S)".into(),
            Neg(a) => format!("(-{})", a.render()),
            Not(a) => format!("(~{})", a.render()),
            Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Div(a, b) => format!("({} / {})", a.render(), b.render()),
            Rem(a, b) => format!("({} % {})", a.render(), b.render()),
            Shl(a, b) => format!("({} << ({} & 31))", a.render(), b.render()),
            Shr(a, b) => format!("({} >> ({} & 31))", a.render(), b.render()),
            And(a, b) => format!("({} & {})", a.render(), b.render()),
            Or(a, b) => format!("({} | {})", a.render(), b.render()),
            Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            CastChar(a) => format!("((char){})", a.render()),
            CastInt(a) => format!("((int){})", a.render()),
            Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
        }
    }
}

fn cexpr_strategy() -> impl Strategy<Value = CExpr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(CExpr::Lit),
        Just(CExpr::SizeofInt),
        Just(CExpr::SizeofS),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| CExpr::Neg(Box::new(a))),
            inner.clone().prop_map(|a| CExpr::Not(Box::new(a))),
            inner.clone().prop_map(|a| CExpr::CastChar(Box::new(a))),
            inner.clone().prop_map(|a| CExpr::CastInt(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Shr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| CExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| CExpr::Ternary(Box::new(c), Box::new(t), Box::new(f))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn const_eval_agrees_with_execution(e in cexpr_strategy()) {
        let src = format!(
            "struct S {{ char c; long l; int i; }};
             long main() {{ return {}; }}",
            e.render()
        );
        let program = match dse_lang::compile_to_ast(&src) {
            Ok(p) => p,
            // Rendered literals can overflow `int` contexts etc.; those
            // are frontend rejections, not evaluator bugs.
            Err(_) => return Ok(()),
        };
        // Extract the return expression.
        let ret = {
            let f = program.function("main").expect("main exists");
            match &f.body.stmts[0].kind {
                StmtKind::Return(Some(e)) => e.clone(),
                _ => unreachable!("generated main has one return"),
            }
        };
        let static_val = const_eval(&ret, &program.types);
        let compiled = dse_ir::lower_program(&program, &Default::default()).unwrap();
        let mut vm = Vm::new(compiled, VmConfig::default()).unwrap();
        match (static_val, vm.run()) {
            (Some(expected), Ok(report)) => {
                prop_assert_eq!(
                    report.return_value,
                    Some(Value::I(expected)),
                    "src: {}", src
                );
            }
            (None, Err(err)) => {
                // Static "not constant" here can only mean division traps.
                prop_assert!(
                    err.msg.contains("division") || err.msg.contains("remainder"),
                    "const_eval gave up but VM said: {} ({})", err, src
                );
            }
            (None, Ok(_)) => {
                prop_assert!(false, "VM succeeded but const_eval returned None: {}", src);
            }
            (Some(v), Err(err)) => {
                prop_assert!(false, "const_eval said {} but VM trapped: {} ({})", v, err, src);
            }
        }
    }
}
