//! Cross-validation: for randomly generated constant integer expressions,
//! the static evaluator ([`dse_analysis::const_eval`]) must agree with
//! actually executing the expression through the full pipeline
//! (parser → sema → lowering → VM). This pins the two integer semantics
//! (wrapping 64-bit arithmetic, masked shifts, C-style truncating casts)
//! to each other. Cases come from the workspace's deterministic PRNG, so
//! failures reproduce exactly.

use dse_analysis::const_eval;
use dse_lang::ast::StmtKind;
use dse_runtime::{Value, Vm, VmConfig};
use dse_workloads::rng::Rng;

/// Generated constant expression, rendered to Cee source.
#[derive(Debug, Clone)]
enum CExpr {
    Lit(i32),
    SizeofInt,
    SizeofS,
    Neg(Box<CExpr>),
    Not(Box<CExpr>),
    Add(Box<CExpr>, Box<CExpr>),
    Sub(Box<CExpr>, Box<CExpr>),
    Mul(Box<CExpr>, Box<CExpr>),
    Div(Box<CExpr>, Box<CExpr>),
    Rem(Box<CExpr>, Box<CExpr>),
    Shl(Box<CExpr>, Box<CExpr>),
    Shr(Box<CExpr>, Box<CExpr>),
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Xor(Box<CExpr>, Box<CExpr>),
    CastChar(Box<CExpr>),
    CastInt(Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

impl CExpr {
    fn render(&self) -> String {
        use CExpr::*;
        match self {
            Lit(v) => format!("{v}"),
            SizeofInt => "(long)sizeof(int)".into(),
            SizeofS => "(long)sizeof(struct S)".into(),
            Neg(a) => format!("(-{})", a.render()),
            Not(a) => format!("(~{})", a.render()),
            Add(a, b) => format!("({} + {})", a.render(), b.render()),
            Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            Div(a, b) => format!("({} / {})", a.render(), b.render()),
            Rem(a, b) => format!("({} % {})", a.render(), b.render()),
            Shl(a, b) => format!("({} << ({} & 31))", a.render(), b.render()),
            Shr(a, b) => format!("({} >> ({} & 31))", a.render(), b.render()),
            And(a, b) => format!("({} & {})", a.render(), b.render()),
            Or(a, b) => format!("({} | {})", a.render(), b.render()),
            Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
            CastChar(a) => format!("((char){})", a.render()),
            CastInt(a) => format!("((int){})", a.render()),
            Ternary(c, t, f) => {
                format!("({} ? {} : {})", c.render(), t.render(), f.render())
            }
        }
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> CExpr {
    use CExpr::*;
    if depth == 0 || rng.gen_ratio(1, 4) {
        return match rng.gen_index(3) {
            0 => Lit(rng.next_u64() as i32),
            1 => SizeofInt,
            _ => SizeofS,
        };
    }
    let sub = |rng: &mut Rng| Box::new(gen_expr(rng, depth - 1));
    match rng.gen_index(15) {
        0 => Neg(sub(rng)),
        1 => Not(sub(rng)),
        2 => CastChar(sub(rng)),
        3 => CastInt(sub(rng)),
        4 => Add(sub(rng), sub(rng)),
        5 => Sub(sub(rng), sub(rng)),
        6 => Mul(sub(rng), sub(rng)),
        7 => Div(sub(rng), sub(rng)),
        8 => Rem(sub(rng), sub(rng)),
        9 => Shl(sub(rng), sub(rng)),
        10 => Shr(sub(rng), sub(rng)),
        11 => And(sub(rng), sub(rng)),
        12 => Or(sub(rng), sub(rng)),
        13 => Xor(sub(rng), sub(rng)),
        _ => Ternary(sub(rng), sub(rng), sub(rng)),
    }
}

#[test]
fn const_eval_agrees_with_execution() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xC0_E7A1 + case);
        let e = gen_expr(&mut rng, 4);
        let src = format!(
            "struct S {{ char c; long l; int i; }};
             long main() {{ return {}; }}",
            e.render()
        );
        let program = match dse_lang::compile_to_ast(&src) {
            Ok(p) => p,
            // Rendered literals can overflow `int` contexts etc.; those
            // are frontend rejections, not evaluator bugs.
            Err(_) => continue,
        };
        // Extract the return expression.
        let ret = {
            let f = program.function("main").expect("main exists");
            match &f.body.stmts[0].kind {
                StmtKind::Return(Some(e)) => e.clone(),
                _ => unreachable!("generated main has one return"),
            }
        };
        let static_val = const_eval(&ret, &program.types);
        let compiled = dse_ir::lower_program(&program, &Default::default()).unwrap();
        let mut vm = Vm::new(compiled, VmConfig::default()).unwrap();
        match (static_val, vm.run()) {
            (Some(expected), Ok(report)) => {
                assert_eq!(report.return_value, Some(Value::I(expected)), "src: {src}");
            }
            (None, Err(err)) => {
                // Static "not constant" here can only mean division traps.
                assert!(
                    err.msg.contains("division") || err.msg.contains("remainder"),
                    "const_eval gave up but VM said: {err} ({src})"
                );
            }
            (None, Ok(_)) => {
                panic!("VM succeeded but const_eval returned None: {src}");
            }
            (Some(v), Err(err)) => {
                panic!("const_eval said {v} but VM trapped: {err} ({src})");
            }
        }
    }
}
