//! Compile-time constant evaluation of integer expressions.
//!
//! Used to fold allocation sizes (`malloc(sizeof(struct S) * 8)`), which in
//! turn lets the expansion pass prove that every object a pointer may
//! reference has the same static size — eliminating span bookkeeping
//! (paper Section 3.4: "by constant propagation and copy propagation, p and
//! q may be found to always point to the same-sized data structure").

use dse_lang::ast::*;
use dse_lang::types::TypeTable;
use std::collections::HashMap;

/// Folds `e` to an integer constant if possible. Handles literals,
/// `sizeof`, unary minus/complement, and `+ - * / % << >> & | ^` over
/// constant operands.
pub fn const_eval(e: &Expr, types: &TypeTable) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::SizeofType(t) => Some(types.size_of(t) as i64),
        ExprKind::SizeofExpr(inner) => Some(types.size_of(inner.ty.as_ref()?) as i64),
        ExprKind::Unary(op, a) => {
            let v = const_eval(a, types)?;
            match op {
                UnOp::Neg => Some(v.wrapping_neg()),
                UnOp::BitNot => Some(!v),
                UnOp::Not => Some((v == 0) as i64),
            }
        }
        ExprKind::Cast(t, a) if t.is_integer() => {
            let v = const_eval(a, types)?;
            let w = types.size_of(t) as u32;
            if w >= 8 {
                Some(v)
            } else {
                let shift = 64 - w * 8;
                Some((v << shift) >> shift)
            }
        }
        ExprKind::Binary(op, l, r) => {
            let a = const_eval(l, types)?;
            let b = const_eval(r, types)?;
            match op {
                BinOp::Add => Some(a.wrapping_add(b)),
                BinOp::Sub => Some(a.wrapping_sub(b)),
                BinOp::Mul => Some(a.wrapping_mul(b)),
                BinOp::Div => a.checked_div(b),
                BinOp::Rem => a.checked_rem(b),
                BinOp::Shl => Some(a.wrapping_shl(b as u32 & 63)),
                BinOp::Shr => Some(a.wrapping_shr(b as u32 & 63)),
                BinOp::And => Some(a & b),
                BinOp::Or => Some(a | b),
                BinOp::Xor => Some(a ^ b),
                _ => None,
            }
        }
        ExprKind::Cond(c, t, f) => {
            let cv = const_eval(c, types)?;
            if cv != 0 {
                const_eval(t, types)
            } else {
                const_eval(f, types)
            }
        }
        _ => None,
    }
}

/// True when `ty` transitively contains a pointer, so `sizeof(ty)` may
/// change under pointer promotion (fat pointers grow memory cells).
pub fn type_contains_pointer(ty: &dse_lang::types::Type, types: &TypeTable) -> bool {
    use dse_lang::types::Type;
    match ty {
        Type::Pointer(_) => true,
        Type::Array(elem, _) => type_contains_pointer(elem, types),
        Type::Struct(id) => types
            .struct_def(*id)
            .fields
            .iter()
            .any(|f| type_contains_pointer(&f.ty, types)),
        _ => false,
    }
}

/// Constant-size information about one allocation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSizeInfo {
    /// Folded byte size, when constant.
    pub const_size: Option<u64>,
    /// True when the size expression mentions `sizeof` of a type whose
    /// layout may change under pointer promotion — such sizes cannot be
    /// used as compile-time spans.
    pub promotion_sensitive: bool,
}

fn expr_promotion_sensitive(e: &Expr, types: &TypeTable) -> bool {
    let mut sensitive = false;
    let mut probe = e.clone();
    visit_exprs(&mut probe, &mut |x| match &x.kind {
        ExprKind::SizeofType(t) => sensitive |= type_contains_pointer(t, types),
        ExprKind::SizeofExpr(inner) => {
            if let Some(t) = &inner.ty {
                sensitive |= type_contains_pointer(t, types);
            }
        }
        _ => {}
    });
    sensitive
}

/// Like [`alloc_const_sizes`], with promotion sensitivity per site.
pub fn alloc_size_infos(program: &Program) -> HashMap<u32, AllocSizeInfo> {
    let mut out = HashMap::new();
    let types = &program.types;
    let mut prog = program.clone();
    for f in &mut prog.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if let ExprKind::Call { name, args } = &e.kind {
                let (size, sensitive) = match name.as_str() {
                    "malloc" => (
                        args.first().and_then(|a| const_eval(a, types)),
                        args.first()
                            .is_some_and(|a| expr_promotion_sensitive(a, types)),
                    ),
                    "realloc" => (
                        args.get(1).and_then(|a| const_eval(a, types)),
                        args.get(1)
                            .is_some_and(|a| expr_promotion_sensitive(a, types)),
                    ),
                    "calloc" => {
                        let n = args.first().and_then(|a| const_eval(a, types));
                        let m = args.get(1).and_then(|a| const_eval(a, types));
                        let s = match (n, m) {
                            (Some(n), Some(m)) => n.checked_mul(m),
                            _ => None,
                        };
                        (s, args.iter().any(|a| expr_promotion_sensitive(a, types)))
                    }
                    _ => return,
                };
                out.insert(
                    e.eid,
                    AllocSizeInfo {
                        const_size: size.and_then(|s| u64::try_from(s).ok()),
                        promotion_sensitive: sensitive,
                    },
                );
            }
        });
    }
    out
}

/// For every allocation call in the program (`malloc`/`calloc`/`realloc`),
/// maps the call expression's id to its statically known size in bytes
/// (`None` when the size is not a compile-time constant).
pub fn alloc_const_sizes(program: &Program) -> HashMap<u32, Option<u64>> {
    let mut out = HashMap::new();
    let types = &program.types;
    let mut prog = program.clone();
    for f in &mut prog.functions {
        visit_exprs_in_block(&mut f.body, &mut |e| {
            if let ExprKind::Call { name, args } = &e.kind {
                let size = match name.as_str() {
                    "malloc" => args.first().and_then(|a| const_eval(a, types)),
                    "realloc" => args.get(1).and_then(|a| const_eval(a, types)),
                    "calloc" => {
                        let n = args.first().and_then(|a| const_eval(a, types));
                        let m = args.get(1).and_then(|a| const_eval(a, types));
                        match (n, m) {
                            (Some(n), Some(m)) => n.checked_mul(m),
                            _ => None,
                        }
                    }
                    _ => return,
                };
                out.insert(e.eid, size.and_then(|s| u64::try_from(s).ok()));
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::compile_to_ast;

    fn eval_ret(src_expr: &str) -> Option<i64> {
        let src =
            format!("struct S {{ char c; long l; }}; int main() {{ return (int)({src_expr}); }}");
        let p = compile_to_ast(&src).unwrap();
        let StmtKind::Return(Some(e)) = &p.functions[0].body.stmts[0].kind else {
            panic!()
        };
        let ExprKind::Cast(_, inner) = &e.kind else {
            panic!()
        };
        const_eval(inner, &p.types)
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(eval_ret("2 + 3 * 4"), Some(14));
        assert_eq!(eval_ret("(1 << 10) - 24"), Some(1000));
        assert_eq!(eval_ret("100 / 7"), Some(14));
        assert_eq!(eval_ret("-5 + ~0"), Some(-6));
    }

    #[test]
    fn folds_sizeof() {
        assert_eq!(eval_ret("sizeof(struct S)"), Some(16));
        assert_eq!(eval_ret("sizeof(int) * 10"), Some(40));
    }

    #[test]
    fn division_by_zero_is_not_constant() {
        assert_eq!(eval_ret("1 / 0"), None);
    }

    #[test]
    fn variables_are_not_constant() {
        let p = compile_to_ast("int main() { int n; n = 4; return n + 1; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.functions[0].body.stmts[2].kind else {
            panic!()
        };
        assert_eq!(const_eval(e, &p.types), None);
    }

    #[test]
    fn folds_constant_ternary() {
        assert_eq!(eval_ret("1 ? 7 : 9"), Some(7));
        assert_eq!(eval_ret("0 ? 7 : 9"), Some(9));
    }

    #[test]
    fn alloc_sizes_collected() {
        let p = compile_to_ast(
            "int main() { int n; n = in_len() > 0 ? 8 : 4;
               int *a; a = malloc(10 * sizeof(int));
               int *b; b = malloc((long)n * sizeof(int));
               long *c; c = calloc(4, sizeof(long));
               a = realloc(a, 80);
               free(a); free(b); free(c); return 0; }",
        )
        .unwrap();
        let sizes = alloc_const_sizes(&p);
        let mut vals: Vec<Option<u64>> = sizes.values().copied().collect();
        vals.sort();
        assert_eq!(sizes.len(), 4);
        assert_eq!(vals, vec![None, Some(32), Some(40), Some(80)]);
    }
}
