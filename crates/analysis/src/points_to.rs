//! Andersen-style points-to analysis over the typed Cee AST.
//!
//! Flow-insensitive, field-insensitive, interprocedural, with
//! allocation-site abstraction:
//!
//! * abstract objects ([`PtObj`]) are heap allocation sites (keyed by the
//!   `malloc`/`calloc`/`realloc` call expression id) and named variables
//!   (globals and locals, which become objects when their address is taken
//!   or when they are aggregates holding pointers);
//! * every object has a single *content* node summarizing all pointer
//!   values stored anywhere inside it (field-insensitivity — sound and
//!   sufficient for the expansion pass's "may this pointer reference an
//!   expanded structure?" queries);
//! * the inclusion constraints are solved with a standard worklist.
//!
//! The pass also records, for every memory-access expression, *how* it
//! addresses memory — directly through a named variable or through a
//! pointer value — so [`PointsTo::objects_of_site`] can answer "which
//! structures may this access site touch?" (the paper's alias-analysis
//! question in Section 3.4).

use dse_lang::ast::*;
use dse_lang::types::Type;
use std::collections::{HashMap, HashSet};

/// A named storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarId {
    /// Global by index.
    Global(usize),
    /// Function local by (function index, slot).
    Local(usize, usize),
}

/// An abstract memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PtObj {
    /// Heap object identified by its allocation call's expression id.
    Alloc(u32),
    /// A named variable (global or local).
    Var(VarId),
}

/// Internal constraint-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    /// The pointer value of a scalar variable.
    Var(VarId),
    /// The summarized pointer contents of an object.
    Content(PtObj),
    /// The return value of a function.
    Ret(usize),
    /// A temporary for an expression's pointer value.
    Temp(u32),
}

/// How a memory-access expression addresses storage.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SiteAddr {
    /// Directly names a variable (possibly through fields/indices of it).
    Direct(VarId),
    /// Dereferences the pointer value of this node.
    ViaPointer(Node),
}

/// Results of the analysis.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    pts: HashMap<u64, HashSet<PtObj>>,
    node_ids: HashMap<NodeKey, u64>,
    site_addr: HashMap<u32, SiteAddrPub>,
}

// Public mirror of SiteAddr using node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SiteAddrPub {
    Direct(VarId),
    Via(u64),
}

type NodeKey = Node;

impl PointsTo {
    /// The objects a variable's pointer value may reference.
    pub fn pts_of_var(&self, var: VarId) -> HashSet<PtObj> {
        self.node_ids
            .get(&Node::Var(var))
            .and_then(|id| self.pts.get(id))
            .cloned()
            .unwrap_or_default()
    }

    /// The objects stored (anywhere) inside `obj` may reference.
    pub fn pts_of_content(&self, obj: PtObj) -> HashSet<PtObj> {
        self.node_ids
            .get(&Node::Content(obj))
            .and_then(|id| self.pts.get(id))
            .cloned()
            .unwrap_or_default()
    }

    /// The structures the access expression `eid` may touch: a direct
    /// variable, or the points-to set of the dereferenced pointer.
    pub fn objects_of_site(&self, eid: u32) -> HashSet<PtObj> {
        match self.site_addr.get(&eid) {
            Some(SiteAddrPub::Direct(v)) => [PtObj::Var(*v)].into_iter().collect(),
            Some(SiteAddrPub::Via(node)) => self.pts.get(node).cloned().unwrap_or_default(),
            None => HashSet::new(),
        }
    }

    /// True when the access `eid` addresses memory through a pointer value
    /// (rather than naming a variable directly).
    pub fn site_is_indirect(&self, eid: u32) -> bool {
        matches!(self.site_addr.get(&eid), Some(SiteAddrPub::Via(_)))
    }
}

/// Runs the analysis over a type-checked program.
pub fn analyze(program: &Program) -> PointsTo {
    let mut cx = Cx {
        program,
        nodes: HashMap::new(),
        pts: Vec::new(),
        copies: Vec::new(),
        loads: Vec::new(),
        stores: Vec::new(),
        site_addr: HashMap::new(),
        next_temp: u32::MAX,
    };
    let mut prog = program.clone();
    for (fi, f) in prog.functions.iter_mut().enumerate() {
        cx.collect_block(fi, &mut f.body.clone());
        let _ = f;
    }
    cx.solve();
    let mut node_ids = HashMap::new();
    for (k, v) in &cx.nodes {
        node_ids.insert(*k, *v as u64);
    }
    PointsTo {
        pts: cx
            .pts
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.clone()))
            .collect(),
        node_ids,
        site_addr: cx
            .site_addr
            .iter()
            .map(|(eid, sa)| {
                let pubsa = match sa {
                    SiteAddr::Direct(v) => SiteAddrPub::Direct(*v),
                    SiteAddr::ViaPointer(n) => SiteAddrPub::Via(cx.nodes[n] as u64),
                };
                (*eid, pubsa)
            })
            .collect(),
    }
}

struct Cx<'a> {
    program: &'a Program,
    nodes: HashMap<Node, usize>,
    pts: Vec<HashSet<PtObj>>,
    /// src -> dst inclusion edges.
    copies: Vec<(usize, usize)>,
    /// (ptr node, dst node): dst ⊇ Content(o) for o in pts(ptr).
    loads: Vec<(usize, usize)>,
    /// (ptr node, src node): Content(o) ⊇ src for o in pts(ptr).
    stores: Vec<(usize, usize)>,
    site_addr: HashMap<u32, SiteAddr>,
    next_temp: u32,
}

impl<'a> Cx<'a> {
    fn node(&mut self, n: Node) -> usize {
        if let Some(&i) = self.nodes.get(&n) {
            return i;
        }
        let i = self.pts.len();
        self.nodes.insert(n, i);
        self.pts.push(HashSet::new());
        i
    }

    fn fresh_temp(&mut self) -> usize {
        self.next_temp -= 1;
        let t = self.next_temp;
        self.node(Node::Temp(t))
    }

    fn seed(&mut self, n: usize, o: PtObj) {
        self.pts[n].insert(o);
    }

    fn copy(&mut self, src: usize, dst: usize) {
        if src != dst {
            self.copies.push((src, dst));
        }
    }

    /// The content node of an object: for scalar pointer variables it *is*
    /// the variable's own node.
    fn content_node(&mut self, o: PtObj) -> usize {
        if let PtObj::Var(v) = o {
            if self.var_type(v).is_pointer() {
                return self.node(Node::Var(v));
            }
        }
        self.node(Node::Content(o))
    }

    fn var_type(&self, v: VarId) -> Type {
        match v {
            VarId::Global(g) => self.program.globals[g].ty.clone(),
            VarId::Local(f, s) => self.program.functions[f].locals[s].ty.clone(),
        }
    }

    // ---- collection -------------------------------------------------------

    fn collect_block(&mut self, func: usize, block: &mut Block) {
        let stmts = std::mem::take(&mut block.stmts);
        for mut s in stmts {
            self.collect_stmt(func, &mut s);
        }
    }

    fn collect_stmt(&mut self, func: usize, stmt: &mut Stmt) {
        match &mut stmt.kind {
            StmtKind::Decl { init, slot, .. } => {
                if let Some(e) = init {
                    let src = self.rvalue(func, e);
                    let dst = self.node(Node::Var(VarId::Local(func, slot.expect("sema"))));
                    self.copy(src, dst);
                    // Aggregates: the initializer's contents flow too.
                    if e.ty().is_aggregate() {
                        let obj = VarId::Local(func, slot.expect("sema"));
                        let c = self.content_node(PtObj::Var(obj));
                        self.copy(src, c);
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.rvalue(func, e);
            }
            StmtKind::If { cond, then, els } => {
                self.rvalue(func, cond);
                self.collect_block(func, then);
                if let Some(b) = els {
                    self.collect_block(func, b);
                }
            }
            StmtKind::While { cond, body, .. } => {
                self.rvalue(func, cond);
                self.collect_block(func, body);
            }
            StmtKind::DoWhile { body, cond, .. } => {
                self.collect_block(func, body);
                self.rvalue(func, cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(s) = init {
                    self.collect_stmt(func, s);
                }
                if let Some(c) = cond {
                    self.rvalue(func, c);
                }
                if let Some(s) = step {
                    self.rvalue(func, s);
                }
                self.collect_block(func, body);
            }
            StmtKind::Return(Some(e)) => {
                let src = self.rvalue(func, e);
                let r = self.node(Node::Ret(func));
                self.copy(src, r);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.collect_block(func, b),
        }
    }

    /// Processes an expression, returning the node holding its pointer
    /// r-value (a fresh empty temp for non-pointer results).
    fn rvalue(&mut self, func: usize, e: &Expr) -> usize {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::SizeofType(_) => {
                self.fresh_temp()
            }
            ExprKind::SizeofExpr(_) => self.fresh_temp(),
            ExprKind::Var { binding, .. } => {
                let v = self.binding_var(func, binding.expect("sema"));
                self.record_site(e.eid, SiteAddr::Direct(v));
                if e.ty().is_aggregate() {
                    // Decayed arrays / struct values: the "value" is the
                    // object's address for arrays; for our purposes the
                    // r-value points at the variable object itself when the
                    // type decays to a pointer.
                    let t = self.fresh_temp();
                    if matches!(e.ty(), Type::Array(..)) {
                        self.seed(t, PtObj::Var(v));
                    } else {
                        // struct value: its pointer contents flow on copy.
                        let c = self.content_node(PtObj::Var(v));
                        self.copy(c, t);
                    }
                    t
                } else {
                    self.node(Node::Var(v))
                }
            }
            ExprKind::Unary(_, a) => {
                self.rvalue(func, a);
                self.fresh_temp()
            }
            ExprKind::Binary(op, l, r) => {
                let ln = self.rvalue(func, l);
                let rn = self.rvalue(func, r);
                // Pointer arithmetic keeps pointing at the same objects.
                let t = self.fresh_temp();
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if l.ty().decayed().is_pointer() {
                        self.copy(ln, t);
                    }
                    if r.ty().decayed().is_pointer() {
                        self.copy(rn, t);
                    }
                }
                t
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                let src = self.rvalue(func, rhs);
                self.lvalue_store(func, lhs, src);
                src
            }
            ExprKind::Cond(c, a, b) => {
                self.rvalue(func, c);
                let an = self.rvalue(func, a);
                let bn = self.rvalue(func, b);
                let t = self.fresh_temp();
                self.copy(an, t);
                self.copy(bn, t);
                t
            }
            ExprKind::Call { name, args } => {
                let argn: Vec<usize> = args.iter().map(|a| self.rvalue(func, a)).collect();
                match name.as_str() {
                    "malloc" | "calloc" => {
                        let t = self.fresh_temp();
                        self.seed(t, PtObj::Alloc(e.eid));
                        t
                    }
                    "realloc" => {
                        let t = self.fresh_temp();
                        self.seed(t, PtObj::Alloc(e.eid));
                        // The old object's contents survive the move.
                        if let Some(&pn) = argn.first() {
                            let c = self.node(Node::Content(PtObj::Alloc(e.eid)));
                            self.loads.push((pn, c));
                        }
                        t
                    }
                    _ => {
                        if let Some(fi) =
                            self.program.functions.iter().position(|f| &f.name == name)
                        {
                            for (i, an) in argn.iter().enumerate() {
                                let p = self.node(Node::Var(VarId::Local(fi, i)));
                                self.copy(*an, p);
                            }
                            self.node(Node::Ret(fi))
                        } else {
                            // Other builtins return no pointers of interest.
                            self.fresh_temp()
                        }
                    }
                }
            }
            ExprKind::Index { .. } | ExprKind::Field { .. } => {
                // `base_object` distinguishes array bases (access stays in
                // the named object) from pointer bases (dereference).
                match self.base_object(func, e) {
                    Some(addr) => {
                        let sa = match &addr {
                            BaseAddr::Object(v) => SiteAddr::Direct(*v),
                            BaseAddr::Pointer(pn) => SiteAddr::ViaPointer(self.node_key(*pn)),
                        };
                        self.record_site(e.eid, sa);
                        self.read_through(addr, e.ty())
                    }
                    None => self.fresh_temp(),
                }
            }
            ExprKind::Deref(p) => {
                let pn = self.rvalue(func, p);
                self.record_site(e.eid, SiteAddr::ViaPointer(self.node_key(pn)));
                let t = self.fresh_temp();
                self.loads.push((pn, t));
                t
            }
            ExprKind::AddrOf(inner) => {
                let t = self.fresh_temp();
                match self.base_object(func, inner) {
                    Some(BaseAddr::Object(v)) => self.seed(t, PtObj::Var(v)),
                    Some(BaseAddr::Pointer(pn)) => self.copy(pn, t),
                    None => {}
                }
                t
            }
            ExprKind::Cast(_, a) => self.rvalue(func, a),
            ExprKind::IncDec { target, .. } => {
                // Reads and writes target; pointer value preserved.
                let addr = self.base_object(func, target);
                match addr {
                    Some(BaseAddr::Object(v)) => {
                        self.record_site(e.eid, SiteAddr::Direct(v));
                        self.node(Node::Var(v))
                    }
                    Some(BaseAddr::Pointer(pn)) => {
                        self.record_site(e.eid, SiteAddr::ViaPointer(self.node_key(pn)));
                        let t = self.fresh_temp();
                        self.loads.push((pn, t));
                        t
                    }
                    None => self.fresh_temp(),
                }
            }
        }
    }

    fn node_key(&self, idx: usize) -> Node {
        *self
            .nodes
            .iter()
            .find(|(_, &i)| i == idx)
            .map(|(k, _)| k)
            .expect("node exists")
    }

    fn record_site(&mut self, eid: u32, sa: SiteAddr) {
        self.site_addr.insert(eid, sa);
    }

    fn binding_var(&self, func: usize, b: VarBinding) -> VarId {
        match b {
            VarBinding::Global(g) => VarId::Global(g),
            VarBinding::Local(s) => VarId::Local(func, s),
        }
    }

    /// The pointer value flowing out of an Index/Field read, given how the
    /// access addressed memory.
    fn read_through(&mut self, addr: BaseAddr, result_ty: &Type) -> usize {
        if !result_ty.decayed().is_pointer() && !result_ty.is_aggregate() {
            return self.fresh_temp();
        }
        match addr {
            BaseAddr::Object(v) => {
                if matches!(result_ty, Type::Array(..)) {
                    // Address of a sub-array of the same object.
                    let t = self.fresh_temp();
                    self.seed(t, PtObj::Var(v));
                    t
                } else {
                    self.content_node(PtObj::Var(v))
                }
            }
            BaseAddr::Pointer(pn) => {
                let t = self.fresh_temp();
                self.loads.push((pn, t));
                t
            }
        }
    }

    /// Computes how an lvalue addresses storage: through a named object or
    /// through a pointer node. Also recursively processes index exprs.
    fn base_object(&mut self, func: usize, e: &Expr) -> Option<BaseAddr> {
        match &e.kind {
            ExprKind::Var { binding, .. } => Some(BaseAddr::Object(
                self.binding_var(func, binding.expect("sema")),
            )),
            ExprKind::Field { base, .. } => self.base_object(func, base),
            ExprKind::Index { base, index } => {
                self.rvalue(func, index);
                match base.ty() {
                    Type::Array(..) => self.base_object(func, base),
                    _ => {
                        let pn = self.rvalue(func, base);
                        Some(BaseAddr::Pointer(pn))
                    }
                }
            }
            ExprKind::Deref(p) => {
                let pn = self.rvalue(func, p);
                Some(BaseAddr::Pointer(pn))
            }
            _ => None,
        }
    }

    /// Emits constraints for a store of `src` into lvalue `lhs`, recording
    /// the store site's addressing mode.
    fn lvalue_store(&mut self, func: usize, lhs: &Expr, src: usize) {
        match self.base_object(func, lhs) {
            Some(BaseAddr::Object(v)) => {
                self.record_site(lhs.eid, SiteAddr::Direct(v));
                // Direct scalar pointer variable: copy into its node.
                if matches!(lhs.kind, ExprKind::Var { .. }) && lhs.ty().is_pointer() {
                    let d = self.node(Node::Var(v));
                    self.copy(src, d);
                } else if lhs.ty().decayed().is_pointer() || lhs.ty().is_aggregate() {
                    // Pointer stored inside an aggregate variable.
                    let c = self.content_node(PtObj::Var(v));
                    self.copy(src, c);
                }
            }
            Some(BaseAddr::Pointer(pn)) => {
                self.record_site(lhs.eid, SiteAddr::ViaPointer(self.node_key(pn)));
                if lhs.ty().decayed().is_pointer() || lhs.ty().is_aggregate() {
                    self.stores.push((pn, src));
                }
            }
            None => {}
        }
    }

    // ---- solving ----------------------------------------------------------

    fn solve(&mut self) {
        // Iterate to fixpoint: propagate copies, then expand load/store
        // constraints into new copies as points-to sets grow.
        let mut resolved_loads: HashSet<(usize, PtObj)> = HashSet::new();
        let mut resolved_stores: HashSet<(usize, PtObj)> = HashSet::new();
        loop {
            let mut changed = false;
            // Copy propagation to fixpoint (full sweeps; graphs are small).
            loop {
                let mut inner_changed = false;
                for &(src, dst) in &self.copies {
                    if src == dst {
                        continue;
                    }
                    let add: Vec<PtObj> =
                        self.pts[src].difference(&self.pts[dst]).copied().collect();
                    if !add.is_empty() {
                        inner_changed = true;
                        self.pts[dst].extend(add);
                    }
                }
                if !inner_changed {
                    break;
                }
            }
            // Expand complex constraints.
            let loads = self.loads.clone();
            for (pn, dst) in loads {
                let objs: Vec<PtObj> = self.pts[pn].iter().copied().collect();
                for o in objs {
                    if resolved_loads.insert((dst, o)) {
                        let c = self.content_node(o);
                        self.copy(c, dst);
                        changed = true;
                    }
                }
            }
            let stores = self.stores.clone();
            for (pn, src) in stores {
                let objs: Vec<PtObj> = self.pts[pn].iter().copied().collect();
                for o in objs {
                    if resolved_stores.insert((src, o)) {
                        let c = self.content_node(o);
                        self.copy(src, c);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// How an lvalue addresses storage.
enum BaseAddr {
    /// A named object (variable), possibly through fields/indices.
    Object(VarId),
    /// Through the pointer value in this node.
    Pointer(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::compile_to_ast;

    /// Runs the analysis and returns (program, points-to).
    fn pt(src: &str) -> (Program, PointsTo) {
        let p = compile_to_ast(src).unwrap();
        let r = analyze(&p);
        (p, r)
    }

    /// eid of the first `Var` expression named `name` (in program order).
    fn var_eid(p: &Program, name: &str) -> u32 {
        let mut found = None;
        let mut prog = p.clone();
        for f in &mut prog.functions {
            visit_exprs_in_block(&mut f.body, &mut |e| {
                if found.is_none() {
                    if let ExprKind::Var { name: n, .. } = &e.kind {
                        if n == name {
                            found = Some(e.eid);
                        }
                    }
                }
            });
        }
        found.unwrap()
    }

    /// All alloc-call eids in order.
    fn alloc_eids(p: &Program) -> Vec<u32> {
        let mut out = Vec::new();
        let mut prog = p.clone();
        for f in &mut prog.functions {
            visit_exprs_in_block(&mut f.body, &mut |e| {
                if let ExprKind::Call { name, .. } = &e.kind {
                    if matches!(name.as_str(), "malloc" | "calloc" | "realloc") {
                        out.push(e.eid);
                    }
                }
            });
        }
        out
    }

    #[test]
    fn direct_malloc_assignment() {
        let (p, r) = pt("int main() { int *q; q = malloc(8); free(q); return 0; }");
        let allocs = alloc_eids(&p);
        let f = p.functions.iter().position(|f| f.name == "main").unwrap();
        let slot_q = 0;
        let pts = r.pts_of_var(VarId::Local(f, slot_q));
        assert_eq!(pts, [PtObj::Alloc(allocs[0])].into_iter().collect());
    }

    #[test]
    fn copy_and_conditional_union() {
        let (p, r) = pt("int main(){ int *a; int *b; int *c; int cond; cond = 1;
               a = malloc(4); b = malloc(4);
               c = cond ? a : b;
               free(a); free(b); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_c = r.pts_of_var(VarId::Local(0, 2));
        assert!(pts_c.contains(&PtObj::Alloc(allocs[0])));
        assert!(pts_c.contains(&PtObj::Alloc(allocs[1])));
    }

    #[test]
    fn address_of_variable() {
        let (p, r) = pt("int main() { int x; int *p; p = &x; *p = 1; return x; }");
        let f = 0;
        let pts = r.pts_of_var(VarId::Local(f, 1));
        assert_eq!(pts, [PtObj::Var(VarId::Local(f, 0))].into_iter().collect());
        let _ = p;
    }

    #[test]
    fn pointer_arithmetic_preserves_targets() {
        let (p, r) =
            pt("int main() { int *a; int *b; a = malloc(40); b = a + 3; free(a); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_b = r.pts_of_var(VarId::Local(0, 1));
        assert_eq!(pts_b, [PtObj::Alloc(allocs[0])].into_iter().collect());
    }

    #[test]
    fn interprocedural_param_and_return() {
        let (p, r) = pt("int *ident(int *x) { return x; }
             int main() { int *a; int *b; a = malloc(8); b = ident(a);
               free(a); return 0; }");
        let allocs = alloc_eids(&p);
        let main_idx = 1;
        let pts_b = r.pts_of_var(VarId::Local(main_idx, 1));
        assert!(pts_b.contains(&PtObj::Alloc(allocs[0])));
    }

    #[test]
    fn pointer_stored_in_struct_field_flows_out() {
        let (p, r) = pt("struct Holder { int *ptr; };
             int main() { struct Holder h; int *a; int *b;
               a = malloc(8); h.ptr = a; b = h.ptr;
               free(b); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_b = r.pts_of_var(VarId::Local(0, 2));
        assert!(pts_b.contains(&PtObj::Alloc(allocs[0])));
    }

    #[test]
    fn pointer_stored_through_heap_flows_out() {
        let (p, r) = pt("int main() { int **table; int *a; int *b;
               table = malloc(8 * sizeof(int*));
               a = malloc(8);
               table[0] = a;
               b = table[0];
               free(a); free(table); return 0; }");
        let allocs = alloc_eids(&p);
        // b may point to the `a` allocation (allocs[1]).
        let pts_b = r.pts_of_var(VarId::Local(0, 2));
        assert!(pts_b.contains(&PtObj::Alloc(allocs[1])), "{pts_b:?}");
    }

    #[test]
    fn linked_list_next_chain() {
        let (p, r) = pt("struct Node { int v; struct Node *next; };
             int main() {
               struct Node *head; head = 0;
               for (int i = 0; i < 4; i++) {
                 struct Node *n; n = malloc(sizeof(struct Node));
                 n->next = head; head = n;
               }
               struct Node *walk; walk = head->next;
               return 0; }");
        let allocs = alloc_eids(&p);
        // walk reaches the single allocation site through the next field.
        let slot_walk = 3;
        let pts_w = r.pts_of_var(VarId::Local(0, slot_walk));
        assert!(pts_w.contains(&PtObj::Alloc(allocs[0])), "{pts_w:?}");
    }

    #[test]
    fn site_objects_direct_and_indirect() {
        let (p, r) = pt("int g; int main() { int *p; p = malloc(8); *p = g; free(p); return 0; }");
        let allocs = alloc_eids(&p);
        let g_eid = var_eid(&p, "g");
        assert_eq!(
            r.objects_of_site(g_eid),
            [PtObj::Var(VarId::Global(0))].into_iter().collect()
        );
        assert!(!r.site_is_indirect(g_eid));
        // Find the `*p` store site: the Deref expression.
        let mut deref_eid = None;
        let mut prog = p.clone();
        visit_exprs_in_block(&mut prog.functions[0].body, &mut |e| {
            if matches!(e.kind, ExprKind::Deref(_)) {
                deref_eid = Some(e.eid);
            }
        });
        let d = deref_eid.unwrap();
        assert!(r.site_is_indirect(d));
        assert_eq!(
            r.objects_of_site(d),
            [PtObj::Alloc(allocs[0])].into_iter().collect()
        );
    }

    #[test]
    fn two_allocation_sites_hmmer_pattern() {
        // The 456.hmmer motivating example: mx may point to either of two
        // different-sized allocations.
        let (p, r) = pt("int main() { int *mx; int c; c = 1;
               if (c) { mx = malloc(100); }
               else { mx = malloc(200); }
               mx[3] = 0;
               free(mx); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_mx = r.pts_of_var(VarId::Local(0, 0));
        assert_eq!(pts_mx.len(), 2);
        assert!(pts_mx.contains(&PtObj::Alloc(allocs[0])));
        assert!(pts_mx.contains(&PtObj::Alloc(allocs[1])));
    }

    #[test]
    fn unrelated_pointers_do_not_alias() {
        let (p, r) = pt("int main() { int *a; int *b; a = malloc(8); b = malloc(8);
               free(a); free(b); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_a = r.pts_of_var(VarId::Local(0, 0));
        let pts_b = r.pts_of_var(VarId::Local(0, 1));
        assert_eq!(pts_a, [PtObj::Alloc(allocs[0])].into_iter().collect());
        assert_eq!(pts_b, [PtObj::Alloc(allocs[1])].into_iter().collect());
    }

    #[test]
    fn global_pointer_variable() {
        let (p, r) = pt("int *gp; int main() { gp = malloc(16); gp[0] = 1; free(gp); return 0; }");
        let allocs = alloc_eids(&p);
        let pts = r.pts_of_var(VarId::Global(0));
        assert_eq!(pts, [PtObj::Alloc(allocs[0])].into_iter().collect());
    }

    #[test]
    fn realloc_creates_new_site_preserving_contents() {
        let (p, r) = pt("int main() { int **t; t = malloc(8 * sizeof(int*));
               int *a; a = malloc(8); t[0] = a;
               t = realloc(t, 16 * sizeof(int*));
               int *b; b = t[0];
               free(a); free(t); return 0; }");
        let allocs = alloc_eids(&p);
        let pts_b = r.pts_of_var(VarId::Local(0, 2));
        // b reads through the realloc'd table; the `a` allocation must
        // still be reachable.
        assert!(pts_b.contains(&PtObj::Alloc(allocs[1])), "{pts_b:?}");
        let _ = allocs;
    }
}
