//! # dse-analysis — static analyses supporting the expansion pass
//!
//! Section 3.4 of the paper lowers the overhead of data structure
//! expansion with classic compiler analyses:
//!
//! * **alias analysis** decides which data structures are referenced by
//!   private accesses (so everything else is *not* expanded and its
//!   pointers are *not* promoted), and
//! * **constant/copy propagation** discovers pointers whose span is a
//!   compile-time constant, eliminating the fat-pointer bookkeeping.
//!
//! This crate provides those two foundations:
//!
//! * [`points_to`] — a flow-insensitive, field-insensitive, inclusion-based
//!   (Andersen-style) interprocedural points-to analysis over the typed
//!   Cee AST, with allocation-site abstraction.
//! * [`consteval`] — compile-time constant folding for allocation-size
//!   expressions (`sizeof` is already folded by the type table).

pub mod consteval;
pub mod points_to;

pub use consteval::{alloc_const_sizes, const_eval};
pub use points_to::{analyze, PointsTo, PtObj, VarId};
