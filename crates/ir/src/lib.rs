//! # dse-ir — mid-level IR and bytecode for the expansion compiler
//!
//! This crate is the GIMPLE stand-in of the reproduction: it lowers a typed
//! Cee AST (from [`dse_lang`]) to a stack-based **bytecode** executed by the
//! `dse-runtime` VM, while assigning every static memory access a stable
//! **site id** keyed by the AST expression id. Those sites are the vertices
//! of the paper's loop-level data dependence graph (Definition 1).
//!
//! Main entry points:
//!
//! * [`lower::lower_program`] — compile a program; [`lower::LowerOptions`]
//!   selects *serial* lowering (the original program, with loop markers for
//!   the dependence profiler) or *parallel* lowering (candidate loops become
//!   [`bytecode::Instr::ParLoop`] regions with DOALL/DOACROSS scheduling and
//!   post/wait synchronization).
//! * [`loops::find_candidate_loops`] — discover and validate the loops
//!   marked `#pragma candidate`.
//! * [`sites::SiteTable`] — the static access sites of the compiled program.

pub mod bytecode;
pub mod disasm;
pub mod loops;
pub mod lower;
pub mod regcode;
pub mod sites;

pub use bytecode::{CompiledProgram, Instr};
pub use loops::{CandidateLoop, ParMode};
pub use lower::{lower_program, LowerError, LowerMode, LowerOptions, ParLoopSpec};
pub use regcode::{
    analyze_stack, builtin_sig, for_each_dst, for_each_src, promotion_plan, pure_dst, AccessShape,
    PromotionPlan, RInstr, Reg, RegLowerError, RegProgram, Slot, StackFlow, Ty, NO_OWNER,
};
pub use sites::{AccessKind, SiteId, SiteInfo, SiteTable, NO_SITE};
