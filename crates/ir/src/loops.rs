//! Candidate-loop discovery and validation.
//!
//! The paper selects "promising loops" by profiling; in this reproduction a
//! loop is nominated with `#pragma candidate [label]` in the Cee source.
//! A candidate loop must be a normalized counted `for` loop so the parallel
//! scheduler can distribute its iteration space:
//!
//! * `for (i = lo; i < hi; i++)` (or `<=`, or `i = i + 1`, `i += 1`),
//! * the bound expression is side-effect free,
//! * the body never writes or takes the address of the induction variable,
//! * the body contains no `return` and no `break` that would exit the
//!   candidate loop (inner loops may `break`; `continue` is allowed).

use dse_lang::ast::*;

use std::fmt;

/// Parallel scheduling mode for a candidate loop (paper Section 4.3:
/// DOALL uses static chunking, DOACROSS dynamic chunks of one iteration
/// with cross-iteration post/wait ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParMode {
    /// Independent iterations; static chunk scheduling.
    DoAll,
    /// Cross-iteration ordering required; dynamic scheduling, chunk = 1.
    DoAcross,
}

impl fmt::Display for ParMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParMode::DoAll => write!(f, "DOALL"),
            ParMode::DoAcross => write!(f, "DOACROSS"),
        }
    }
}

/// A validated candidate loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateLoop {
    /// Label from the pragma, or `"<func>#<n>"` if none was given.
    pub label: String,
    /// Index of the containing function in the program.
    pub func: u32,
    /// Ordinal of this candidate in program order (used to match the
    /// lowering walk with this discovery walk).
    pub ordinal: usize,
    /// Local slot of the induction variable.
    pub induction_slot: usize,
    /// Loop nesting level within its function (1 = outermost).
    pub level: u32,
}

/// A candidate-loop validation error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateError(pub String);

impl fmt::Display for CandidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid candidate loop: {}", self.0)
    }
}

impl std::error::Error for CandidateError {}

/// Finds all `#pragma candidate` loops in the program, validating their
/// normalized form.
///
/// # Errors
///
/// Returns a [`CandidateError`] naming the first violated rule.
pub fn find_candidate_loops(program: &Program) -> Result<Vec<CandidateLoop>, CandidateError> {
    let mut out = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        scan_block(&f.body, fi as u32, f, 0, &mut out)?;
    }
    // Synthesize labels and check uniqueness.
    let mut seen = std::collections::HashSet::new();
    for c in &mut out {
        if c.label.is_empty() {
            c.label = format!("{}#{}", program.functions[c.func as usize].name, c.ordinal);
        }
        if !seen.insert(c.label.clone()) {
            return Err(CandidateError(format!(
                "duplicate loop label `{}`",
                c.label
            )));
        }
    }
    Ok(out)
}

fn scan_block(
    block: &Block,
    func: u32,
    f: &Function,
    loop_depth: u32,
    out: &mut Vec<CandidateLoop>,
) -> Result<(), CandidateError> {
    for stmt in &block.stmts {
        scan_stmt(stmt, func, f, loop_depth, out)?;
    }
    Ok(())
}

fn scan_stmt(
    stmt: &Stmt,
    func: u32,
    f: &Function,
    loop_depth: u32,
    out: &mut Vec<CandidateLoop>,
) -> Result<(), CandidateError> {
    match &stmt.kind {
        StmtKind::If { then, els, .. } => {
            scan_block(then, func, f, loop_depth, out)?;
            if let Some(b) = els {
                scan_block(b, func, f, loop_depth, out)?;
            }
        }
        StmtKind::While { body, mark, .. } | StmtKind::DoWhile { body, mark, .. } => {
            if mark.candidate {
                return Err(CandidateError(format!(
                    "loop `{}` in `{}`: only normalized `for` loops can be candidates",
                    mark.label.clone().unwrap_or_default(),
                    f.name
                )));
            }
            scan_block(body, func, f, loop_depth + 1, out)?;
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
            mark,
        } => {
            if mark.candidate {
                let cand = validate_candidate(
                    init.as_deref(),
                    cond.as_ref(),
                    step.as_ref(),
                    body,
                    mark,
                    func,
                    f,
                    loop_depth + 1,
                    out.len(),
                )?;
                out.push(cand);
            }
            scan_block(body, func, f, loop_depth + 1, out)?;
        }
        StmtKind::Block(b) => scan_block(b, func, f, loop_depth, out)?,
        _ => {}
    }
    Ok(())
}

/// Extracts the induction slot from a `for` init statement.
pub fn induction_slot_of_init(init: Option<&Stmt>) -> Option<usize> {
    match init.map(|s| &s.kind) {
        Some(StmtKind::Decl {
            slot: Some(slot),
            init: Some(_),
            ..
        }) => Some(*slot),
        Some(StmtKind::Expr(e)) => match &e.kind {
            ExprKind::Assign {
                op: AssignOp::Set,
                lhs,
                ..
            } => match &lhs.kind {
                ExprKind::Var {
                    binding: Some(VarBinding::Local(slot)),
                    ..
                } => Some(*slot),
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Checks the condition has the form `i < bound` or `i <= bound` for the
/// given induction slot; returns `(bound_expr, inclusive)`.
pub fn bound_of_cond(cond: &Expr, slot: usize) -> Option<(&Expr, bool)> {
    let ExprKind::Binary(op, l, r) = &cond.kind else {
        return None;
    };
    let inclusive = match op {
        BinOp::Lt => false,
        BinOp::Le => true,
        _ => return None,
    };
    match &l.kind {
        ExprKind::Var {
            binding: Some(VarBinding::Local(s)),
            ..
        } if *s == slot => Some((r, inclusive)),
        _ => None,
    }
}

/// Checks the step is `i++`, `++i`, `i += 1` or `i = i + 1`.
pub fn step_is_unit_increment(step: &Expr, slot: usize) -> bool {
    let is_i = |e: &Expr| {
        matches!(
            &e.kind,
            ExprKind::Var { binding: Some(VarBinding::Local(s)), .. } if *s == slot
        )
    };
    match &step.kind {
        ExprKind::IncDec {
            inc: true, target, ..
        } => is_i(target),
        ExprKind::Assign {
            op: AssignOp::Compound(BinOp::Add),
            lhs,
            rhs,
        } => is_i(lhs) && matches!(rhs.kind, ExprKind::IntLit(1)),
        ExprKind::Assign {
            op: AssignOp::Set,
            lhs,
            rhs,
        } => {
            if !is_i(lhs) {
                return false;
            }
            match &rhs.kind {
                ExprKind::Binary(BinOp::Add, a, b) => {
                    (is_i(a) && matches!(b.kind, ExprKind::IntLit(1)))
                        || (is_i(b) && matches!(a.kind, ExprKind::IntLit(1)))
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// True if the expression is free of side effects (no assignments,
/// increments, or calls).
pub fn expr_is_pure(e: &Expr) -> bool {
    let mut pure = true;
    let mut probe = e.clone();
    visit_exprs(&mut probe, &mut |x| {
        if matches!(
            x.kind,
            ExprKind::Assign { .. } | ExprKind::IncDec { .. } | ExprKind::Call { .. }
        ) {
            pure = false;
        }
    });
    pure
}

#[allow(clippy::too_many_arguments)]
fn validate_candidate(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    body: &Block,
    mark: &LoopMark,
    func: u32,
    f: &Function,
    level: u32,
    ordinal: usize,
) -> Result<CandidateLoop, CandidateError> {
    let name = mark
        .label
        .clone()
        .unwrap_or_else(|| format!("{}#{ordinal}", f.name));
    let fail = |msg: &str| CandidateError(format!("loop `{name}` in `{}`: {msg}", f.name));

    let slot = induction_slot_of_init(init)
        .ok_or_else(|| fail("init must assign the induction variable"))?;
    if !f.locals[slot].ty.is_integer() {
        return Err(fail("induction variable must have integer type"));
    }
    let cond = cond.ok_or_else(|| fail("missing condition"))?;
    let (bound, _) = bound_of_cond(cond, slot)
        .ok_or_else(|| fail("condition must be `i < bound` or `i <= bound`"))?;
    if !expr_is_pure(bound) {
        return Err(fail("loop bound must be side-effect free"));
    }
    let step = step.ok_or_else(|| fail("missing step"))?;
    if !step_is_unit_increment(step, slot) {
        return Err(fail("step must increment the induction variable by 1"));
    }
    check_body_stmts(body, slot, true, &fail)?;
    Ok(CandidateLoop {
        label: mark.label.clone().unwrap_or_default(),
        func,
        ordinal,
        induction_slot: slot,
        level,
    })
}

/// Recursively validates candidate-body statements. `top` tracks whether a
/// `break` here would exit the candidate loop itself.
fn check_body_stmts(
    block: &Block,
    ind_slot: usize,
    top: bool,
    fail: &dyn Fn(&str) -> CandidateError,
) -> Result<(), CandidateError> {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::Break if top => {
                return Err(fail("body must not break out of the candidate loop"))
            }
            StmtKind::Return(_) => {
                return Err(fail("body must not return from the enclosing function"))
            }
            StmtKind::If { cond, then, els } => {
                check_expr_uses(cond, ind_slot, fail)?;
                check_body_stmts(then, ind_slot, top, fail)?;
                if let Some(b) = els {
                    check_body_stmts(b, ind_slot, top, fail)?;
                }
            }
            StmtKind::While { cond, body, .. } => {
                check_expr_uses(cond, ind_slot, fail)?;
                check_body_stmts(body, ind_slot, false, fail)?;
            }
            StmtKind::DoWhile { body, cond, .. } => {
                check_body_stmts(body, ind_slot, false, fail)?;
                check_expr_uses(cond, ind_slot, fail)?;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(s) = init {
                    check_stmt_exprs(s, ind_slot, fail)?;
                }
                if let Some(c) = cond {
                    check_expr_uses(c, ind_slot, fail)?;
                }
                if let Some(s) = step {
                    check_expr_uses(s, ind_slot, fail)?;
                }
                check_body_stmts(body, ind_slot, false, fail)?;
            }
            StmtKind::Block(b) => check_body_stmts(b, ind_slot, top, fail)?,
            _ => check_stmt_exprs(stmt, ind_slot, fail)?,
        }
    }
    Ok(())
}

fn check_stmt_exprs(
    stmt: &Stmt,
    ind_slot: usize,
    fail: &dyn Fn(&str) -> CandidateError,
) -> Result<(), CandidateError> {
    let mut err = None;
    let mut probe = stmt.clone();
    visit_exprs_in_stmt(&mut probe, &mut |e| {
        if err.is_none() {
            if let Some(m) = induction_misuse(e, ind_slot) {
                err = Some(m);
            }
        }
    });
    match err {
        Some(m) => Err(fail(m)),
        None => Ok(()),
    }
}

fn check_expr_uses(
    e: &Expr,
    ind_slot: usize,
    fail: &dyn Fn(&str) -> CandidateError,
) -> Result<(), CandidateError> {
    let mut err = None;
    let mut probe = e.clone();
    visit_exprs(&mut probe, &mut |x| {
        if err.is_none() {
            if let Some(m) = induction_misuse(x, ind_slot) {
                err = Some(m);
            }
        }
    });
    match err {
        Some(m) => Err(fail(m)),
        None => Ok(()),
    }
}

fn induction_misuse(e: &Expr, ind_slot: usize) -> Option<&'static str> {
    let is_i = |x: &Expr| {
        matches!(
            &x.kind,
            ExprKind::Var { binding: Some(VarBinding::Local(s)), .. } if *s == ind_slot
        )
    };
    match &e.kind {
        ExprKind::Assign { lhs, .. } if is_i(lhs) => {
            Some("body must not assign the induction variable")
        }
        ExprKind::IncDec { target, .. } if is_i(target) => {
            Some("body must not increment the induction variable")
        }
        ExprKind::AddrOf(inner) if is_i(inner) => {
            Some("body must not take the address of the induction variable")
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::compile_to_ast;

    fn find(src: &str) -> Result<Vec<CandidateLoop>, CandidateError> {
        find_candidate_loops(&compile_to_ast(src).unwrap())
    }

    #[test]
    fn finds_labeled_candidate() {
        let c = find(
            "void f() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 10; i++) { s = s + i; } }",
        )
        .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].label, "hot");
        assert_eq!(c[0].level, 1);
        assert_eq!(c[0].induction_slot, 1);
    }

    #[test]
    fn synthesizes_label_when_missing() {
        let c = find(
            "void f() {
               #pragma candidate
               for (int i = 0; i < 10; i++) { } }",
        )
        .unwrap();
        assert_eq!(c[0].label, "f#0");
    }

    #[test]
    fn nested_candidate_level() {
        let c = find(
            "void f() { for (int j = 0; j < 3; j++) {
               #pragma candidate inner
               for (int i = 0; i < 10; i++) { } } }",
        )
        .unwrap();
        assert_eq!(c[0].level, 2);
    }

    #[test]
    fn all_step_forms_accepted() {
        for step in ["i++", "++i", "i += 1", "i = i + 1", "i = 1 + i"] {
            let src =
                format!("void f() {{ #pragma candidate\nfor (int i = 0; i < 4; {step}) {{ }} }}");
            assert!(find(&src).is_ok(), "step form {step}");
        }
    }

    #[test]
    fn le_bound_accepted() {
        assert!(
            find("void f(int n) { #pragma candidate\nfor (int i = 0; i <= n; i++) { } }").is_ok()
        );
    }

    #[test]
    fn while_candidate_rejected() {
        let e = find("void f() { #pragma candidate\nwhile (1) { break; } }").unwrap_err();
        assert!(e.0.contains("normalized `for`"));
    }

    #[test]
    fn break_in_candidate_rejected() {
        let e = find("void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) { break; } }")
            .unwrap_err();
        assert!(e.0.contains("break"));
    }

    #[test]
    fn break_in_inner_loop_allowed() {
        assert!(find(
            "void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) {
               while (1) { break; } } }"
        )
        .is_ok());
    }

    #[test]
    fn continue_in_candidate_allowed() {
        assert!(find(
            "void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) {
               if (i == 2) { continue; } } }"
        )
        .is_ok());
    }

    #[test]
    fn return_in_candidate_rejected() {
        let e = find("void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) { return; } }")
            .unwrap_err();
        assert!(e.0.contains("return"));
    }

    #[test]
    fn induction_write_rejected() {
        let e = find("void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) { i = 0; } }")
            .unwrap_err();
        assert!(e.0.contains("assign the induction"));
    }

    #[test]
    fn induction_addrof_rejected() {
        let e =
            find("void f() { int *p; #pragma candidate\nfor (int i = 0; i < 4; i++) { p = &i; } }")
                .unwrap_err();
        assert!(e.0.contains("address of the induction"));
    }

    #[test]
    fn induction_incdec_in_body_rejected() {
        let e = find("void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) { i++; } }")
            .unwrap_err();
        assert!(e.0.contains("increment the induction"));
    }

    #[test]
    fn shadowed_variable_writes_allowed() {
        // The inner `i` is a different slot; writing it is fine.
        assert!(find(
            "void f() { #pragma candidate\nfor (int i = 0; i < 4; i++) {
               { int i = 0; i = i + 1; } } }"
        )
        .is_ok());
    }

    #[test]
    fn impure_bound_rejected() {
        let e = find(
            "int g() { return 3; } void f() {
               #pragma candidate\nfor (int i = 0; i < g(); i++) { } }",
        )
        .unwrap_err();
        assert!(e.0.contains("side-effect free"));
    }

    #[test]
    fn non_unit_step_rejected() {
        let e =
            find("void f() { #pragma candidate\nfor (int i = 0; i < 4; i += 2) { } }").unwrap_err();
        assert!(e.0.contains("increment the induction variable by 1"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = find(
            "void f() { #pragma candidate x\nfor (int i = 0; i < 4; i++) { }
               #pragma candidate x\nfor (int j = 0; j < 4; j++) { } }",
        )
        .unwrap_err();
        assert!(e.0.contains("duplicate"));
    }

    #[test]
    fn float_induction_rejected() {
        let e = find("void f() { #pragma candidate\nfor (float i = 0; i < 4; i = i + 1) { } }")
            .unwrap_err();
        assert!(e.0.contains("integer type"));
    }

    #[test]
    fn two_candidates_in_one_function() {
        let c = find(
            "void f() { #pragma candidate a\nfor (int i = 0; i < 4; i++) { }
               #pragma candidate b\nfor (int j = 0; j < 4; j++) { } }",
        )
        .unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].label, "a");
        assert_eq!(c[1].label, "b");
        assert_eq!(c[1].ordinal, 1);
    }
}
