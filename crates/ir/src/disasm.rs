//! Bytecode disassembler: a readable listing of a compiled program with
//! function/loop-region boundaries and site annotations (`dsec --emit
//! bytecode` uses it; tests use it to assert code shapes).

use crate::bytecode::*;
use std::fmt::Write;

/// Renders the whole program as an annotated listing.
pub fn disassemble(p: &CompiledProgram) -> String {
    let mut out = String::new();
    // Region labels by entry pc.
    let mut labels: Vec<(Pc, String)> = p
        .funcs
        .iter()
        .map(|f| (f.entry, format!("fn {}(frame {}B)", f.name, f.frame_size)))
        .collect();
    for (i, l) in p.loops.iter().enumerate() {
        if l.mode.is_some() {
            labels.push((
                l.body_entry,
                format!("loop body `{}` (#{}, {:?})", l.label, i, l.mode),
            ));
        }
    }
    labels.sort();
    let mut next_label = 0usize;
    for (pc, instr) in p.code.iter().enumerate() {
        while next_label < labels.len() && labels[next_label].0 as usize == pc {
            let _ = writeln!(out, "{}:", labels[next_label].1);
            next_label += 1;
        }
        let _ = writeln!(out, "  {pc:5}  {}", render_instr(p, *instr));
    }
    out
}

/// Renders one instruction with site annotations.
pub fn render_instr(p: &CompiledProgram, i: Instr) -> String {
    let site = |s: u32| -> String {
        if s == crate::sites::NO_SITE {
            String::new()
        } else {
            let info = p.sites.info(s);
            format!(
                "  ; site {s} ({:?} eid {} @{})",
                info.kind, info.eid, info.span
            )
        }
    };
    match i {
        Instr::Load {
            width,
            is_float,
            site: s,
        } => {
            format!(
                "Load{}{}{}",
                width,
                if is_float { "f" } else { "" },
                site(s)
            )
        }
        Instr::Store {
            width,
            is_float,
            site: s,
        } => {
            format!(
                "Store{}{}{}",
                width,
                if is_float { "f" } else { "" },
                site(s)
            )
        }
        Instr::MemCpy {
            size,
            load_site,
            store_site,
        } => {
            format!("MemCpy {size}B{}{}", site(load_site), site(store_site))
        }
        Instr::Localize { site: s } => format!("Localize{}", site(s)),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::ParMode;
    use crate::lower::{LowerMode, LowerOptions, ParLoopSpec};

    #[test]
    fn listing_marks_functions_and_loop_bodies() {
        let ast = dse_lang::compile_to_ast(
            "int helper(int x) { return x + 1; }
             int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 4; i++) { s += helper(i); }
               return s; }",
        )
        .unwrap();
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            ..Default::default()
        };
        opts.par.insert(
            "hot".into(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
        let c = crate::lower_program(&ast, &opts).unwrap();
        let listing = disassemble(&c);
        assert!(listing.contains("fn helper"));
        assert!(listing.contains("fn main"));
        assert!(listing.contains("loop body `hot`"));
        assert!(listing.contains("ParLoop(0)"));
        assert!(listing.contains("; site"));
    }

    #[test]
    fn every_pc_appears_once() {
        let ast = dse_lang::compile_to_ast("int main() { int x; x = 1; return x * 2; }").unwrap();
        let c = crate::lower_program(&ast, &LowerOptions::default()).unwrap();
        let listing = disassemble(&c);
        assert_eq!(
            listing.lines().filter(|l| l.starts_with("  ")).count(),
            c.code.len()
        );
    }
}
