//! Static memory-access sites.
//!
//! A *site* is one static load or store in the program — the unit the
//! paper's dependence graph, access classes (Definition 4) and redirection
//! rules (Table 2) operate on. Sites are keyed by the owning AST
//! expression's stable id ([`dse_lang::ast::Expr::eid`]) plus the access
//! kind, so the dependence profiler (which observes the lowered bytecode)
//! and the expansion pass (which rewrites the AST) agree on identities.

use dse_lang::SourceSpan;
use std::collections::HashMap;
use std::fmt;

/// Bytecode-level site index (index into [`SiteTable`]).
pub type SiteId = u32;

/// Sentinel for instructions with no associated source-level site
/// (synthetic accesses such as argument copying).
pub const NO_SITE: SiteId = u32::MAX;

/// Whether a site reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// Metadata for one static access site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteInfo {
    /// Stable AST expression id owning this access
    /// ([`dse_lang::ast::NO_EID`] for synthetic accesses).
    pub eid: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Index of the function the site appears in.
    pub func: u32,
    /// Access width in bytes (full size for aggregate copies).
    pub width: u32,
    /// Source location of the owning expression.
    pub span: SourceSpan,
}

/// All static access sites of a compiled program, in creation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteTable {
    sites: Vec<SiteInfo>,
    by_key: HashMap<(u32, AccessKind), SiteId>,
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a site and returns its id. A given `(eid, kind)` pair is
    /// registered at most once; re-registration returns the existing id.
    pub fn intern(&mut self, info: SiteInfo) -> SiteId {
        let key = (info.eid, info.kind);
        if info.eid != dse_lang::ast::NO_EID {
            if let Some(&id) = self.by_key.get(&key) {
                return id;
            }
        }
        let id = self.sites.len() as SiteId;
        self.sites.push(info);
        if key.0 != dse_lang::ast::NO_EID {
            self.by_key.insert(key, id);
        }
        id
    }

    /// Looks up the site for an AST expression access.
    pub fn by_eid(&self, eid: u32, kind: AccessKind) -> Option<SiteId> {
        self.by_key.get(&(eid, kind)).copied()
    }

    /// Site metadata by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is [`NO_SITE`] or out of range.
    pub fn info(&self, id: SiteId) -> &SiteInfo {
        &self.sites[id as usize]
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &SiteInfo)> {
        self.sites.iter().enumerate().map(|(i, s)| (i as SiteId, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(eid: u32, kind: AccessKind) -> SiteInfo {
        SiteInfo {
            eid,
            kind,
            func: 0,
            width: 4,
            span: SourceSpan::default(),
        }
    }

    #[test]
    fn intern_returns_stable_ids() {
        let mut t = SiteTable::new();
        let a = t.intern(site(1, AccessKind::Load));
        let b = t.intern(site(2, AccessKind::Store));
        let a2 = t.intern(site(1, AccessKind::Load));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn load_and_store_of_same_eid_are_distinct() {
        let mut t = SiteTable::new();
        let l = t.intern(site(7, AccessKind::Load));
        let s = t.intern(site(7, AccessKind::Store));
        assert_ne!(l, s);
        assert_eq!(t.by_eid(7, AccessKind::Load), Some(l));
        assert_eq!(t.by_eid(7, AccessKind::Store), Some(s));
    }

    #[test]
    fn synthetic_sites_are_never_deduped() {
        let mut t = SiteTable::new();
        let a = t.intern(site(dse_lang::ast::NO_EID, AccessKind::Store));
        let b = t.intern(site(dse_lang::ast::NO_EID, AccessKind::Store));
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_missing_is_none() {
        let t = SiteTable::new();
        assert_eq!(t.by_eid(0, AccessKind::Load), None);
        assert!(t.is_empty());
    }
}
