//! AST → bytecode lowering.
//!
//! Two modes:
//!
//! * [`LowerMode::Serial`] compiles the program as written; candidate loops
//!   become ordinary loops bracketed by [`Instr::LoopMark`] hooks so the
//!   dependence profiler can attribute accesses to iterations.
//! * [`LowerMode::Parallel`] outlines each candidate loop named in
//!   [`LowerOptions::par`] into a body region driven by
//!   [`Instr::ParLoop`]; reads of the induction variable become
//!   [`Instr::IterIdx`] and DOACROSS loops get `Wait`/`Post` around the
//!   configured window of top-level body statements.
//!
//! The runtime-privatization baseline (paper Section 4.2.1) is implemented
//! by listing access sites in [`LowerOptions::localize`]; their computed
//! addresses are passed through [`Instr::Localize`] before use.

use crate::bytecode::*;
use crate::loops::{self, CandidateLoop, ParMode};
use crate::sites::{AccessKind, SiteId, SiteInfo, SiteTable, NO_SITE};
use dse_lang::ast::*;
use dse_lang::types::{Type, TypeTable};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Lowering failure (unsupported construct or invalid candidate loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

impl From<loops::CandidateError> for LowerError {
    fn from(e: loops::CandidateError) -> Self {
        LowerError(e.to_string())
    }
}

/// Whether candidate loops run serially (with profiler marks) or under the
/// parallel scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LowerMode {
    /// Original program; candidate loops get profiler marks.
    #[default]
    Serial,
    /// Candidate loops listed in [`LowerOptions::par`] become `ParLoop`s.
    Parallel,
}

/// Parallel lowering parameters for one candidate loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParLoopSpec {
    /// DOALL or DOACROSS.
    pub mode: ParMode,
    /// For DOACROSS: inclusive range of top-level body statement indices to
    /// bracket with `Wait`/`Post` (the ordered section).
    pub sync_window: Option<(usize, usize)>,
}

/// Options controlling [`lower_program`].
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Serial or parallel lowering.
    pub mode: LowerMode,
    /// Per-loop-label parallel specs (only used in parallel mode; candidate
    /// loops without an entry run serially).
    pub par: HashMap<String, ParLoopSpec>,
    /// Access sites to route through `Localize` (runtime-priv baseline),
    /// keyed by `(expression id, access kind)`.
    pub localize: HashSet<(u32, AccessKind)>,
    /// Disable the strength-reduced redirection addressing (fused
    /// `tid`-scaled instructions). Used to lower the paper's
    /// "without optimizations" configuration (Figure 9a), where redirection
    /// arithmetic is emitted naively.
    pub naive_redirection: bool,
}

/// Lowers a type-checked program to bytecode.
///
/// # Errors
///
/// Returns a [`LowerError`] for unsupported constructs (by-value aggregate
/// parameters, aggregate returns) or invalid candidate loops.
pub fn lower_program(
    program: &Program,
    opts: &LowerOptions,
) -> Result<CompiledProgram, LowerError> {
    let candidates = loops::find_candidate_loops(program)?;
    let (global_addrs, globals_size) = layout_globals(program);
    let mut lw = Lowerer {
        program,
        opts,
        candidates,
        global_addrs,
        code: Vec::new(),
        funcs: Vec::new(),
        sites: SiteTable::new(),
        loops: Vec::new(),
        cur_func: 0,
        frame: FrameLayout::default(),
        loop_stack: Vec::new(),
        cand_counter: 0,
        par_ind_stack: Vec::new(),
        alloc_sites: std::collections::HashMap::new(),
    };
    let mut global_inits = Vec::new();
    for (gi, g) in program.globals.iter().enumerate() {
        if let Some(init) = &g.init {
            flatten_init(
                &g.ty,
                init,
                lw.global_addrs[gi] as u64,
                &program.types,
                &mut global_inits,
            );
        }
    }
    for (fi, f) in program.functions.iter().enumerate() {
        lw.lower_function(fi as u32, f)?;
    }
    let main = lw
        .funcs
        .iter()
        .position(|f| f.name == "main")
        .ok_or_else(|| LowerError("program has no `main` function".into()))? as u32;
    if !lw.funcs[main as usize].params.is_empty() {
        return Err(LowerError("`main` must take no parameters".into()));
    }
    Ok(CompiledProgram {
        code: lw.code,
        funcs: lw.funcs,
        main,
        globals_size,
        global_inits,
        sites: lw.sites,
        loops: lw.loops,
        types: program.types.clone(),
        alloc_sites: lw.alloc_sites,
    })
}

// ---------------------------------------------------------------------------
// layout
// ---------------------------------------------------------------------------

/// Frame layout of one function: byte offsets per local slot.
#[derive(Debug, Clone, Default)]
pub struct FrameLayout {
    /// Offset of each local slot within the frame.
    pub offsets: Vec<u32>,
    /// Total frame size, 8-byte aligned.
    pub size: u32,
}

impl FrameLayout {
    /// Computes the frame layout of `f` with C alignment rules.
    pub fn of(f: &Function, types: &TypeTable) -> Self {
        let mut offsets = Vec::with_capacity(f.locals.len());
        let mut off = 0u64;
        for l in &f.locals {
            let a = types.align_of(&l.ty);
            off = dse_lang::types::round_up(off, a);
            offsets.push(off as u32);
            off += types.size_of(&l.ty);
        }
        FrameLayout {
            offsets,
            size: dse_lang::types::round_up(off, 8) as u32,
        }
    }
}

/// Computes absolute addresses for globals (starting at [`GLOBAL_BASE`]) and
/// the total globals-segment size.
fn layout_globals(p: &Program) -> (Vec<u32>, u64) {
    let mut addrs = Vec::with_capacity(p.globals.len());
    let mut addr = GLOBAL_BASE;
    for g in &p.globals {
        let a = p.types.align_of(&g.ty);
        addr = dse_lang::types::round_up(addr, a);
        addrs.push(addr as u32);
        addr += p.types.size_of(&g.ty);
    }
    (addrs, addr - GLOBAL_BASE)
}

/// Expands a constant initializer into scalar (address, value) writes.
fn flatten_init(
    ty: &Type,
    init: &ConstInit,
    addr: u64,
    types: &TypeTable,
    out: &mut Vec<(u64, InitValue)>,
) {
    match (ty, init) {
        (Type::Array(elem, _), ConstInit::List(items)) => {
            let es = types.size_of(elem);
            for (i, it) in items.iter().enumerate() {
                flatten_init(elem, it, addr + i as u64 * es, types, out);
            }
        }
        (Type::Float, ConstInit::Int(v)) => out.push((addr, InitValue::Float(*v as f64))),
        (Type::Float, ConstInit::Float(v)) => out.push((addr, InitValue::Float(*v))),
        (t, ConstInit::Int(v)) => out.push((addr, InitValue::Int(*v, types.size_of(t) as u8))),
        (t, ConstInit::Float(v)) if t.is_integer() => {
            out.push((addr, InitValue::Int(*v as i64, types.size_of(t) as u8)))
        }
        _ => unreachable!("sema validated initializer shapes"),
    }
}

// ---------------------------------------------------------------------------
// the lowerer
// ---------------------------------------------------------------------------

struct LoopFrame {
    /// Pcs of placeholder jumps to patch to the break target.
    break_patches: Vec<usize>,
    /// Pcs of placeholder jumps to patch to the continue target.
    continue_patches: Vec<usize>,
    /// True for the outlined body of a parallel candidate loop.
    is_parallel_body: bool,
}

struct Lowerer<'a> {
    program: &'a Program,
    opts: &'a LowerOptions,
    candidates: Vec<CandidateLoop>,
    global_addrs: Vec<u32>,
    code: Vec<Instr>,
    funcs: Vec<FuncInfo>,
    sites: SiteTable,
    loops: Vec<LoopCode>,
    cur_func: u32,
    frame: FrameLayout,
    loop_stack: Vec<LoopFrame>,
    cand_counter: usize,
    /// Stack of induction slots of enclosing parallel bodies (innermost
    /// last); reads become `IterIdx(depth)`.
    par_ind_stack: Vec<usize>,
    /// pc -> eid of allocation calls (see `CompiledProgram::alloc_sites`).
    alloc_sites: std::collections::HashMap<Pc, u32>,
}

impl<'a> Lowerer<'a> {
    fn types(&self) -> &TypeTable {
        &self.program.types
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> Pc {
        self.code.len() as Pc
    }

    fn patch(&mut self, at: usize, target: Pc) {
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn err(&self, msg: impl Into<String>) -> LowerError {
        LowerError(msg.into())
    }

    fn scalar_meta(&self, ty: &Type) -> (u8, bool) {
        let t = ty.decayed();
        (self.types().size_of(&t) as u8, t.is_float())
    }

    fn site(
        &mut self,
        eid: u32,
        kind: AccessKind,
        ty: &Type,
        span: dse_lang::SourceSpan,
    ) -> SiteId {
        let width = self.types().size_of(&ty.decayed()) as u32;
        let func = self.cur_func;
        self.sites.intern(SiteInfo {
            eid,
            kind,
            func,
            width,
            span,
        })
    }

    fn aggregate_site(
        &mut self,
        eid: u32,
        kind: AccessKind,
        size: u32,
        span: dse_lang::SourceSpan,
    ) -> SiteId {
        let func = self.cur_func;
        self.sites.intern(SiteInfo {
            eid,
            kind,
            func,
            width: size,
            span,
        })
    }

    /// Emits `Localize` when the `(eid, kind)` site participates in the
    /// runtime-privatization baseline.
    fn maybe_localize(&mut self, eid: u32, kinds: &[AccessKind], site: SiteId) {
        if kinds
            .iter()
            .any(|k| self.opts.localize.contains(&(eid, *k)))
        {
            self.emit(Instr::Localize { site });
        }
    }

    // ---- functions -------------------------------------------------------

    fn lower_function(&mut self, fi: u32, f: &Function) -> Result<(), LowerError> {
        for p in &f.params {
            if p.ty.is_aggregate() {
                return Err(self.err(format!(
                    "function `{}`: by-value aggregate parameter `{}` is not supported; pass a pointer",
                    f.name, p.name
                )));
            }
        }
        if f.ret_ty.is_aggregate() {
            return Err(self.err(format!(
                "function `{}`: aggregate return type is not supported",
                f.name
            )));
        }
        self.cur_func = fi;
        self.frame = FrameLayout::of(f, self.types());
        let entry = self.here();
        let params = f
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (w, fl) = self.scalar_meta(&p.ty);
                (
                    self.frame.offsets[i],
                    ParamKind {
                        width: w,
                        is_float: fl,
                    },
                )
            })
            .collect();
        let ret = if f.ret_ty == Type::Void {
            RetKind::Void
        } else {
            RetKind::Scalar
        };
        self.funcs.push(FuncInfo {
            name: f.name.clone(),
            entry,
            frame_size: self.frame.size,
            params,
            ret,
            ret_float: f.ret_ty != Type::Void && f.ret_ty.is_float(),
        });
        self.lower_block(&f.body)?;
        // Implicit return for control paths falling off the end.
        if f.ret_ty != Type::Void {
            if f.ret_ty.is_float() {
                self.emit(Instr::PushF(0.0));
            } else {
                self.emit(Instr::PushI(0));
            }
        }
        self.emit(Instr::Ret);
        Ok(())
    }

    fn lower_block(&mut self, b: &Block) -> Result<(), LowerError> {
        for s in &b.stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match &s.kind {
            StmtKind::Decl {
                ty,
                init,
                slot,
                name,
            } => {
                let Some(init) = init else { return Ok(()) };
                let slot = slot.expect("sema assigned slots");
                if matches!(init.kind, ExprKind::Assign { .. } | ExprKind::IncDec { .. }) {
                    return Err(self.err(format!(
                        "declaration of `{name}`: initializer with a top-level assignment is not supported"
                    )));
                }
                let off = self.frame.offsets[slot];
                if ty.is_aggregate() {
                    // struct s = other_struct;
                    let size = self.types().size_of(ty) as u32;
                    let ls = self.aggregate_site(init.eid, AccessKind::Load, size, init.span);
                    let ss = self.aggregate_site(init.eid, AccessKind::Store, size, init.span);
                    self.lower_addr(init)?;
                    self.maybe_localize(init.eid, &[AccessKind::Load], ls);
                    self.emit(Instr::FrameAddr(off));
                    self.emit(Instr::MemCpy {
                        size,
                        load_site: ls,
                        store_site: ss,
                    });
                } else {
                    let (w, fl) = self.scalar_meta(ty);
                    self.emit(Instr::FrameAddr(off));
                    let ss = self.site(init.eid, AccessKind::Store, ty, init.span);
                    self.maybe_localize(init.eid, &[AccessKind::Store], ss);
                    self.lower_value(init)?;
                    self.emit_convert(init.ty(), ty, false);
                    self.emit(Instr::Store {
                        width: w,
                        is_float: fl,
                        site: ss,
                    });
                }
                Ok(())
            }
            StmtKind::Expr(e) => self.lower_stmt_expr(e),
            StmtKind::If { cond, then, els } => {
                self.lower_truth(cond)?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.lower_block(then)?;
                if let Some(els) = els {
                    let jend = self.emit(Instr::Jump(0));
                    let else_pc = self.here();
                    self.patch(jz, else_pc);
                    self.lower_block(els)?;
                    let end = self.here();
                    self.patch(jend, end);
                } else {
                    let end = self.here();
                    self.patch(jz, end);
                }
                Ok(())
            }
            StmtKind::While { cond, body, .. } => {
                let head = self.here();
                self.lower_truth(cond)?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: false,
                });
                self.lower_block(body)?;
                self.emit(Instr::Jump(head));
                let exit = self.here();
                self.patch(jz, exit);
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, head);
                }
                for p in frame.break_patches {
                    self.patch(p, exit);
                }
                Ok(())
            }
            StmtKind::DoWhile { body, cond, .. } => {
                let head = self.here();
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: false,
                });
                self.lower_block(body)?;
                let cont = self.here();
                self.lower_truth(cond)?;
                self.emit(Instr::JumpIfNZ(head));
                let exit = self.here();
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, cont);
                }
                for p in frame.break_patches {
                    self.patch(p, exit);
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                mark,
            } => {
                if mark.candidate {
                    return self.lower_candidate_for(
                        init.as_deref(),
                        cond.as_ref(),
                        step.as_ref(),
                        body,
                    );
                }
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let head = self.here();
                let jz = match cond {
                    Some(c) => {
                        self.lower_truth(c)?;
                        Some(self.emit(Instr::JumpIfZ(0)))
                    }
                    None => None,
                };
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: false,
                });
                self.lower_block(body)?;
                let cont = self.here();
                if let Some(st) = step {
                    self.lower_stmt_expr(st)?;
                }
                self.emit(Instr::Jump(head));
                let exit = self.here();
                if let Some(jz) = jz {
                    self.patch(jz, exit);
                }
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, cont);
                }
                for p in frame.break_patches {
                    self.patch(p, exit);
                }
                Ok(())
            }
            StmtKind::Break => {
                let j = self.emit(Instr::Jump(0));
                let frame = self
                    .loop_stack
                    .last_mut()
                    .ok_or_else(|| LowerError("break outside loop".into()))?;
                assert!(
                    !frame.is_parallel_body,
                    "candidate validation rejects break out of parallel bodies"
                );
                frame.break_patches.push(j);
                Ok(())
            }
            StmtKind::Continue => {
                let j = self.emit(Instr::Jump(0));
                let frame = self
                    .loop_stack
                    .last_mut()
                    .ok_or_else(|| LowerError("continue outside loop".into()))?;
                frame.continue_patches.push(j);
                Ok(())
            }
            StmtKind::Return(e) => {
                if self.loop_stack.iter().any(|f| f.is_parallel_body) {
                    return Err(self.err("return inside a parallel loop body"));
                }
                if let Some(e) = e {
                    self.lower_value(e)?;
                    let ret_ty = self.program.functions[self.cur_func as usize]
                        .ret_ty
                        .clone();
                    self.emit_convert(e.ty(), &ret_ty, false);
                }
                self.emit(Instr::Ret);
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
        }
    }

    // ---- candidate loops ---------------------------------------------------

    fn lower_candidate_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &Block,
    ) -> Result<(), LowerError> {
        let ordinal = self.cand_counter;
        self.cand_counter += 1;
        let cand = self.candidates[ordinal].clone();
        debug_assert_eq!(cand.func, self.cur_func);
        let slot = cand.induction_slot;
        let ind_off = self.frame.offsets[slot];
        let ind_ty = self.program.functions[self.cur_func as usize].locals[slot]
            .ty
            .clone();
        let (ind_w, _) = self.scalar_meta(&ind_ty);
        let (bound, inclusive) = loops::bound_of_cond(cond.expect("validated"), slot)
            .expect("validated candidate condition");

        let spec = match self.opts.mode {
            LowerMode::Parallel => self.opts.par.get(&cand.label).cloned(),
            LowerMode::Serial => None,
        };

        match spec {
            None if self.opts.mode == LowerMode::Serial => {
                // Ordinary loop with profiler marks.
                let loop_id = self.loops.len() as u32;
                self.loops.push(LoopCode {
                    label: cand.label.clone(),
                    func: self.cur_func,
                    mode: None,
                    body_entry: 0,
                    induction_offset: ind_off,
                    induction_width: ind_w,
                });
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                self.emit(Instr::LoopMark(LoopEvent::Begin, loop_id));
                let head = self.here();
                self.lower_truth(cond.expect("validated"))?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.emit(Instr::LoopMark(LoopEvent::IterStart, loop_id));
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: false,
                });
                self.lower_block(body)?;
                let cont = self.here();
                if let Some(st) = step {
                    self.lower_stmt_expr(st)?;
                }
                self.emit(Instr::Jump(head));
                let exit = self.here();
                self.patch(jz, exit);
                self.emit(Instr::LoopMark(LoopEvent::End, loop_id));
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, cont);
                }
                assert!(frame.break_patches.is_empty(), "validated: no break");
                Ok(())
            }
            None => {
                // Parallel mode but this loop is not parallelized: plain loop.
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let head = self.here();
                self.lower_truth(cond.expect("validated"))?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: false,
                });
                self.lower_block(body)?;
                let cont = self.here();
                if let Some(st) = step {
                    self.lower_stmt_expr(st)?;
                }
                self.emit(Instr::Jump(head));
                let exit = self.here();
                self.patch(jz, exit);
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, cont);
                }
                assert!(frame.break_patches.is_empty(), "validated: no break");
                Ok(())
            }
            Some(spec) => {
                // Outlined parallel loop.
                let loop_id = self.loops.len() as u32;
                self.loops.push(LoopCode {
                    label: cand.label.clone(),
                    func: self.cur_func,
                    mode: Some(spec.mode),
                    body_entry: 0,
                    induction_offset: ind_off,
                    induction_width: ind_w,
                });
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                // lo = current value of i.
                self.emit(Instr::FrameAddr(ind_off));
                self.emit(Instr::Load {
                    width: ind_w,
                    is_float: false,
                    site: NO_SITE,
                });
                // hi = bound (+1 when `<=`).
                self.lower_value(bound)?;
                if inclusive {
                    self.emit(Instr::PushI(1));
                    self.emit(Instr::IBin(IBinOp::Add));
                }
                self.emit(Instr::ParLoop(loop_id));
                let jover = self.emit(Instr::Jump(0));
                // ---- outlined body region ----
                let body_entry = self.here();
                self.loops[loop_id as usize].body_entry = body_entry;
                self.par_ind_stack.push(slot);
                self.loop_stack.push(LoopFrame {
                    break_patches: vec![],
                    continue_patches: vec![],
                    is_parallel_body: true,
                });
                for (idx, stmt) in body.stmts.iter().enumerate() {
                    if let Some((s, _)) = spec.sync_window {
                        if idx == s {
                            self.emit(Instr::Wait(loop_id));
                        }
                    }
                    self.lower_stmt(stmt)?;
                    if let Some((_, e)) = spec.sync_window {
                        if idx == e {
                            self.emit(Instr::Post(loop_id));
                        }
                    }
                }
                let epilogue = self.here();
                self.emit(Instr::Ret);
                let frame = self.loop_stack.pop().expect("balanced loop stack");
                for p in frame.continue_patches {
                    self.patch(p, epilogue);
                }
                assert!(frame.break_patches.is_empty(), "validated: no break");
                self.par_ind_stack.pop();
                // ---- after the loop: i = hi ----
                let after = self.here();
                self.patch(jover, after);
                self.emit(Instr::FrameAddr(ind_off));
                self.lower_value(bound)?;
                if inclusive {
                    self.emit(Instr::PushI(1));
                    self.emit(Instr::IBin(IBinOp::Add));
                }
                self.emit(Instr::Store {
                    width: ind_w,
                    is_float: false,
                    site: NO_SITE,
                });
                Ok(())
            }
        }
    }

    // ---- expressions -------------------------------------------------------

    /// Lowers an expression in statement position (value discarded).
    fn lower_stmt_expr(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Assign { .. } => self.lower_assign(e, false),
            ExprKind::IncDec { .. } => self.lower_incdec(e, false),
            ExprKind::Call { .. } => {
                let pushed = self.lower_call(e)?;
                if pushed {
                    self.emit(Instr::Drop);
                }
                Ok(())
            }
            _ => {
                self.lower_value(e)?;
                self.emit(Instr::Drop);
                Ok(())
            }
        }
    }

    /// Lowers an expression in value position; exactly one value is pushed.
    /// Aggregate-typed expressions push their address.
    fn lower_value(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(Instr::PushI(*v));
                Ok(())
            }
            ExprKind::FloatLit(v) => {
                self.emit(Instr::PushF(*v));
                Ok(())
            }
            ExprKind::Var { binding, .. } => {
                let b = binding.expect("sema resolved");
                if let VarBinding::Local(slot) = b {
                    if let Some(depth) = self.par_ind_depth(slot) {
                        self.emit(Instr::IterIdx(depth));
                        return Ok(());
                    }
                }
                if e.ty().is_aggregate() {
                    self.push_var_addr(b);
                    return Ok(());
                }
                self.push_var_addr(b);
                let (w, fl) = self.scalar_meta(e.ty());
                let site = self.site(e.eid, AccessKind::Load, e.ty(), e.span);
                self.maybe_localize(e.eid, &[AccessKind::Load], site);
                self.emit(Instr::Load {
                    width: w,
                    is_float: fl,
                    site,
                });
                Ok(())
            }
            ExprKind::Unary(op, inner) => {
                match op {
                    UnOp::Neg => {
                        self.lower_value(inner)?;
                        if inner.ty().decayed().is_float() {
                            self.emit(Instr::FNeg);
                        } else {
                            self.emit(Instr::INeg);
                        }
                    }
                    UnOp::BitNot => {
                        self.lower_value(inner)?;
                        self.emit(Instr::BNot);
                    }
                    UnOp::Not => {
                        self.lower_truth(inner)?;
                        self.emit(Instr::LNot);
                    }
                }
                Ok(())
            }
            ExprKind::Binary(op, l, r) => self.lower_binary(*op, l, r, e.ty()),
            ExprKind::Assign { .. } => self.lower_assign(e, true),
            ExprKind::Cond(c, t, f) => {
                self.lower_truth(c)?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.lower_value(t)?;
                self.emit_convert(t.ty(), e.ty(), false);
                let jend = self.emit(Instr::Jump(0));
                let else_pc = self.here();
                self.patch(jz, else_pc);
                self.lower_value(f)?;
                self.emit_convert(f.ty(), e.ty(), false);
                let end = self.here();
                self.patch(jend, end);
                Ok(())
            }
            ExprKind::Call { .. } => {
                let pushed = self.lower_call(e)?;
                if !pushed {
                    return Err(self.err("void call used as a value"));
                }
                Ok(())
            }
            ExprKind::Index { .. } | ExprKind::Field { .. } | ExprKind::Deref(_) => {
                if e.ty().is_aggregate() {
                    return self.lower_addr(e);
                }
                self.lower_addr(e)?;
                let (w, fl) = self.scalar_meta(e.ty());
                let site = self.site(e.eid, AccessKind::Load, e.ty(), e.span);
                self.maybe_localize(e.eid, &[AccessKind::Load], site);
                self.emit(Instr::Load {
                    width: w,
                    is_float: fl,
                    site,
                });
                Ok(())
            }
            ExprKind::AddrOf(inner) => self.lower_addr(inner),
            ExprKind::Cast(ty, inner) => {
                if ty == &Type::Void {
                    // Evaluate for effects, push a dummy value (cast-to-void
                    // in value position is meaningless but harmless).
                    self.lower_stmt_expr(inner)?;
                    self.emit(Instr::PushI(0));
                    return Ok(());
                }
                self.lower_value(inner)?;
                self.emit_convert(inner.ty(), ty, true);
                Ok(())
            }
            ExprKind::SizeofType(ty) => {
                let s = self.types().size_of(ty);
                self.emit(Instr::PushI(s as i64));
                Ok(())
            }
            ExprKind::SizeofExpr(inner) => {
                // The operand is not evaluated (C semantics).
                let s = self.types().size_of(inner.ty());
                self.emit(Instr::PushI(s as i64));
                Ok(())
            }
            ExprKind::IncDec { .. } => self.lower_incdec(e, true),
        }
    }

    /// Depth (from innermost) of a parallel induction slot, if `slot` is one.
    fn par_ind_depth(&self, slot: usize) -> Option<u8> {
        self.par_ind_stack
            .iter()
            .rev()
            .position(|&s| s == slot)
            .map(|d| d as u8)
    }

    fn push_var_addr(&mut self, b: VarBinding) {
        match b {
            VarBinding::Local(slot) => {
                let off = self.frame.offsets[slot];
                self.emit(Instr::FrameAddr(off));
            }
            VarBinding::Global(g) => {
                let addr = self.global_addrs[g];
                self.emit(Instr::GlobalAddr(addr));
            }
        }
    }

    /// Lowers an lvalue (or aggregate value) to its address.
    fn lower_addr(&mut self, e: &Expr) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Var { binding, .. } => {
                let b = binding.expect("sema resolved");
                if let VarBinding::Local(slot) = b {
                    if self.par_ind_depth(slot).is_some() {
                        return Err(
                            self.err("cannot take the address of a parallel induction variable")
                        );
                    }
                }
                self.push_var_addr(b);
                Ok(())
            }
            ExprKind::Deref(p) => self.lower_value(p),
            ExprKind::Index { base, index } => {
                let bt = base.ty();
                let elem = bt.pointee().expect("sema checked index base").clone();
                let es = self.types().size_of(&elem);
                // Fully fused private-copy addressing: `v[__tid()]` on a
                // named array is one instruction, exactly as a native
                // compiler's base+index*scale addressing mode.
                if let (
                    false,
                    ExprKind::Var {
                        binding: Some(b), ..
                    },
                    ExprKind::Call { name, args },
                    Type::Array(..),
                ) = (self.opts.naive_redirection, &base.kind, &index.kind, bt)
                {
                    if name == "__tid" && args.is_empty() {
                        match b {
                            VarBinding::Local(slot) => {
                                let offset = self.frame.offsets[*slot];
                                self.emit(Instr::FrameAddrTid {
                                    offset,
                                    stride: es as i64,
                                });
                            }
                            VarBinding::Global(g) => {
                                let addr = self.global_addrs[*g];
                                self.emit(Instr::GlobalAddrTid {
                                    addr,
                                    stride: es as i64,
                                });
                            }
                        }
                        return Ok(());
                    }
                }
                if matches!(bt, Type::Array(..)) {
                    self.lower_addr(base)?;
                } else {
                    self.lower_value(base)?;
                }
                // Strength-reduced forms of the expansion pass's copy
                // indices: `v[0]` costs nothing, `v[__tid()]` a single
                // scaled add — matching what native addressing modes give
                // the paper's generated code.
                if !self.opts.naive_redirection {
                    match &index.kind {
                        ExprKind::IntLit(0) => return Ok(()),
                        ExprKind::IntLit(k) => {
                            self.emit(Instr::PushI(k.wrapping_mul(es as i64)));
                            self.emit(Instr::IBin(IBinOp::Add));
                            return Ok(());
                        }
                        ExprKind::Call { name, args } if name == "__tid" && args.is_empty() => {
                            self.emit(Instr::TidScaled(es as i64));
                            self.emit(Instr::IBin(IBinOp::Add));
                            return Ok(());
                        }
                        _ => {}
                    }
                }
                self.lower_value(index)?;
                if es != 1 {
                    self.emit(Instr::PushI(es as i64));
                    self.emit(Instr::IBin(IBinOp::Mul));
                }
                self.emit(Instr::IBin(IBinOp::Add));
                Ok(())
            }
            ExprKind::Field { base, field } => {
                self.lower_addr(base)?;
                let Type::Struct(id) = base.ty() else {
                    unreachable!("sema checked field base")
                };
                let off = self
                    .types()
                    .struct_def(*id)
                    .field(field)
                    .expect("sema checked field")
                    .offset;
                if off != 0 {
                    self.emit(Instr::PushI(off as i64));
                    self.emit(Instr::IBin(IBinOp::Add));
                }
                Ok(())
            }
            other => Err(self.err(format!("expression is not addressable: {other:?}"))),
        }
    }

    /// Lowers an expression to an integer truth value (0/1-ish) suitable for
    /// conditional jumps.
    fn lower_truth(&mut self, e: &Expr) -> Result<(), LowerError> {
        self.lower_value(e)?;
        if e.ty().decayed().is_float() {
            self.emit(Instr::PushF(0.0));
            self.emit(Instr::FCmp(CmpOp::Ne));
        }
        Ok(())
    }

    fn lower_binary(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        result_ty: &Type,
    ) -> Result<(), LowerError> {
        use BinOp::*;
        let lt = l.ty().decayed();
        let rt = r.ty().decayed();
        match op {
            LogAnd => {
                self.lower_truth(l)?;
                let jz = self.emit(Instr::JumpIfZ(0));
                self.lower_truth(r)?;
                let jz2 = self.emit(Instr::JumpIfZ(0));
                self.emit(Instr::PushI(1));
                let jend = self.emit(Instr::Jump(0));
                let false_pc = self.here();
                self.patch(jz, false_pc);
                self.patch(jz2, false_pc);
                self.emit(Instr::PushI(0));
                let end = self.here();
                self.patch(jend, end);
                Ok(())
            }
            LogOr => {
                self.lower_truth(l)?;
                let jnz = self.emit(Instr::JumpIfNZ(0));
                self.lower_truth(r)?;
                let jnz2 = self.emit(Instr::JumpIfNZ(0));
                self.emit(Instr::PushI(0));
                let jend = self.emit(Instr::Jump(0));
                let true_pc = self.here();
                self.patch(jnz, true_pc);
                self.patch(jnz2, true_pc);
                self.emit(Instr::PushI(1));
                let end = self.here();
                self.patch(jend, end);
                Ok(())
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let cmp = match op {
                    Eq => CmpOp::Eq,
                    Ne => CmpOp::Ne,
                    Lt => CmpOp::Lt,
                    Le => CmpOp::Le,
                    Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let float = lt.is_float() || rt.is_float();
                self.lower_value(l)?;
                if float && !lt.is_float() {
                    self.emit(Instr::I2F);
                }
                self.lower_value(r)?;
                if float && !rt.is_float() {
                    self.emit(Instr::I2F);
                }
                self.emit(if float {
                    Instr::FCmp(cmp)
                } else {
                    Instr::ICmp(cmp)
                });
                Ok(())
            }
            Add | Sub if lt.is_pointer() || rt.is_pointer() => {
                if lt.is_pointer() && rt.is_pointer() {
                    // p - q, scaled by element size.
                    debug_assert_eq!(op, Sub);
                    let es = self.types().size_of(lt.pointee().expect("pointer"));
                    self.lower_value(l)?;
                    self.lower_value(r)?;
                    self.emit(Instr::IBin(IBinOp::Sub));
                    if es != 1 {
                        self.emit(Instr::PushI(es as i64));
                        self.emit(Instr::IBin(IBinOp::Div));
                    }
                } else if lt.is_pointer() {
                    let es = self.types().size_of(lt.pointee().expect("pointer"));
                    self.lower_value(l)?;
                    // Strength-reduce the redirection offset
                    // `__tid() * S / sizeof(*p)` with constant S divisible
                    // by the element size: one scaled add, as a native
                    // compiler's LICM + addressing modes would produce.
                    if op == Add && !self.opts.naive_redirection {
                        if let Some(bytes) = tid_const_offset_bytes(r, es) {
                            self.emit(Instr::TidScaled(bytes));
                            self.emit(Instr::IBin(IBinOp::Add));
                            return Ok(());
                        }
                        if let Some(span_expr) = tid_span_offset(r, es) {
                            self.lower_value(span_expr)?;
                            self.emit(Instr::TidSpanScaled(es as i64));
                            self.emit(Instr::IBin(IBinOp::Add));
                            return Ok(());
                        }
                    }
                    self.lower_value(r)?;
                    if es != 1 {
                        self.emit(Instr::PushI(es as i64));
                        self.emit(Instr::IBin(IBinOp::Mul));
                    }
                    self.emit(Instr::IBin(if op == Add {
                        IBinOp::Add
                    } else {
                        IBinOp::Sub
                    }));
                } else {
                    // int + ptr
                    debug_assert_eq!(op, Add);
                    let es = self.types().size_of(rt.pointee().expect("pointer"));
                    self.lower_value(l)?;
                    if es != 1 {
                        self.emit(Instr::PushI(es as i64));
                        self.emit(Instr::IBin(IBinOp::Mul));
                    }
                    self.lower_value(r)?;
                    self.emit(Instr::IBin(IBinOp::Add));
                }
                Ok(())
            }
            _ => {
                let float = result_ty.is_float();
                self.lower_value(l)?;
                if float && !lt.is_float() {
                    self.emit(Instr::I2F);
                }
                self.lower_value(r)?;
                if float && !rt.is_float() {
                    self.emit(Instr::I2F);
                }
                if float {
                    let f = match op {
                        Add => FBinOp::Add,
                        Sub => FBinOp::Sub,
                        Mul => FBinOp::Mul,
                        Div => FBinOp::Div,
                        _ => return Err(self.err("float operand for integer operator")),
                    };
                    self.emit(Instr::FBin(f));
                } else {
                    let i = match op {
                        Add => IBinOp::Add,
                        Sub => IBinOp::Sub,
                        Mul => IBinOp::Mul,
                        Div => IBinOp::Div,
                        Rem => IBinOp::Rem,
                        And => IBinOp::And,
                        Or => IBinOp::Or,
                        Xor => IBinOp::Xor,
                        Shl => IBinOp::Shl,
                        Shr => IBinOp::Shr,
                        _ => unreachable!("comparisons handled above"),
                    };
                    self.emit(Instr::IBin(i));
                }
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, e: &Expr, want: bool) -> Result<(), LowerError> {
        let ExprKind::Assign { op, lhs, rhs } = &e.kind else {
            unreachable!()
        };
        let lhs_ty = lhs.ty().clone();
        if lhs_ty.is_aggregate() {
            if want {
                return Err(self.err("aggregate assignment cannot be used as a value"));
            }
            let size = self.types().size_of(&lhs_ty) as u32;
            let ls = self.aggregate_site(rhs.eid, AccessKind::Load, size, rhs.span);
            let ss = self.aggregate_site(lhs.eid, AccessKind::Store, size, lhs.span);
            self.lower_addr(rhs)?;
            self.maybe_localize(rhs.eid, &[AccessKind::Load], ls);
            self.lower_addr(lhs)?;
            self.maybe_localize(lhs.eid, &[AccessKind::Store], ss);
            self.emit(Instr::MemCpy {
                size,
                load_site: ls,
                store_site: ss,
            });
            return Ok(());
        }
        let (w, fl) = self.scalar_meta(&lhs_ty);
        let store_site = self.site(lhs.eid, AccessKind::Store, &lhs_ty, lhs.span);
        match op {
            AssignOp::Set => {
                self.lower_addr(lhs)?;
                self.maybe_localize(lhs.eid, &[AccessKind::Store], store_site);
                self.lower_value(rhs)?;
                self.emit_convert(rhs.ty(), &lhs_ty, false);
                if want {
                    self.emit(Instr::Tuck);
                }
                self.emit(Instr::Store {
                    width: w,
                    is_float: fl,
                    site: store_site,
                });
                Ok(())
            }
            AssignOp::Compound(bop) => {
                let load_site = self.site(lhs.eid, AccessKind::Load, &lhs_ty, lhs.span);
                self.lower_addr(lhs)?;
                self.maybe_localize(lhs.eid, &[AccessKind::Load, AccessKind::Store], load_site);
                self.emit(Instr::Dup);
                self.emit(Instr::Load {
                    width: w,
                    is_float: fl,
                    site: load_site,
                });
                let lhs_d = lhs_ty.decayed();
                if lhs_d.is_pointer() {
                    // p += n / p -= n : scale by element size.
                    let es = self.types().size_of(lhs_d.pointee().expect("pointer"));
                    self.lower_value(rhs)?;
                    if es != 1 {
                        self.emit(Instr::PushI(es as i64));
                        self.emit(Instr::IBin(IBinOp::Mul));
                    }
                    let ib = match bop {
                        BinOp::Add => IBinOp::Add,
                        BinOp::Sub => IBinOp::Sub,
                        _ => return Err(self.err("unsupported compound operator on pointer")),
                    };
                    self.emit(Instr::IBin(ib));
                } else {
                    let op_float = lhs_d.is_float() || rhs.ty().decayed().is_float();
                    if op_float && !lhs_d.is_float() {
                        self.emit(Instr::I2F);
                    }
                    self.lower_value(rhs)?;
                    if op_float && !rhs.ty().decayed().is_float() {
                        self.emit(Instr::I2F);
                    }
                    if op_float {
                        let f = match bop {
                            BinOp::Add => FBinOp::Add,
                            BinOp::Sub => FBinOp::Sub,
                            BinOp::Mul => FBinOp::Mul,
                            BinOp::Div => FBinOp::Div,
                            _ => return Err(self.err("float operand for integer operator")),
                        };
                        self.emit(Instr::FBin(f));
                        if !lhs_d.is_float() {
                            self.emit(Instr::F2I);
                        }
                    } else {
                        let i = match bop {
                            BinOp::Add => IBinOp::Add,
                            BinOp::Sub => IBinOp::Sub,
                            BinOp::Mul => IBinOp::Mul,
                            BinOp::Div => IBinOp::Div,
                            BinOp::Rem => IBinOp::Rem,
                            BinOp::And => IBinOp::And,
                            BinOp::Or => IBinOp::Or,
                            BinOp::Xor => IBinOp::Xor,
                            BinOp::Shl => IBinOp::Shl,
                            BinOp::Shr => IBinOp::Shr,
                            _ => return Err(self.err("invalid compound operator")),
                        };
                        self.emit(Instr::IBin(i));
                    }
                }
                if want {
                    self.emit(Instr::Tuck);
                }
                self.emit(Instr::Store {
                    width: w,
                    is_float: fl,
                    site: store_site,
                });
                Ok(())
            }
        }
    }

    fn lower_incdec(&mut self, e: &Expr, want: bool) -> Result<(), LowerError> {
        let ExprKind::IncDec { pre, inc, target } = &e.kind else {
            unreachable!()
        };
        let ty = target.ty().clone();
        let (w, fl) = self.scalar_meta(&ty);
        debug_assert!(!fl, "sema rejects float ++/--");
        let delta = if ty.decayed().is_pointer() {
            self.types()
                .size_of(ty.decayed().pointee().expect("pointer")) as i64
        } else {
            1
        };
        let load_site = self.site(target.eid, AccessKind::Load, &ty, target.span);
        let store_site = self.site(target.eid, AccessKind::Store, &ty, target.span);
        self.lower_addr(target)?;
        self.maybe_localize(
            target.eid,
            &[AccessKind::Load, AccessKind::Store],
            load_site,
        );
        self.emit(Instr::Dup);
        self.emit(Instr::Load {
            width: w,
            is_float: false,
            site: load_site,
        });
        if want && !*pre {
            // Keep the old value: [a, old] -> [old, a, old]
            self.emit(Instr::Tuck);
        }
        self.emit(Instr::PushI(delta));
        self.emit(Instr::IBin(if *inc { IBinOp::Add } else { IBinOp::Sub }));
        if want && *pre {
            // Keep the new value: [a, new] -> [new, a, new]
            self.emit(Instr::Tuck);
        }
        self.emit(Instr::Store {
            width: w,
            is_float: false,
            site: store_site,
        });
        Ok(())
    }

    /// Lowers a call; returns whether a result value was pushed.
    fn lower_call(&mut self, e: &Expr) -> Result<bool, LowerError> {
        let ExprKind::Call { name, args } = &e.kind else {
            unreachable!()
        };
        if name == "__localize" {
            // Runtime-privatization address translation (emitted by the
            // baseline transform): pops an address, pushes its thread-local
            // translation.
            self.lower_value(&args[0])?;
            self.emit(Instr::Localize { site: NO_SITE });
            return Ok(true);
        }
        if let Some(b) = Builtin::from_name(name) {
            let sig = dse_lang::sema::builtin_signature(name);
            for (i, a) in args.iter().enumerate() {
                self.lower_value(a)?;
                if let Some(sig) = &sig {
                    self.emit_convert(a.ty(), &sig.params[i], false);
                }
            }
            let pc = self.emit(Instr::CallBuiltin(b));
            if matches!(b, Builtin::Malloc | Builtin::Calloc | Builtin::Realloc)
                && e.eid != dse_lang::ast::NO_EID
            {
                self.alloc_sites.insert(pc as Pc, e.eid);
            }
            return Ok(b.has_result());
        }
        let fi = self
            .program
            .functions
            .iter()
            .position(|f| &f.name == name)
            .ok_or_else(|| self.err(format!("unknown function `{name}`")))?;
        let callee = &self.program.functions[fi];
        let param_tys: Vec<Type> = callee.params.iter().map(|p| p.ty.clone()).collect();
        let ret_void = callee.ret_ty == Type::Void;
        for (a, pt) in args.iter().zip(&param_tys) {
            self.lower_value(a)?;
            self.emit_convert(a.ty(), pt, false);
        }
        self.emit(Instr::Call(fi as u32));
        Ok(!ret_void)
    }

    /// Emits numeric conversions between scalar types. `explicit` additionally
    /// truncates integers to the target width (cast semantics); implicit
    /// conversions rely on stores to truncate.
    fn emit_convert(&mut self, from: &Type, to: &Type, explicit: bool) {
        let from = from.decayed();
        let to = to.decayed();
        match (from.is_float(), to.is_float()) {
            (false, true) => {
                self.emit(Instr::I2F);
            }
            (true, false) => {
                self.emit(Instr::F2I);
                if explicit {
                    let w = self.types().size_of(&to) as u8;
                    if w < 8 {
                        self.emit(Instr::SextTrunc(w));
                    }
                }
            }
            (false, false) => {
                if explicit && to.is_integer() {
                    let w = self.types().size_of(&to) as u8;
                    if w < 8 {
                        self.emit(Instr::SextTrunc(w));
                    }
                }
            }
            (true, true) => {}
        }
    }
}

/// Matches the redirection-offset shape `__tid() * S / Z` with constant
/// `S`, `Z` where `Z` equals the element size and `S` is a multiple of it;
/// returns the per-thread byte offset `S`.
fn tid_const_offset_bytes(e: &Expr, elem_size: u64) -> Option<i64> {
    let ExprKind::Binary(BinOp::Div, num, den) = &e.kind else {
        return None;
    };
    let ExprKind::IntLit(z) = den.kind else {
        return None;
    };
    let ExprKind::Binary(BinOp::Mul, tid, s) = &num.kind else {
        return None;
    };
    let ExprKind::Call { name, args } = &tid.kind else {
        return None;
    };
    if name != "__tid" || !args.is_empty() {
        return None;
    }
    let ExprKind::IntLit(s) = s.kind else {
        return None;
    };
    (z == elem_size as i64 && z != 0 && s % z == 0).then_some(s)
}

/// Matches the dynamic-span redirection shape `__tid() * <span> / Z` with
/// `Z` equal to the element size; returns the span expression so the whole
/// offset lowers to one fused `TidSpanScaled`.
fn tid_span_offset(e: &Expr, elem_size: u64) -> Option<&Expr> {
    let ExprKind::Binary(BinOp::Div, num, den) = &e.kind else {
        return None;
    };
    let ExprKind::IntLit(z) = den.kind else {
        return None;
    };
    if z != elem_size as i64 || z == 0 {
        return None;
    }
    let ExprKind::Binary(BinOp::Mul, tid, span) = &num.kind else {
        return None;
    };
    let ExprKind::Call { name, args } = &tid.kind else {
        return None;
    };
    (name == "__tid" && args.is_empty()).then_some(span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_lang::ast;
    use dse_lang::compile_to_ast;

    fn lower(src: &str) -> CompiledProgram {
        let p = compile_to_ast(src).unwrap();
        lower_program(&p, &LowerOptions::default()).unwrap()
    }

    fn lower_err(src: &str) -> LowerError {
        let p = compile_to_ast(src).unwrap();
        lower_program(&p, &LowerOptions::default()).unwrap_err()
    }

    #[test]
    fn lowers_minimal_main() {
        let c = lower("int main() { return 42; }");
        assert_eq!(c.funcs.len(), 1);
        assert_eq!(c.func(c.main).name, "main");
        assert!(c.code.contains(&Instr::PushI(42)));
        assert!(c.code.contains(&Instr::Ret));
    }

    #[test]
    fn missing_main_is_error() {
        assert!(lower_err("void f() {}").0.contains("no `main`"));
    }

    #[test]
    fn main_with_params_is_error() {
        assert!(lower_err("int main(int x) { return x; }")
            .0
            .contains("no parameters"));
    }

    #[test]
    fn aggregate_param_is_error() {
        let e = lower_err("struct S { int a; }; void f(struct S s) {} int main() { return 0; }");
        assert!(e.0.contains("aggregate parameter"));
    }

    #[test]
    fn frame_layout_respects_alignment() {
        let p = compile_to_ast("void f() { char c; long l; int i; }").unwrap();
        let fl = FrameLayout::of(&p.functions[0], &p.types);
        assert_eq!(fl.offsets, vec![0, 8, 16]);
        assert_eq!(fl.size, 24);
    }

    #[test]
    fn global_layout_and_inits() {
        let c =
            lower("char c; long g = 7; float f = 2.5; int a[3] = {1,2}; int main() { return 0; }");
        // c at 4096; g aligned to 4104; f at 4112; a at 4120.
        assert_eq!(c.global_inits[0], (4104, InitValue::Int(7, 8)));
        assert_eq!(c.global_inits[1], (4112, InitValue::Float(2.5)));
        assert_eq!(c.global_inits[2], (4120, InitValue::Int(1, 4)));
        assert_eq!(c.global_inits[3], (4124, InitValue::Int(2, 4)));
        assert_eq!(c.globals_size, 4120 + 12 - GLOBAL_BASE);
    }

    #[test]
    fn var_load_gets_site_keyed_by_eid() {
        let src = "int g; int main() { return g; }";
        let c = lower(src);
        let p = compile_to_ast(src).unwrap();
        // Find the `g` expression's eid.
        let mut g_eid = None;
        let mut probe = p.clone();
        for f in &mut probe.functions {
            ast::visit_exprs_in_block(&mut f.body, &mut |e| {
                if matches!(&e.kind, ExprKind::Var { name, .. } if name == "g") {
                    g_eid = Some(e.eid);
                }
            });
        }
        let sid = c.sites.by_eid(g_eid.unwrap(), AccessKind::Load).unwrap();
        assert_eq!(c.sites.info(sid).width, 4);
    }

    #[test]
    fn serial_candidate_gets_loop_marks() {
        let c = lower(
            "int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 10; i++) { s += i; }
               return s; }",
        );
        assert_eq!(c.loops.len(), 1);
        assert_eq!(c.loops[0].label, "hot");
        assert_eq!(c.loops[0].mode, None);
        let marks: Vec<_> = c
            .code
            .iter()
            .filter(|i| matches!(i, Instr::LoopMark(..)))
            .collect();
        assert_eq!(marks.len(), 3);
    }

    #[test]
    fn parallel_candidate_outlines_body() {
        let p = compile_to_ast(
            "int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 10; i++) { s += i; }
               return s; }",
        )
        .unwrap();
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            ..Default::default()
        };
        opts.par.insert(
            "hot".into(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
        let c = lower_program(&p, &opts).unwrap();
        assert_eq!(c.loops[0].mode, Some(ParMode::DoAll));
        assert!(c.code.contains(&Instr::ParLoop(0)));
        // Body reads the induction variable through IterIdx.
        let body_start = c.loops[0].body_entry as usize;
        let body_code = &c.code[body_start..];
        assert!(body_code.iter().any(|i| matches!(i, Instr::IterIdx(0))));
        assert!(body_code.contains(&Instr::Ret));
    }

    #[test]
    fn doacross_sync_window_emits_wait_post() {
        let p = compile_to_ast(
            "int g; int main() {
               #pragma candidate hot
               for (int i = 0; i < 10; i++) { int t; t = i * 2; g = g + t; t = t + 1; }
               return g; }",
        )
        .unwrap();
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            ..Default::default()
        };
        opts.par.insert(
            "hot".into(),
            ParLoopSpec {
                mode: ParMode::DoAcross,
                sync_window: Some((2, 2)),
            },
        );
        let c = lower_program(&p, &opts).unwrap();
        let waits = c
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Wait(0)))
            .count();
        let posts = c
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Post(0)))
            .count();
        assert_eq!(waits, 1);
        assert_eq!(posts, 1);
        // Wait must come before Post in the body region.
        let wpos = c
            .code
            .iter()
            .position(|i| matches!(i, Instr::Wait(0)))
            .unwrap();
        let ppos = c
            .code
            .iter()
            .position(|i| matches!(i, Instr::Post(0)))
            .unwrap();
        assert!(wpos < ppos);
    }

    #[test]
    fn localize_wraps_requested_sites() {
        let src = "int g; int main() { g = 1; return g; }";
        let p = compile_to_ast(src).unwrap();
        // Collect the eids of the store and the load of g.
        let mut store_eid = None;
        let mut probe = p.clone();
        for f in &mut probe.functions {
            ast::visit_exprs_in_block(&mut f.body, &mut |e| {
                if let ExprKind::Var { name, .. } = &e.kind {
                    if name == "g" && store_eid.is_none() {
                        store_eid = Some(e.eid);
                    }
                }
            });
        }
        let mut opts = LowerOptions::default();
        opts.localize
            .insert((store_eid.unwrap(), AccessKind::Store));
        let c = lower_program(&p, &opts).unwrap();
        assert_eq!(
            c.code
                .iter()
                .filter(|i| matches!(i, Instr::Localize { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn decl_with_top_level_assign_initializer_is_error() {
        let e = lower_err("int main() { int y; int x = (y = 1); return x; }");
        assert!(e.0.contains("not supported"));
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let c = lower("int main() { int *p; p = malloc(40); p = p + 2; free(p - 2); return 0; }");
        // Expect a multiply by 4 somewhere for the scaling.
        assert!(c.code.contains(&Instr::PushI(4)));
    }

    #[test]
    fn logical_ops_short_circuit_via_jumps() {
        let c = lower("int main(){ int a; a = 1; return a && (a || 0); }");
        assert!(c.code.iter().any(|i| matches!(i, Instr::JumpIfZ(_))));
        assert!(c.code.iter().any(|i| matches!(i, Instr::JumpIfNZ(_))));
    }

    #[test]
    fn struct_assignment_lowers_to_memcpy() {
        let c = lower(
            "struct S { int a; long b; };
             struct S x; struct S y;
             int main() { x = y; return 0; }",
        );
        assert!(c
            .code
            .iter()
            .any(|i| matches!(i, Instr::MemCpy { size: 16, .. })));
    }

    #[test]
    fn compound_assign_loads_and_stores_same_eid() {
        let src = "int g; int main() { g += 3; return g; }";
        let c = lower(src);
        let p = compile_to_ast(src).unwrap();
        let mut g_eid = None;
        let mut probe = p.functions[0].body.clone();
        ast::visit_exprs_in_block(&mut probe, &mut |e| {
            if matches!(&e.kind, ExprKind::Var { name, .. } if name == "g") && g_eid.is_none() {
                g_eid = Some(e.eid);
            }
        });
        let eid = g_eid.unwrap();
        assert!(c.sites.by_eid(eid, AccessKind::Load).is_some());
        assert!(c.sites.by_eid(eid, AccessKind::Store).is_some());
    }

    #[test]
    fn sizeof_lowers_to_constant() {
        let c = lower("struct S { char c; long l; }; int main() { return (int)sizeof(struct S); }");
        assert!(c.code.contains(&Instr::PushI(16)));
    }

    #[test]
    fn nested_parallel_induction_depths() {
        let p = compile_to_ast(
            "int main() { int s; s = 0;
               #pragma candidate outer
               for (int i = 0; i < 4; i++) {
                 #pragma candidate inner
                 for (int j = 0; j < 4; j++) { s += i + j; }
               }
               return s; }",
        )
        .unwrap();
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            ..Default::default()
        };
        for l in ["outer", "inner"] {
            opts.par.insert(
                l.into(),
                ParLoopSpec {
                    mode: ParMode::DoAll,
                    sync_window: None,
                },
            );
        }
        let c = lower_program(&p, &opts).unwrap();
        // Inner body reads j at depth 0 and i at depth 1.
        assert!(c.code.contains(&Instr::IterIdx(0)));
        assert!(c.code.contains(&Instr::IterIdx(1)));
    }

    #[test]
    fn candidate_in_parallel_mode_without_spec_lowers_plain() {
        let p = compile_to_ast(
            "int main() { #pragma candidate hot
               for (int i = 0; i < 4; i++) { }
               return 0; }",
        )
        .unwrap();
        let opts = LowerOptions {
            mode: LowerMode::Parallel,
            ..Default::default()
        };
        let c = lower_program(&p, &opts).unwrap();
        assert!(!c.code.iter().any(|i| matches!(i, Instr::ParLoop(_))));
        assert!(!c.code.iter().any(|i| matches!(i, Instr::LoopMark(..))));
    }

    #[test]
    fn builtin_call_lowering() {
        let c = lower("int main() { int *p; p = malloc(8); free(p); return 0; }");
        assert!(c.code.contains(&Instr::CallBuiltin(Builtin::Malloc)));
        assert!(c.code.contains(&Instr::CallBuiltin(Builtin::Free)));
    }

    #[test]
    fn user_call_with_conversion() {
        let c = lower(
            "float half(float x) { return x / 2.0; }
             int main() { return (int)half(3); }",
        );
        // Argument 3 (int) must be converted to float.
        assert!(c.code.contains(&Instr::I2F));
        assert!(c.code.contains(&Instr::F2I));
    }
}

#[cfg(test)]
mod naive_mode_tests {
    use super::*;
    use crate::bytecode::Instr;
    use dse_lang::compile_to_ast;

    const SRC: &str = "int main() {
        int slots[4];
        #pragma candidate hot
        for (int i = 0; i < 8; i++) { slots[__tid()] = i; }
        return slots[0]; }";

    fn lower_with(naive: bool) -> CompiledProgram {
        let ast = compile_to_ast(SRC).unwrap();
        let mut opts = LowerOptions {
            mode: LowerMode::Parallel,
            naive_redirection: naive,
            ..Default::default()
        };
        opts.par.insert(
            "hot".into(),
            ParLoopSpec {
                mode: ParMode::DoAll,
                sync_window: None,
            },
        );
        lower_program(&ast, &opts).unwrap()
    }

    #[test]
    fn fused_addressing_only_without_naive_flag() {
        let fused = lower_with(false);
        assert!(fused
            .code
            .iter()
            .any(|i| matches!(i, Instr::FrameAddrTid { .. })));
        let naive = lower_with(true);
        assert!(!naive
            .code
            .iter()
            .any(|i| matches!(i, Instr::FrameAddrTid { .. } | Instr::TidScaled(_))));
        assert!(naive.code.len() > fused.code.len());
    }

    #[test]
    fn serial_mode_emits_marks_in_order() {
        let ast = compile_to_ast(
            "int main() { int s; s = 0;
               #pragma candidate hot
               for (int i = 0; i < 4; i++) { s += i; }
               return s; }",
        )
        .unwrap();
        let c = lower_program(&ast, &LowerOptions::default()).unwrap();
        let marks: Vec<LoopEvent> = c
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::LoopMark(ev, 0) => Some(*ev),
                _ => None,
            })
            .collect();
        assert_eq!(
            marks,
            vec![LoopEvent::Begin, LoopEvent::IterStart, LoopEvent::End]
        );
        // IterStart must sit between the conditional branch and the body.
        let begin = c
            .code
            .iter()
            .position(|i| matches!(i, Instr::LoopMark(LoopEvent::Begin, 0)))
            .unwrap();
        let iter = c
            .code
            .iter()
            .position(|i| matches!(i, Instr::LoopMark(LoopEvent::IterStart, 0)))
            .unwrap();
        assert!(iter > begin);
    }
}
