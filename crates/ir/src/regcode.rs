//! Register-based bytecode and the stack→register translation pass.
//!
//! The stack bytecode in [`crate::bytecode`] is the reference encoding: it
//! is what the lowering emits, what the dependence profiler attributes
//! sites to, and what the stack interpreter executes. This module adds a
//! second, faster encoding for the same programs: a **virtual-register
//! bytecode** in which every operand lives in a numbered slot of a flat
//! per-thread register file instead of a pushed/popped `Vec<Value>`.
//!
//! The translation exploits a structural property of code lowered from a
//! structured AST: at every program point the operand-stack depth (and the
//! int/float type of every slot) is a compile-time constant. A worklist
//! dataflow pass computes the depth/type vector per pc — seeded at every
//! function entry and outlined loop-body entry with the empty stack — and
//! rejects programs where control-flow joins disagree (hand-written
//! adversarial bytecode; the lowering never produces this). Emission then
//! maps "stack slot at depth `d`" to "register `d`" of the current
//! register window, so a push becomes a write to a known register and most
//! stack-shuffling traffic disappears entirely (`Drop` compiles to
//! nothing, `Dup` to a register move).
//!
//! Register *windows*: calls do not save/restore the register file. A
//! callee's window simply starts where the caller's live registers end
//! (`caller_base + arg_base`), the same trick SPARC/Lua use, so recursion
//! works and per-iteration register frames are reused across loop
//! iterations without clearing.
//!
//! The emitter also fuses the hottest stack idioms into super-instructions:
//! compare+branch (`ICmp;JumpIfZ` → one fused conditional branch),
//! constant operands (`PushI;IBin` → `IBinImm`, `PushI;ICmp;JumpIf*` →
//! `JumpICmpImm`), and address+load (`FrameAddr;Load` → `LdFrame`).
//! Fusion only happens when the consumed instruction is not a jump target
//! or region entry, so every branch still lands on a translated pc.
//!
//! **Scalar promotion**: the dataflow additionally tracks *address
//! provenance* — which frame offset each stack slot is the address of. A
//! frame offset whose every observation is a direct scalar load/store of
//! one consistent shape, whose provenance survives every join, and which
//! overlaps no other access of its region, is promoted to a dedicated
//! register above the region's operand-depth registers. Promoted slots
//! load once in the function prologue (zeroed locals read 0, parameters
//! their argument) and spill/reload around calls, whose register windows
//! overlap the caller's. A region never promotes when a frame address
//! escapes as a plain value, when thread-dependent addressing
//! (`FrameAddrTid`, `TidSpanScaled`, `Localize`, `ParLoop`) appears in
//! it, or when it is an outlined parallel body — its frame is shared
//! across worker threads, so memory stays the source of truth.
//!
//! **Coalescing**: a final block-local pass propagates `Mov` copies
//! forward into operand positions and deletes pure register writes whose
//! destination is provably dead — overwritten before any read, or above
//! the live operand depth of every outgoing edge (exact, thanks to the
//! constant-depth invariant). Together with a store-into-producer
//! redirect at emission, hot loop bodies over promoted scalars compile to
//! register-only arithmetic with no shuffle traffic.
//!
//! Site ids, loop marks, and builtin call pcs are preserved verbatim
//! (each register instruction remembers the stack pc it came from in
//! [`RegProgram::origin`]), so the dependence profiler, the opcode
//! profiler, and trap reporting see the same program points under either
//! backend.

use crate::bytecode::{
    Builtin, CmpOp, CompiledProgram, FBinOp, FuncInfo, IBinOp, Instr, LoopEvent, Pc, RetKind,
};
use crate::sites::{SiteId, NO_SITE};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// A register index within the current window (operand-stack depth of the
/// value in the reference encoding).
pub type Reg = u16;

/// One register-bytecode instruction. `d` registers are destinations,
/// `l`/`r`/`s`/`a`/`v` are sources; unary/in-place ops overwrite their
/// operand register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RInstr {
    /// `r[d] = v`.
    LdcI { d: Reg, v: i64 },
    /// `r[d] = bits(v)`.
    LdcF { d: Reg, v: f64 },
    /// `r[d] = r[s]`.
    Mov { d: Reg, s: Reg },
    /// Stack `Tuck` over registers `d..d+2`:
    /// `[r[d], r[d+1]] -> [r[d+1], r[d], r[d+1]]`.
    Tuck { d: Reg },
    /// `r[d] = frame_base + off`.
    FrameAddr { d: Reg, off: u32 },
    /// `r[d] = addr`.
    GlobalAddr { d: Reg, addr: u32 },
    /// `r[d] = tid * k`.
    TidScaled { d: Reg, k: i64 },
    /// `r[d] = tid * r[d] / z * z` (dynamic-span redirection).
    TidSpanScaled { d: Reg, z: i64 },
    /// `r[d] = frame_base + offset + tid * stride` (private direct).
    FrameAddrTid { d: Reg, offset: u32, stride: i64 },
    /// `r[d] = addr + tid * stride` (private direct).
    GlobalAddrTid { d: Reg, addr: u32, stride: i64 },
    /// `r[d] = iter_stack[len-1-depth]`.
    IterIdx { d: Reg, depth: u8 },
    /// `r[d] = mem[r[d]]` (in place: address register becomes the value).
    Load {
        d: Reg,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// Fused `FrameAddr;Load`: `r[d] = mem[frame_base + off]`.
    LdFrame {
        d: Reg,
        off: u32,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// Fused `GlobalAddr;Load`: `r[d] = mem[addr]`.
    LdGlobal {
        d: Reg,
        addr: u32,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// `mem[r[a]] = r[v]`.
    Store {
        a: Reg,
        v: Reg,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// Fused frame store: `mem[frame_base + off] = r[v]` (the `Store`
    /// analogue of [`RInstr::LdFrame`]; the address never touches a
    /// register).
    StFrame {
        off: u32,
        v: Reg,
        width: u8,
        is_float: bool,
        site: SiteId,
    },
    /// `memcpy(r[dst], r[src], size)`.
    MemCpy {
        dst: Reg,
        src: Reg,
        size: u32,
        load_site: SiteId,
        store_site: SiteId,
    },
    /// `r[d] = r[l] op r[r]` (integer, wrapping; Div/Rem trap on 0).
    IBin { op: IBinOp, d: Reg, l: Reg, r: Reg },
    /// `r[d] = r[l] op imm`.
    IBinImm {
        op: IBinOp,
        d: Reg,
        l: Reg,
        imm: i64,
    },
    /// `r[d] = r[l] op r[r]` (float).
    FBin { op: FBinOp, d: Reg, l: Reg, r: Reg },
    /// `r[d] = (r[l] op r[r]) as 0/1` (integer compare).
    ICmp { op: CmpOp, d: Reg, l: Reg, r: Reg },
    /// `r[d] = (r[l] op imm) as 0/1`.
    ICmpImm { op: CmpOp, d: Reg, l: Reg, imm: i64 },
    /// `r[d] = (r[l] op r[r]) as 0/1` (float compare).
    FCmp { op: CmpOp, d: Reg, l: Reg, r: Reg },
    /// `r[d] = -r[d]` (integer, wrapping).
    INeg { d: Reg },
    /// `r[d] = -r[d]` (float).
    FNeg { d: Reg },
    /// `r[d] = !r[d]` (bitwise).
    BNot { d: Reg },
    /// `r[d] = (r[d] == 0) as 0/1`.
    LNot { d: Reg },
    /// `r[d] = (r[d] as i64) as f64`.
    I2F { d: Reg },
    /// `r[d] = (r[d] as f64) as i64`.
    F2I { d: Reg },
    /// `r[d] = sign_extend(truncate(r[d], w))`.
    Sext { d: Reg, w: u8 },
    /// Unconditional jump to register pc `t`.
    Jump { t: u32 },
    /// Jump to `t` if `r[s] == 0`.
    JumpIfZ { s: Reg, t: u32 },
    /// Jump to `t` if `r[s] != 0`.
    JumpIfNZ { s: Reg, t: u32 },
    /// Fused integer compare+branch: jump to `t` when
    /// `(r[l] op r[r]) == on_true`.
    JumpICmp {
        op: CmpOp,
        l: Reg,
        r: Reg,
        t: u32,
        on_true: bool,
    },
    /// Fused immediate compare+branch.
    JumpICmpImm {
        op: CmpOp,
        l: Reg,
        imm: i64,
        t: u32,
        on_true: bool,
    },
    /// Fused float compare+branch.
    JumpFCmp {
        op: CmpOp,
        l: Reg,
        r: Reg,
        t: u32,
        on_true: bool,
    },
    /// Call function `fi` (register entry `target`): args in
    /// `r[abase..abase+nargs]` are written to the callee's memory parameter
    /// slots; the callee's register window starts at `abase`; its result
    /// (if any) lands back in `r[abase]`.
    Call { target: u32, fi: u32, abase: Reg },
    /// Call a builtin with args in `r[abase..abase+arity]`; the result (if
    /// any) lands in `r[abase]`. `orig_pc` is the stack pc of the call, so
    /// allocation-site attribution and traps match the reference backend.
    CallBuiltin { b: Builtin, abase: Reg, orig_pc: Pc },
    /// `r[d] = sqrt(r[d])` (hot builtin, inlined).
    Fsqrt { d: Reg },
    /// `r[d] = abs(r[d])` (hot builtin, inlined).
    Fabs { d: Reg },
    /// `r[d] = tid`.
    Tid { d: Reg },
    /// `r[d] = nthreads`.
    NThreads { d: Reg },
    /// Return from function or finish a region iteration. The value (when
    /// `has_val`) is in `r[src]` of the callee window and is moved to the
    /// caller's `abase` slot.
    Ret {
        src: Reg,
        has_val: bool,
        is_float: bool,
    },
    /// Profiler hook (no-op at plain execution) for the given loop id.
    LoopMark { ev: LoopEvent, id: u32 },
    /// Execute candidate loop `id` for iterations `r[lo]..r[hi]` under the
    /// parallel scheduler. The body region's register window starts at
    /// `lo` (the depth with both bounds consumed).
    ParLoop { id: u32, lo: Reg, hi: Reg },
    /// DOACROSS: wait until all previous iterations have posted.
    Wait { id: u32 },
    /// DOACROSS: post this iteration's ordered section.
    Post { id: u32 },
    /// `r[d] = localize(r[d])` (runtime-privatization baseline).
    Localize { d: Reg, site: SiteId },
    /// Stop the program; value (when `has_val`) in `r[src]`.
    Halt {
        src: Reg,
        has_val: bool,
        is_float: bool,
    },
    /// Translation hole (a stack pc the dataflow never reached); traps.
    Unreachable,
}

impl fmt::Display for RInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A register-translated program, executable by the runtime's register
/// backend alongside the [`CompiledProgram`] it was derived from.
#[derive(Debug, Default)]
pub struct RegProgram {
    /// All register instructions; regions are contiguous ranges.
    pub code: Vec<RInstr>,
    /// Stack entry pc (function entries, outlined loop-body entries) →
    /// register pc. The executor resolves region dispatches through this.
    pub entry_map: HashMap<Pc, u32>,
    /// Register pc → originating stack pc (trap attribution, site parity).
    pub origin: Vec<Pc>,
    /// Upper bound of registers any single window needs; callers grow the
    /// register file to `window_base + frame_regs` at frame entry.
    pub frame_regs: u32,
    /// The scalar-promotion decisions this translation was emitted under.
    /// `dse-verify` checks the code against this declared intent *and*
    /// re-derives the plan from the stack flow to prove the intent itself
    /// was legal.
    pub promo: PromotionPlan,
    /// Set once a static backend verification (DSE010–DSE015) has passed
    /// over this exact program; the register VM can refuse unverified code
    /// under `--strict`.
    verified: AtomicBool,
}

impl Clone for RegProgram {
    fn clone(&self) -> RegProgram {
        RegProgram {
            code: self.code.clone(),
            entry_map: self.entry_map.clone(),
            origin: self.origin.clone(),
            frame_regs: self.frame_regs,
            promo: self.promo.clone(),
            verified: AtomicBool::new(self.verified.load(Ordering::Relaxed)),
        }
    }
}

impl RegProgram {
    /// The stack pc a register pc was translated from.
    pub fn origin_pc(&self, reg_pc: usize) -> Pc {
        self.origin.get(reg_pc).copied().unwrap_or(reg_pc as Pc)
    }

    /// Records that a static backend verification passed over this program.
    pub fn mark_verified(&self) {
        self.verified.store(true, Ordering::Relaxed);
    }

    /// Whether [`RegProgram::mark_verified`] has been called.
    pub fn is_verified(&self) -> bool {
        self.verified.load(Ordering::Relaxed)
    }
}

/// A stack→register translation failure: the stack discipline of the input
/// could not be proven (depth/type mismatch at a join, non-constant depth,
/// or an ill-typed operation). Lowered programs never trigger this; it
/// guards hand-constructed bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegLowerError {
    /// Stack pc where translation failed.
    pub pc: Pc,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for RegLowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register lowering failed at pc {}: {}",
            self.pc, self.msg
        )
    }
}

impl std::error::Error for RegLowerError {}

/// Builtin signature for the register calling convention: per-argument
/// float flags in stack order (bottom→top) and the result's float flag.
pub fn builtin_sig(b: Builtin) -> (&'static [bool], Option<bool>) {
    const I0: &[bool] = &[];
    const I1: &[bool] = &[false];
    const I2: &[bool] = &[false, false];
    const I3: &[bool] = &[false, false, false];
    const F1: &[bool] = &[true];
    match b {
        Builtin::Malloc => (I1, Some(false)),
        Builtin::Calloc => (I2, Some(false)),
        Builtin::Realloc => (I2, Some(false)),
        Builtin::ReallocExpanded => (I3, Some(false)),
        Builtin::Free => (I1, None),
        Builtin::InLong => (I1, Some(false)),
        Builtin::InFloat => (I1, Some(true)),
        Builtin::InLen => (I0, Some(false)),
        Builtin::OutLong => (I1, None),
        Builtin::OutFloat => (F1, None),
        Builtin::PrintLong => (I1, None),
        Builtin::PrintFloat => (F1, None),
        Builtin::Fsqrt => (F1, Some(true)),
        Builtin::Fabs => (F1, Some(true)),
        Builtin::MemCpy => (I3, None),
        Builtin::Tid => (I0, Some(false)),
        Builtin::NThreads => (I0, Some(false)),
    }
}

/// Static type of one operand-stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integer (also addresses and booleans).
    I,
    /// 64-bit float.
    F,
}

/// One operand-stack slot in the dataflow: its static type plus address
/// provenance. `addr_of = Some(off)` means the slot provably holds exactly
/// `frame_base + off`, produced by a `FrameAddr(off)` (possibly through
/// `Dup`/`Tuck` copies). Provenance is what scalar promotion keys on: a
/// frame slot whose address is only ever the direct target of a
/// `Load`/`Store` can live in a register for the whole function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Static type of the value in the slot.
    pub ty: Ty,
    /// Frame offset this slot is provably the address of, if any.
    pub addr_of: Option<u32>,
}

impl Slot {
    fn new(ty: Ty) -> Slot {
        Slot { ty, addr_of: None }
    }
}

type State = Vec<Slot>;

/// `owner[pc]` before any seeded entry's dataflow reaches it.
pub const NO_OWNER: u32 = u32::MAX;

/// Width/type signature of the frame accesses seen at one offset.
/// `shape` collapses to `None` when two accesses disagree (a union-like
/// reuse of the slot), which disqualifies the offset from promotion;
/// `max_width` keeps growing either way so overlap checks stay sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessShape {
    /// `(width, is_float)` when every access agrees, `None` otherwise.
    pub shape: Option<(u8, bool)>,
    /// Widest access observed, kept for overlap checks even when the
    /// shape collapsed.
    pub max_width: u8,
}

/// The fixed point of the constant-depth/type/provenance dataflow over a
/// stack program: the invariant base the register translator emits under,
/// exposed so `dse-verify` can independently re-derive and check it.
#[derive(Debug, Clone)]
pub struct StackFlow {
    /// Per stack pc: `None` when no seeded entry reaches it, otherwise the
    /// static operand stack (bottom → top).
    pub states: Vec<Option<Vec<Slot>>>,
    /// The seeded entry whose dataflow reached each pc: function index, or
    /// `funcs.len() + i` for the `i`-th outlined parallel body (see
    /// [`StackFlow::body_loops`]). [`NO_OWNER`] when unreachable.
    pub owner: Vec<u32>,
    /// Per owner: scalar promotion is disabled for the region (parallel
    /// body, aliasing address producers, or a leaked frame address).
    pub no_promote: Vec<bool>,
    /// (owner, offset) pairs whose provenance was lost at a control-flow
    /// join; such offsets never promote.
    pub demoted: HashSet<(u32, u32)>,
    /// (owner, offset) → the shape of its direct frame accesses.
    pub accesses: HashMap<(u32, u32), AccessShape>,
    /// Loop indices (into `prog.loops`) of the outlined parallel bodies, in
    /// owner order after the functions.
    pub body_loops: Vec<u32>,
}

impl StackFlow {
    /// Number of seeded regions (functions + outlined parallel bodies).
    pub fn n_owners(&self) -> usize {
        self.no_promote.len()
    }

    /// The function whose frame an owner's direct accesses target: the
    /// function itself, or the enclosing function of an outlined body.
    pub fn owner_func<'p>(&self, prog: &'p CompiledProgram, owner: u32) -> Option<&'p FuncInfo> {
        let nf = prog.funcs.len();
        if (owner as usize) < nf {
            return prog.funcs.get(owner as usize);
        }
        let li = *self.body_loops.get(owner as usize - nf)?;
        prog.funcs.get(prog.loops.get(li as usize)?.func as usize)
    }

    /// Display name for an owner (function name, or ``body of `label`​``).
    pub fn owner_name(&self, prog: &CompiledProgram, owner: u32) -> String {
        let nf = prog.funcs.len();
        if (owner as usize) < nf {
            return prog.funcs[owner as usize].name.clone();
        }
        match self
            .body_loops
            .get(owner as usize - nf)
            .and_then(|&li| prog.loops.get(li as usize))
        {
            Some(l) => format!("body of `{}`", l.label),
            None => format!("owner#{owner}"),
        }
    }
}

/// Scalar-promotion decisions for one translation. Derivable from the
/// [`StackFlow`] alone via [`promotion_plan`], and recorded on the emitted
/// [`RegProgram`] so a verifier can check the code against the declared
/// intent and the intent against the flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromotionPlan {
    /// Per-owner operand-depth high-water mark: owner `o`'s promoted
    /// registers start at `maxd[o]`.
    pub maxd: Vec<u32>,
    /// (owner, frame offset) → (dedicated register, width, is_float).
    pub promoted: HashMap<(u32, u32), (Reg, u8, bool)>,
    /// Per-owner spill list sorted by offset: (register, offset, width,
    /// is_float) — the exact sequence spilled before and reloaded after
    /// every call in the region, and loaded in the function prologue.
    pub spills: Vec<Vec<(Reg, u32, u8, bool)>>,
}

struct Flow<'p> {
    prog: &'p CompiledProgram,
    states: Vec<Option<State>>,
    /// The seeded entry (function or outlined loop body) whose dataflow
    /// reached each pc. Regions are disjoint in lowered code; shared code
    /// disables promotion for both claimants.
    owner: Vec<u32>,
    work: Vec<Pc>,
    /// Per owner: scalar promotion must not touch this region — an
    /// outlined parallel body (its frame is shared across threads), a
    /// region with aliasing address producers (`FrameAddrTid`,
    /// `TidSpanScaled`, `Localize`, `ParLoop`), or one that leaks a frame
    /// address as a plain value (call argument, stored to memory,
    /// pointer arithmetic).
    no_promote: Vec<bool>,
    /// (owner, offset) pairs whose provenance was lost at a control-flow
    /// join; such offsets stay memory-backed so their address registers
    /// remain real.
    demoted: HashSet<(u32, u32)>,
    /// (owner, offset) → the shape of its direct frame accesses.
    accesses: HashMap<(u32, u32), AccessShape>,
}

impl<'p> Flow<'p> {
    fn err(pc: Pc, msg: impl Into<String>) -> RegLowerError {
        RegLowerError {
            pc,
            msg: msg.into(),
        }
    }

    fn seed(&mut self, pc: Pc, owner: u32) -> Result<(), RegLowerError> {
        self.join(pc, Vec::new(), owner)
    }

    fn join(&mut self, pc: Pc, st: State, from: u32) -> Result<(), RegLowerError> {
        if pc as usize >= self.prog.code.len() {
            return Err(Self::err(pc, "control flow past end of code"));
        }
        let i = pc as usize;
        if self.owner[i] == NO_OWNER {
            self.owner[i] = from;
        } else if self.owner[i] != from {
            // Straight-line code shared between two seeded regions: neither
            // can promote through it.
            self.no_promote[self.owner[i] as usize] = true;
            self.no_promote[from as usize] = true;
        }
        let o = self.owner[i];
        let mut lost: Vec<u32> = Vec::new();
        let res = match &mut self.states[i] {
            Some(prev) => {
                let tys_match =
                    prev.len() == st.len() && prev.iter().zip(&st).all(|(p, s)| p.ty == s.ty);
                if !tys_match {
                    return Err(Self::err(
                        pc,
                        format!("operand stack mismatch at join: {prev:?} vs {st:?}"),
                    ));
                }
                let mut changed = false;
                for (p, s) in prev.iter_mut().zip(&st) {
                    if p.addr_of != s.addr_of {
                        lost.extend(p.addr_of);
                        lost.extend(s.addr_of);
                        if p.addr_of.is_some() {
                            p.addr_of = None;
                            changed = true;
                        }
                    }
                }
                if changed {
                    self.work.push(pc);
                }
                Ok(())
            }
            None => {
                self.states[i] = Some(st);
                self.work.push(pc);
                Ok(())
            }
        };
        for off in lost {
            self.demoted.insert((o, off));
        }
        res
    }

    fn pop(st: &mut State, pc: Pc) -> Result<Slot, RegLowerError> {
        st.pop()
            .ok_or_else(|| Self::err(pc, "operand stack underflow"))
    }

    fn pop_ty(st: &mut State, pc: Pc, want: Ty) -> Result<Slot, RegLowerError> {
        let got = Self::pop(st, pc)?;
        if got.ty != want {
            return Err(Self::err(
                pc,
                format!("expected {want:?}, found {:?}", got.ty),
            ));
        }
        Ok(got)
    }

    /// Applies `code[pc]`'s stack effect to `st`, records promotion facts
    /// (frame accesses, address escapes), and joins all successors.
    fn step(&mut self, pc: Pc) -> Result<(), RegLowerError> {
        let mut st = self.states[pc as usize].clone().expect("visited");
        let i = pc as usize;
        let o = self.owner[i];
        use Ty::{F, I};
        // An address consumed as a plain value (arithmetic, call argument,
        // stored as data, …) can reach frame memory the promotion pass
        // assumed was register-backed; one leak disables the whole region.
        macro_rules! value_use {
            ($slot:expr) => {
                if $slot.addr_of.is_some() {
                    self.no_promote[o as usize] = true;
                }
            };
        }
        // A direct `Load`/`Store` through known provenance: record the
        // access shape for the promotion decision.
        macro_rules! access {
            ($slot:expr, $width:expr, $is_float:expr) => {
                if let Some(off) = $slot.addr_of {
                    let shape = ($width, $is_float);
                    self.accesses
                        .entry((o, off))
                        .and_modify(|a| {
                            if a.shape != Some(shape) {
                                a.shape = None;
                            }
                            a.max_width = a.max_width.max($width);
                        })
                        .or_insert(AccessShape {
                            shape: Some(shape),
                            max_width: $width,
                        });
                }
            };
        }
        match self.prog.code[i] {
            Instr::PushI(_) => st.push(Slot::new(I)),
            Instr::PushF(_) => st.push(Slot::new(F)),
            Instr::Dup => {
                let t = *st
                    .last()
                    .ok_or_else(|| Self::err(pc, "operand stack underflow"))?;
                st.push(t);
            }
            Instr::Drop => {
                // A dropped address is dead, not leaked.
                Self::pop(&mut st, pc)?;
            }
            Instr::Tuck => {
                let t = Self::pop(&mut st, pc)?;
                let s = Self::pop(&mut st, pc)?;
                st.push(t);
                st.push(s);
                st.push(t);
            }
            Instr::FrameAddr(off) => st.push(Slot {
                ty: I,
                addr_of: Some(off),
            }),
            Instr::GlobalAddr(_) | Instr::TidScaled(_) | Instr::IterIdx(_) => st.push(Slot::new(I)),
            Instr::FrameAddrTid { .. } | Instr::GlobalAddrTid { .. } => {
                // Tid-strided addressing reaches frame offsets the
                // provenance analysis can't see.
                self.no_promote[o as usize] = true;
                st.push(Slot::new(I));
            }
            Instr::TidSpanScaled(_) => {
                self.no_promote[o as usize] = true;
                let s = Self::pop_ty(&mut st, pc, I)?;
                value_use!(s);
                st.push(Slot::new(I));
            }
            Instr::Load {
                width, is_float, ..
            } => {
                let a = Self::pop_ty(&mut st, pc, I)?;
                access!(a, width, is_float);
                st.push(Slot::new(if is_float { F } else { I }));
            }
            Instr::Store {
                width, is_float, ..
            } => {
                let v = Self::pop_ty(&mut st, pc, if is_float { F } else { I })?;
                value_use!(v); // a frame address stored as data escapes
                let a = Self::pop_ty(&mut st, pc, I)?;
                access!(a, width, is_float);
            }
            Instr::MemCpy { .. } => {
                // A block copy through a frame address bypasses registers.
                let dst = Self::pop_ty(&mut st, pc, I)?;
                value_use!(dst);
                let src = Self::pop_ty(&mut st, pc, I)?;
                value_use!(src);
            }
            Instr::IBin(_) => {
                let r = Self::pop_ty(&mut st, pc, I)?;
                value_use!(r);
                let l = Self::pop_ty(&mut st, pc, I)?;
                value_use!(l);
                st.push(Slot::new(I));
            }
            Instr::FBin(_) => {
                Self::pop_ty(&mut st, pc, F)?;
                Self::pop_ty(&mut st, pc, F)?;
                st.push(Slot::new(F));
            }
            Instr::ICmp(_) => {
                let r = Self::pop_ty(&mut st, pc, I)?;
                value_use!(r);
                let l = Self::pop_ty(&mut st, pc, I)?;
                value_use!(l);
                st.push(Slot::new(I));
            }
            Instr::FCmp(_) => {
                Self::pop_ty(&mut st, pc, F)?;
                Self::pop_ty(&mut st, pc, F)?;
                st.push(Slot::new(I));
            }
            Instr::INeg | Instr::BNot | Instr::LNot | Instr::SextTrunc(_) => {
                let s = Self::pop_ty(&mut st, pc, I)?;
                value_use!(s);
                st.push(Slot::new(I));
            }
            Instr::FNeg => {
                Self::pop_ty(&mut st, pc, F)?;
                st.push(Slot::new(F));
            }
            Instr::I2F => {
                let s = Self::pop_ty(&mut st, pc, I)?;
                value_use!(s);
                st.push(Slot::new(F));
            }
            Instr::F2I => {
                Self::pop_ty(&mut st, pc, F)?;
                st.push(Slot::new(I));
            }
            Instr::Jump(t) => return self.join(t, st, o),
            Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => {
                let s = Self::pop_ty(&mut st, pc, I)?;
                value_use!(s);
                self.join(t, st.clone(), o)?;
                return self.join(pc + 1, st, o);
            }
            Instr::Call(fi) => {
                let callee = self.prog.func(fi);
                // Args pop right-to-left: the last parameter is on top.
                for (off, kind) in callee.params.iter().rev() {
                    let _ = off;
                    let s = Self::pop_ty(&mut st, pc, if kind.is_float { F } else { I })?;
                    value_use!(s);
                }
                if callee.ret == RetKind::Scalar {
                    st.push(Slot::new(if callee.ret_float { F } else { I }));
                }
            }
            Instr::CallBuiltin(b) => {
                let (sig, res) = builtin_sig(b);
                for &isf in sig.iter().rev() {
                    let s = Self::pop_ty(&mut st, pc, if isf { F } else { I })?;
                    value_use!(s);
                }
                if let Some(isf) = res {
                    st.push(Slot::new(if isf { F } else { I }));
                }
            }
            Instr::Ret => {
                if st.len() > 1 {
                    return Err(Self::err(
                        pc,
                        format!("return with {} operands on the stack", st.len()),
                    ));
                }
                for s in &st {
                    value_use!(s);
                }
                return Ok(());
            }
            Instr::LoopMark(..) | Instr::Wait(_) | Instr::Post(_) => {}
            Instr::ParLoop(_) => {
                // The outlined body shares this frame across worker
                // threads; memory must stay the source of truth.
                self.no_promote[o as usize] = true;
                let hi = Self::pop_ty(&mut st, pc, I)?;
                value_use!(hi);
                let lo = Self::pop_ty(&mut st, pc, I)?;
                value_use!(lo);
            }
            Instr::Localize { .. } => {
                self.no_promote[o as usize] = true;
                let a = Self::pop_ty(&mut st, pc, I)?;
                value_use!(a);
                st.push(Slot::new(I));
            }
            Instr::Halt => {
                for s in &st {
                    value_use!(s);
                }
                return Ok(());
            }
        }
        self.join(pc + 1, st, o)
    }
}

/// Runs the constant-depth/type/provenance dataflow over a stack program
/// to its fixed point, seeded with the empty stack at every function entry
/// and outlined parallel-body entry.
///
/// This is the queryable form of the invariant [`translate`] builds on:
/// the stack verifier re-runs it to prove the depth discipline, and the
/// translation validator uses its per-pc states and owner map to line
/// stack blocks up with their register translations.
///
/// # Errors
///
/// Returns a [`RegLowerError`] when the operand-stack discipline cannot be
/// statically proven: a depth or type mismatch at a control-flow join, an
/// underflow, an ill-typed operand, control flow past the end of the code,
/// or a return with more than one operand on the stack.
pub fn analyze_stack(prog: &CompiledProgram) -> Result<StackFlow, RegLowerError> {
    let n = prog.code.len();
    let body_loops: Vec<u32> = prog
        .loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.mode.is_some())
        .map(|(i, _)| i as u32)
        .collect();
    let n_owners = prog.funcs.len() + body_loops.len();
    let mut flow = Flow {
        prog,
        states: vec![None; n],
        owner: vec![NO_OWNER; n],
        work: Vec::new(),
        no_promote: vec![false; n_owners],
        demoted: HashSet::new(),
        accesses: HashMap::new(),
    };
    for (fi, f) in prog.funcs.iter().enumerate() {
        flow.seed(f.entry, fi as u32)?;
    }
    for (bi, &li) in body_loops.iter().enumerate() {
        let o = (prog.funcs.len() + bi) as u32;
        // Outlined parallel bodies run per-iteration on worker threads
        // against a shared frame; they never promote.
        flow.no_promote[o as usize] = true;
        flow.seed(prog.loops[li as usize].body_entry, o)?;
    }
    while let Some(pc) = flow.work.pop() {
        flow.step(pc)?;
    }
    Ok(StackFlow {
        states: flow.states,
        owner: flow.owner,
        no_promote: flow.no_promote,
        demoted: flow.demoted,
        accesses: flow.accesses,
        body_loops,
    })
}

/// Derives the scalar-promotion decisions from a [`StackFlow`]: a frame
/// offset is promoted to a dedicated register of its function's window
/// when every observation is a direct scalar load/store of one consistent
/// shape, its provenance survives every join, it lies inside the declared
/// frame, and it overlaps no other direct frame access of the region.
///
/// [`translate`] emits under exactly this plan; the verifier re-derives it
/// to prove a [`RegProgram::promo`] is justified.
pub fn promotion_plan(prog: &CompiledProgram, flow: &StackFlow) -> PromotionPlan {
    let n_owners = flow.n_owners();
    let mut maxd = vec![0u32; n_owners];
    for (i, st) in flow.states.iter().enumerate() {
        if let (Some(st), o) = (st, flow.owner[i]) {
            if o != NO_OWNER {
                maxd[o as usize] = maxd[o as usize].max(st.len() as u32);
            }
        }
    }
    let mut promoted: HashMap<(u32, u32), (Reg, u8, bool)> = HashMap::new();
    let mut spills: Vec<Vec<(Reg, u32, u8, bool)>> = vec![Vec::new(); n_owners];
    for (fi, f) in prog.funcs.iter().enumerate() {
        let o = fi as u32;
        if flow.no_promote[fi] {
            continue;
        }
        let mut cands: Vec<(u32, u8, bool)> = flow
            .accesses
            .iter()
            .filter(|((ow, _), _)| *ow == o)
            .filter_map(|(&(_, off), a)| {
                let (w, isf) = a.shape?;
                let scalar_ok = w == 8 || (!isf && matches!(w, 1 | 2 | 4));
                let in_frame = off
                    .checked_add(w as u32)
                    .is_some_and(|end| end <= f.frame_size);
                let clean = !flow.demoted.contains(&(o, off));
                let disjoint = flow.accesses.iter().all(|(&(ow2, off2), a2)| {
                    ow2 != o
                        || off2 == off
                        || off2 >= off + w as u32
                        || off >= off2 + a2.max_width as u32
                });
                (scalar_ok && in_frame && clean && disjoint).then_some((off, w, isf))
            })
            .collect();
        cands.sort_unstable();
        let base = maxd[fi];
        for (idx, &(off, w, isf)) in cands.iter().enumerate() {
            let reg = (base as usize + idx) as Reg;
            promoted.insert((o, off), (reg, w, isf));
            spills[fi].push((reg, off, w, isf));
        }
    }
    PromotionPlan {
        maxd,
        promoted,
        spills,
    }
}

/// Calls `f` for every register an instruction overwrites (in-place
/// updates included).
pub fn for_each_dst(ins: &RInstr, f: &mut impl FnMut(Reg)) {
    match *ins {
        RInstr::LdcI { d, .. }
        | RInstr::LdcF { d, .. }
        | RInstr::Mov { d, .. }
        | RInstr::FrameAddr { d, .. }
        | RInstr::GlobalAddr { d, .. }
        | RInstr::TidScaled { d, .. }
        | RInstr::TidSpanScaled { d, .. }
        | RInstr::FrameAddrTid { d, .. }
        | RInstr::GlobalAddrTid { d, .. }
        | RInstr::IterIdx { d, .. }
        | RInstr::Load { d, .. }
        | RInstr::LdFrame { d, .. }
        | RInstr::LdGlobal { d, .. }
        | RInstr::IBin { d, .. }
        | RInstr::IBinImm { d, .. }
        | RInstr::FBin { d, .. }
        | RInstr::ICmp { d, .. }
        | RInstr::ICmpImm { d, .. }
        | RInstr::FCmp { d, .. }
        | RInstr::INeg { d }
        | RInstr::FNeg { d }
        | RInstr::BNot { d }
        | RInstr::LNot { d }
        | RInstr::I2F { d }
        | RInstr::F2I { d }
        | RInstr::Sext { d, .. }
        | RInstr::Fsqrt { d }
        | RInstr::Fabs { d }
        | RInstr::Tid { d }
        | RInstr::NThreads { d }
        | RInstr::Localize { d, .. } => f(d),
        RInstr::Tuck { d } => {
            f(d);
            f(d + 1);
            f(d + 2);
        }
        RInstr::Call { abase, .. } | RInstr::CallBuiltin { abase, .. } => f(abase),
        RInstr::Store { .. }
        | RInstr::StFrame { .. }
        | RInstr::MemCpy { .. }
        | RInstr::Jump { .. }
        | RInstr::JumpIfZ { .. }
        | RInstr::JumpIfNZ { .. }
        | RInstr::JumpICmp { .. }
        | RInstr::JumpICmpImm { .. }
        | RInstr::JumpFCmp { .. }
        | RInstr::Ret { .. }
        | RInstr::LoopMark { .. }
        | RInstr::ParLoop { .. }
        | RInstr::Wait { .. }
        | RInstr::Post { .. }
        | RInstr::Halt { .. }
        | RInstr::Unreachable => {}
    }
}

/// Calls `f` for every register an instruction reads (in-place operands
/// and call-convention argument ranges included).
pub fn for_each_src(ins: &RInstr, prog: &CompiledProgram, f: &mut impl FnMut(Reg)) {
    match *ins {
        RInstr::Mov { s, .. } => f(s),
        RInstr::TidSpanScaled { d, .. }
        | RInstr::Load { d, .. }
        | RInstr::INeg { d }
        | RInstr::FNeg { d }
        | RInstr::BNot { d }
        | RInstr::LNot { d }
        | RInstr::I2F { d }
        | RInstr::F2I { d }
        | RInstr::Sext { d, .. }
        | RInstr::Fsqrt { d }
        | RInstr::Fabs { d }
        | RInstr::Localize { d, .. } => f(d),
        RInstr::Tuck { d } => {
            f(d);
            f(d + 1);
        }
        RInstr::Store { a, v, .. } => {
            f(a);
            f(v);
        }
        RInstr::StFrame { v, .. } => f(v),
        RInstr::MemCpy { dst, src, .. } => {
            f(dst);
            f(src);
        }
        RInstr::IBin { l, r, .. }
        | RInstr::FBin { l, r, .. }
        | RInstr::ICmp { l, r, .. }
        | RInstr::FCmp { l, r, .. }
        | RInstr::JumpICmp { l, r, .. }
        | RInstr::JumpFCmp { l, r, .. } => {
            f(l);
            f(r);
        }
        RInstr::IBinImm { l, .. } | RInstr::ICmpImm { l, .. } | RInstr::JumpICmpImm { l, .. } => {
            f(l)
        }
        RInstr::JumpIfZ { s, .. } | RInstr::JumpIfNZ { s, .. } => f(s),
        RInstr::Call { fi, abase, .. } => {
            for k in 0..prog.func(fi).params.len() as u16 {
                f(abase + k);
            }
        }
        RInstr::CallBuiltin { b, abase, .. } => {
            for k in 0..b.arity() as u16 {
                f(abase + k);
            }
        }
        RInstr::Ret { src, has_val, .. } | RInstr::Halt { src, has_val, .. } => {
            if has_val {
                f(src)
            }
        }
        RInstr::ParLoop { lo, hi, .. } => {
            f(lo);
            f(hi);
        }
        RInstr::LdcI { .. }
        | RInstr::LdcF { .. }
        | RInstr::FrameAddr { .. }
        | RInstr::GlobalAddr { .. }
        | RInstr::TidScaled { .. }
        | RInstr::FrameAddrTid { .. }
        | RInstr::GlobalAddrTid { .. }
        | RInstr::IterIdx { .. }
        | RInstr::LdFrame { .. }
        | RInstr::LdGlobal { .. }
        | RInstr::Tid { .. }
        | RInstr::NThreads { .. }
        | RInstr::Jump { .. }
        | RInstr::LoopMark { .. }
        | RInstr::Wait { .. }
        | RInstr::Post { .. }
        | RInstr::Unreachable => {}
    }
}

/// Renames free (non-in-place) source operands through `m`. Calling
/// conventions pin argument ranges and `ParLoop` bounds double as the body
/// window base, so those stay untouched.
fn rewrite_srcs(ins: &mut RInstr, m: impl Fn(Reg) -> Reg) {
    match ins {
        RInstr::Mov { s, .. } | RInstr::JumpIfZ { s, .. } | RInstr::JumpIfNZ { s, .. } => {
            *s = m(*s)
        }
        RInstr::Store { a, v, .. } => {
            *a = m(*a);
            *v = m(*v);
        }
        RInstr::StFrame { v, .. } => *v = m(*v),
        RInstr::MemCpy { dst, src, .. } => {
            *dst = m(*dst);
            *src = m(*src);
        }
        RInstr::IBin { l, r, .. }
        | RInstr::FBin { l, r, .. }
        | RInstr::ICmp { l, r, .. }
        | RInstr::FCmp { l, r, .. }
        | RInstr::JumpICmp { l, r, .. }
        | RInstr::JumpFCmp { l, r, .. } => {
            *l = m(*l);
            *r = m(*r);
        }
        RInstr::IBinImm { l, .. } | RInstr::ICmpImm { l, .. } | RInstr::JumpICmpImm { l, .. } => {
            *l = m(*l)
        }
        RInstr::Ret {
            src, has_val: true, ..
        }
        | RInstr::Halt {
            src, has_val: true, ..
        } => *src = m(*src),
        _ => {}
    }
}

/// Pure register writes (no memory, no traps, no observer events) that the
/// coalescer may delete outright when the destination is provably dead.
pub fn pure_dst(ins: &RInstr) -> Option<Reg> {
    match *ins {
        RInstr::LdcI { d, .. }
        | RInstr::LdcF { d, .. }
        | RInstr::Mov { d, .. }
        | RInstr::FrameAddr { d, .. }
        | RInstr::GlobalAddr { d, .. } => Some(d),
        _ => None,
    }
}

/// Redirects the destination of a just-emitted producer with a free
/// destination register, so a following promoted-slot store needs no
/// `Mov`. In-place ops and calls (whose result register is fixed by
/// convention) refuse.
fn redirect_dst(ins: &mut RInstr, from: Reg, to: Reg) -> bool {
    let d = match ins {
        RInstr::LdcI { d, .. }
        | RInstr::LdcF { d, .. }
        | RInstr::Mov { d, .. }
        | RInstr::FrameAddr { d, .. }
        | RInstr::GlobalAddr { d, .. }
        | RInstr::TidScaled { d, .. }
        | RInstr::FrameAddrTid { d, .. }
        | RInstr::GlobalAddrTid { d, .. }
        | RInstr::IterIdx { d, .. }
        | RInstr::LdFrame { d, .. }
        | RInstr::LdGlobal { d, .. }
        | RInstr::IBin { d, .. }
        | RInstr::IBinImm { d, .. }
        | RInstr::FBin { d, .. }
        | RInstr::ICmp { d, .. }
        | RInstr::ICmpImm { d, .. }
        | RInstr::FCmp { d, .. }
        | RInstr::Tid { d }
        | RInstr::NThreads { d } => d,
        _ => return false,
    };
    if *d != from {
        return false;
    }
    *d = to;
    true
}

/// Block-local register coalescing over the emitted code: forward copy
/// propagation (facts from `Mov`, cleared at run boundaries and across
/// region-clobbering instructions) followed by a backward dead-write sweep
/// that deletes pure writes whose destination is overwritten — or falls
/// above the live operand depth of every outgoing edge — before any read.
/// Deleted instructions are compacted out; all jump targets, the pc→pc
/// maps and the entry registry are remapped.
///
/// Exit liveness is exact because the translation keeps the stack-depth
/// invariant: at a branch to `t`, registers `>= states[t].len()` hold
/// popped temporaries, except a region's promoted slots, which stay live
/// until a call spills them or the frame returns.
#[allow(clippy::too_many_arguments)]
fn coalesce(
    out: &mut Vec<RInstr>,
    origin: &mut Vec<Pc>,
    regpc: &mut [u32],
    prog: &CompiledProgram,
    states: &[Option<State>],
    owner: &[u32],
    maxd: &[usize],
    n_promoted: &[usize],
    regs_cap: usize,
) {
    let len = out.len();
    let mut keep = vec![true; len];
    // Run boundaries: anything control flow can land on.
    let mut rt_target = vec![false; len];
    for (j, ins) in out.iter().enumerate() {
        match *ins {
            RInstr::Jump { t }
            | RInstr::JumpIfZ { t, .. }
            | RInstr::JumpIfNZ { t, .. }
            | RInstr::JumpICmp { t, .. }
            | RInstr::JumpICmpImm { t, .. }
            | RInstr::JumpFCmp { t, .. }
            | RInstr::Call { target: t, .. } => rt_target[t as usize] = true,
            _ => {}
        }
        if let RInstr::Call { .. } = ins {
            // Returns resume at the next pc.
            if j + 1 < len {
                rt_target[j + 1] = true;
            }
        }
    }
    for f in &prog.funcs {
        rt_target[regpc[f.entry as usize] as usize] = true;
    }
    for l in &prog.loops {
        if l.mode.is_some() {
            rt_target[regpc[l.body_entry as usize] as usize] = true;
        }
    }

    // The region owning an emitted instruction (for its promoted range).
    let own_of = |j: usize| -> u32 {
        origin
            .get(j)
            .and_then(|&p| owner.get(p as usize))
            .copied()
            .unwrap_or(NO_OWNER)
    };
    // Operand-stack depth entering the instruction at reg pc `t`.
    let depth_at = |t: usize| -> Option<usize> {
        let sp = *origin.get(t)? as usize;
        states.get(sp)?.as_ref().map(|st| st.len())
    };

    // -- forward: copy propagation --------------------------------------
    let mut copy: Vec<Option<Reg>> = vec![None; regs_cap];
    let invalidate = |copy: &mut Vec<Option<Reg>>, d: Reg| {
        if let Some(c) = copy.get_mut(d as usize) {
            *c = None;
        }
        for c in copy.iter_mut() {
            if *c == Some(d) {
                *c = None;
            }
        }
    };
    for j in 0..len {
        if rt_target[j] {
            copy.iter_mut().for_each(|c| *c = None);
        }
        let ins = &mut out[j];
        let resolve = |r: Reg| copy.get(r as usize).copied().flatten().unwrap_or(r);
        rewrite_srcs(ins, resolve);
        match *ins {
            RInstr::Mov { d, s } if d == s => {
                // Self-move after propagation: pure no-op.
                keep[j] = false;
            }
            RInstr::Mov { d, s } => {
                invalidate(&mut copy, d);
                copy[d as usize] = Some(s);
            }
            // Calls and parallel regions clobber every register at or
            // above their window base; drop all facts.
            RInstr::Call { .. } | RInstr::ParLoop { .. } => {
                copy.iter_mut().for_each(|c| *c = None);
            }
            _ => {
                let mut dsts: [Reg; 3] = [0; 3];
                let mut nd = 0usize;
                for_each_dst(&out[j], &mut |d| {
                    dsts[nd] = d;
                    nd += 1;
                });
                for &d in &dsts[..nd] {
                    invalidate(&mut copy, d);
                }
            }
        }
    }

    // -- backward: dead pure-write elimination --------------------------
    // `dead[r]`: the value in `r` at this point is overwritten (or popped
    // off every outgoing edge) before any read.
    let mut dead = vec![false; regs_cap];
    let reinit = |dead: &mut Vec<bool>, depth: Option<usize>, own: u32| match depth {
        Some(depth) => {
            for (r, dd) in dead.iter_mut().enumerate() {
                *dd = r >= depth;
            }
            if own != NO_OWNER {
                let base = maxd[own as usize];
                for k in 0..n_promoted[own as usize] {
                    if let Some(dd) = dead.get_mut(base + k) {
                        *dd = false;
                    }
                }
            }
        }
        None => dead.iter_mut().for_each(|dd| *dd = false),
    };
    let mut run_end = len;
    for start in (0..len).rev() {
        if start != 0 && !rt_target[start] {
            continue;
        }
        // Liveness after the run's last instruction: the fallthrough
        // successor's depth (control enders below re-initialise anyway).
        reinit(
            &mut dead,
            depth_at(run_end),
            own_of(run_end.saturating_sub(1)),
        );
        for j in (start..run_end).rev() {
            if !keep[j] {
                continue;
            }
            let own = own_of(j);
            match out[j] {
                RInstr::Jump { t } => reinit(&mut dead, depth_at(t as usize), own),
                RInstr::Ret { .. } | RInstr::Halt { .. } | RInstr::Unreachable => {
                    dead.iter_mut().for_each(|dd| *dd = true);
                }
                // Post-call, everything in and above the callee window is
                // clobbered or spilled; arguments revive below. Builtins
                // are NOT window calls — they run inline and write only
                // their result register, so the generic arm handles them.
                RInstr::Call { abase, .. } => {
                    for (r, dd) in dead.iter_mut().enumerate() {
                        if r >= abase as usize {
                            *dd = true;
                        }
                    }
                }
                RInstr::ParLoop { .. } => dead.iter_mut().for_each(|dd| *dd = false),
                RInstr::JumpIfZ { t, .. }
                | RInstr::JumpIfNZ { t, .. }
                | RInstr::JumpICmp { t, .. }
                | RInstr::JumpICmpImm { t, .. }
                | RInstr::JumpFCmp { t, .. } => {
                    // Merge the taken edge: whatever it keeps live, is live.
                    match depth_at(t as usize) {
                        Some(depth) => {
                            for dd in dead.iter_mut().take(depth) {
                                *dd = false;
                            }
                            if own != NO_OWNER {
                                let base = maxd[own as usize];
                                for k in 0..n_promoted[own as usize] {
                                    if let Some(dd) = dead.get_mut(base + k) {
                                        *dd = false;
                                    }
                                }
                            }
                        }
                        None => dead.iter_mut().for_each(|dd| *dd = false),
                    }
                }
                _ => {
                    if let Some(d) = pure_dst(&out[j]) {
                        if dead.get(d as usize).copied().unwrap_or(false) {
                            keep[j] = false;
                            continue;
                        }
                    }
                }
            }
            for_each_dst(&out[j], &mut |d| {
                if let Some(dd) = dead.get_mut(d as usize) {
                    *dd = true;
                }
            });
            for_each_src(&out[j], prog, &mut |s| {
                if let Some(dd) = dead.get_mut(s as usize) {
                    *dd = false;
                }
            });
        }
        run_end = start;
    }

    // -- compact and remap ----------------------------------------------
    let mut new_idx = vec![0u32; len + 1];
    let mut k = 0u32;
    for j in 0..len {
        new_idx[j] = k;
        k += keep[j] as u32;
    }
    new_idx[len] = k;
    for (j, ins) in out.iter_mut().enumerate() {
        if !keep[j] {
            continue;
        }
        match ins {
            RInstr::Jump { t }
            | RInstr::JumpIfZ { t, .. }
            | RInstr::JumpIfNZ { t, .. }
            | RInstr::JumpICmp { t, .. }
            | RInstr::JumpICmpImm { t, .. }
            | RInstr::JumpFCmp { t, .. }
            | RInstr::Call { target: t, .. } => *t = new_idx[*t as usize],
            _ => {}
        }
    }
    let mut w = 0usize;
    for (j, &kept) in keep.iter().enumerate() {
        if kept {
            out.swap(w, j);
            origin.swap(w, j);
            w += 1;
        }
    }
    out.truncate(w);
    origin.truncate(w);
    for p in regpc.iter_mut() {
        if *p != u32::MAX {
            *p = new_idx[*p as usize];
        }
    }
}

/// Translates a compiled stack program to register form.
///
/// # Errors
///
/// Returns a [`RegLowerError`] when the input's operand-stack discipline
/// cannot be statically proven (see [`analyze_stack`]); programs produced
/// by [`crate::lower_program`] always translate.
pub fn translate(prog: &CompiledProgram) -> Result<RegProgram, RegLowerError> {
    let code = &prog.code;
    let n = code.len();
    let flow = analyze_stack(prog)?;
    let n_owners = flow.n_owners();
    let states = &flow.states;
    let owner = &flow.owner;

    // -- scalar promotion decisions ---------------------------------------
    //
    // See `promotion_plan`. The promoted register is loaded from frame
    // memory once at function entry (zeroed locals read 0, parameters read
    // their argument), spilled/reloaded around calls (callee register
    // windows overlap the caller's), and written back never — memory
    // behind a promoted slot is dead by construction.
    let plan = promotion_plan(prog, &flow);
    let maxd: Vec<usize> = plan.maxd.iter().map(|&m| m as usize).collect();
    let promoted = &plan.promoted;
    let spills = &plan.spills;
    // Function entry pc → prologue loads.
    let mut prologue: HashMap<usize, Vec<(Reg, u32, u8, bool)>> = HashMap::new();
    for (fi, f) in prog.funcs.iter().enumerate() {
        if !spills[fi].is_empty() {
            prologue.insert(f.entry as usize, spills[fi].clone());
        }
    }

    // Pcs a fused super-instruction must not swallow: anything control flow
    // can land on directly (branch targets and region/function entries).
    let mut target = vec![false; n + 1];
    for ins in code {
        match *ins {
            Instr::Jump(t) | Instr::JumpIfZ(t) | Instr::JumpIfNZ(t) => target[t as usize] = true,
            _ => {}
        }
    }
    for f in &prog.funcs {
        target[f.entry as usize] = true;
    }
    for l in &prog.loops {
        if l.mode.is_some() {
            target[l.body_entry as usize] = true;
        }
    }

    let mut out: Vec<RInstr> = Vec::with_capacity(n);
    let mut origin: Vec<Pc> = Vec::with_capacity(n);
    let mut regpc: Vec<u32> = vec![u32::MAX; n + 1];
    // Branch-resolution pcs: where a *branch* to a stack pc lands. This
    // differs from `regpc` only at function entries with a promotion
    // prologue — calls must run the prologue loads, but a branch back to
    // the entry (a loop headed at the first statement) must NOT re-run
    // them, or promoted registers would be clobbered from stale frame
    // memory.
    let mut regpc_branch: Vec<u32> = vec![u32::MAX; n + 1];
    // (emitted index, stack target, lands_on_prologue) patched after
    // layout is known; only calls land on the prologue.
    let mut patches: Vec<(usize, Pc, bool)> = Vec::new();
    let consumable = |j: usize| j < n && states[j].is_some() && !target[j];
    let branch_of = |ins: &Instr| match *ins {
        Instr::JumpIfZ(t) => Some((t, false)),
        Instr::JumpIfNZ(t) => Some((t, true)),
        _ => None,
    };

    let mut i = 0usize;
    // Stack pc of the most recent emission, for the straight-line check of
    // the store-into-producer fusion.
    let mut last_emit_pc = 0usize;
    while i < n {
        regpc[i] = out.len() as u32;
        let Some(st) = &states[i] else {
            regpc_branch[i] = out.len() as u32;
            out.push(RInstr::Unreachable);
            origin.push(i as Pc);
            i += 1;
            continue;
        };
        let d = st.len() as u16;
        let pc = i as Pc;
        let own = owner[i];
        macro_rules! emit {
            ($ins:expr) => {{
                out.push($ins);
                origin.push(pc);
            }};
        }
        // Function prologue: pull every promoted slot out of its (zeroed
        // or argument-carrying) frame memory. Calls resolve through
        // `regpc`, so they land here first.
        if let Some(loads) = prologue.get(&i) {
            for &(reg, off, width, is_float) in loads {
                emit!(RInstr::LdFrame {
                    d: reg,
                    off,
                    width,
                    is_float,
                    site: NO_SITE,
                });
            }
        }
        regpc_branch[i] = out.len() as u32;
        let mut consumed = 0usize;
        match code[i] {
            Instr::PushI(v) => match (
                consumable(i + 1).then(|| code[i + 1]),
                consumable(i + 2).then(|| code[i + 2]),
            ) {
                (Some(Instr::ICmp(op)), Some(j)) if branch_of(&j).is_some() => {
                    let (t, on_true) = branch_of(&j).expect("checked");
                    patches.push((out.len(), t, false));
                    emit!(RInstr::JumpICmpImm {
                        op,
                        l: d - 1,
                        imm: v,
                        t: 0,
                        on_true,
                    });
                    consumed = 2;
                }
                (Some(Instr::ICmp(op)), _) => {
                    emit!(RInstr::ICmpImm {
                        op,
                        d: d - 1,
                        l: d - 1,
                        imm: v,
                    });
                    consumed = 1;
                }
                (Some(Instr::IBin(op)), _) => {
                    emit!(RInstr::IBinImm {
                        op,
                        d: d - 1,
                        l: d - 1,
                        imm: v,
                    });
                    consumed = 1;
                }
                _ => emit!(RInstr::LdcI { d, v }),
            },
            Instr::ICmp(op) if consumable(i + 1) && branch_of(&code[i + 1]).is_some() => {
                let (t, on_true) = branch_of(&code[i + 1]).expect("checked");
                patches.push((out.len(), t, false));
                emit!(RInstr::JumpICmp {
                    op,
                    l: d - 2,
                    r: d - 1,
                    t: 0,
                    on_true,
                });
                consumed = 1;
            }
            Instr::FCmp(op) if consumable(i + 1) && branch_of(&code[i + 1]).is_some() => {
                let (t, on_true) = branch_of(&code[i + 1]).expect("checked");
                patches.push((out.len(), t, false));
                emit!(RInstr::JumpFCmp {
                    op,
                    l: d - 2,
                    r: d - 1,
                    t: 0,
                    on_true,
                });
                consumed = 1;
            }
            Instr::FrameAddr(off) => match (
                promoted.get(&(own, off)),
                consumable(i + 1).then(|| code[i + 1]),
            ) {
                // Promoted slot: the address itself is dead (every consumer
                // resolves through provenance); fuse an adjacent load into
                // a register move, emit nothing otherwise.
                (Some(&(sreg, _, _)), Some(Instr::Load { .. })) => {
                    emit!(RInstr::Mov { d, s: sreg });
                    consumed = 1;
                }
                (Some(_), _) => {}
                (
                    None,
                    Some(Instr::Load {
                        width,
                        is_float,
                        site,
                    }),
                ) => {
                    emit!(RInstr::LdFrame {
                        d,
                        off,
                        width,
                        is_float,
                        site,
                    });
                    consumed = 1;
                }
                (None, _) => emit!(RInstr::FrameAddr { d, off }),
            },
            Instr::GlobalAddr(addr) => match consumable(i + 1).then(|| code[i + 1]) {
                Some(Instr::Load {
                    width,
                    is_float,
                    site,
                }) => {
                    emit!(RInstr::LdGlobal {
                        d,
                        addr,
                        width,
                        is_float,
                        site,
                    });
                    consumed = 1;
                }
                _ => emit!(RInstr::GlobalAddr { d, addr }),
            },
            Instr::PushF(v) => emit!(RInstr::LdcF { d, v }),
            Instr::Dup => match st.last().and_then(|s| s.addr_of) {
                // Copying a promoted slot's (dead) address copies nothing.
                Some(off) if promoted.contains_key(&(own, off)) => {}
                _ => emit!(RInstr::Mov { d, s: d - 1 }),
            },
            Instr::Drop => {} // pure depth bookkeeping; no code
            Instr::Tuck => emit!(RInstr::Tuck { d: d - 2 }),
            Instr::TidScaled(k) => emit!(RInstr::TidScaled { d, k }),
            Instr::TidSpanScaled(z) => emit!(RInstr::TidSpanScaled { d: d - 1, z }),
            Instr::FrameAddrTid { offset, stride } => {
                emit!(RInstr::FrameAddrTid { d, offset, stride })
            }
            Instr::GlobalAddrTid { addr, stride } => {
                emit!(RInstr::GlobalAddrTid { d, addr, stride })
            }
            Instr::IterIdx(depth) => emit!(RInstr::IterIdx { d, depth }),
            Instr::Load {
                width,
                is_float,
                site,
            } => match st[(d - 1) as usize].addr_of {
                Some(off) if promoted.contains_key(&(own, off)) => {
                    emit!(RInstr::Mov {
                        d: d - 1,
                        s: promoted[&(own, off)].0,
                    });
                }
                // Known-but-unpromoted frame slot: still skip the address
                // register (it may hold a fused-away computation).
                Some(off) => emit!(RInstr::LdFrame {
                    d: d - 1,
                    off,
                    width,
                    is_float,
                    site,
                }),
                None => emit!(RInstr::Load {
                    d: d - 1,
                    width,
                    is_float,
                    site,
                }),
            },
            Instr::Store {
                width,
                is_float,
                site,
            } => match st[(d - 2) as usize].addr_of {
                Some(off) if promoted.contains_key(&(own, off)) => {
                    let sreg = promoted[&(own, off)].0;
                    // If the value's producer immediately precedes on a
                    // straight line (no branch lands between it and here),
                    // write the promoted register directly.
                    let fused = (last_emit_pc + 1..=i).all(|k| !target[k])
                        && out
                            .last_mut()
                            .is_some_and(|prev| redirect_dst(prev, d - 1, sreg));
                    if !fused {
                        emit!(RInstr::Mov { d: sreg, s: d - 1 });
                    }
                    // Narrow stores truncate in memory and sign-extend on
                    // reload; keep the register canonical the same way.
                    if !is_float && width < 8 {
                        emit!(RInstr::Sext { d: sreg, w: width });
                    }
                }
                Some(off) => emit!(RInstr::StFrame {
                    off,
                    v: d - 1,
                    width,
                    is_float,
                    site,
                }),
                None => emit!(RInstr::Store {
                    a: d - 2,
                    v: d - 1,
                    width,
                    is_float,
                    site,
                }),
            },
            Instr::MemCpy {
                size,
                load_site,
                store_site,
            } => emit!(RInstr::MemCpy {
                dst: d - 1,
                src: d - 2,
                size,
                load_site,
                store_site,
            }),
            Instr::IBin(op) => emit!(RInstr::IBin {
                op,
                d: d - 2,
                l: d - 2,
                r: d - 1,
            }),
            Instr::FBin(op) => emit!(RInstr::FBin {
                op,
                d: d - 2,
                l: d - 2,
                r: d - 1,
            }),
            Instr::ICmp(op) => emit!(RInstr::ICmp {
                op,
                d: d - 2,
                l: d - 2,
                r: d - 1,
            }),
            Instr::FCmp(op) => emit!(RInstr::FCmp {
                op,
                d: d - 2,
                l: d - 2,
                r: d - 1,
            }),
            Instr::INeg => emit!(RInstr::INeg { d: d - 1 }),
            Instr::FNeg => emit!(RInstr::FNeg { d: d - 1 }),
            Instr::BNot => emit!(RInstr::BNot { d: d - 1 }),
            Instr::LNot => emit!(RInstr::LNot { d: d - 1 }),
            Instr::I2F => emit!(RInstr::I2F { d: d - 1 }),
            Instr::F2I => emit!(RInstr::F2I { d: d - 1 }),
            Instr::SextTrunc(w) => emit!(RInstr::Sext { d: d - 1, w }),
            Instr::Jump(t) => {
                patches.push((out.len(), t, false));
                emit!(RInstr::Jump { t: 0 });
            }
            Instr::JumpIfZ(t) => {
                patches.push((out.len(), t, false));
                emit!(RInstr::JumpIfZ { s: d - 1, t: 0 });
            }
            Instr::JumpIfNZ(t) => {
                patches.push((out.len(), t, false));
                emit!(RInstr::JumpIfNZ { s: d - 1, t: 0 });
            }
            Instr::Call(fi) => {
                // The callee's register window overlaps the caller's, so
                // promoted slots spill to their frame homes across the
                // call and reload after.
                let spill: &[_] = if own != NO_OWNER {
                    spills[own as usize].as_slice()
                } else {
                    &[]
                };
                for &(sreg, off, width, is_float) in spill {
                    emit!(RInstr::StFrame {
                        off,
                        v: sreg,
                        width,
                        is_float,
                        site: NO_SITE,
                    });
                }
                let nargs = prog.func(fi).params.len() as u16;
                patches.push((out.len(), prog.func(fi).entry, true));
                emit!(RInstr::Call {
                    target: 0,
                    fi,
                    abase: d - nargs,
                });
                for &(sreg, off, width, is_float) in spill {
                    emit!(RInstr::LdFrame {
                        d: sreg,
                        off,
                        width,
                        is_float,
                        site: NO_SITE,
                    });
                }
            }
            Instr::CallBuiltin(b) => match b {
                Builtin::Fsqrt => emit!(RInstr::Fsqrt { d: d - 1 }),
                Builtin::Fabs => emit!(RInstr::Fabs { d: d - 1 }),
                Builtin::Tid => emit!(RInstr::Tid { d }),
                Builtin::NThreads => emit!(RInstr::NThreads { d }),
                _ => emit!(RInstr::CallBuiltin {
                    b,
                    abase: d - b.arity() as u16,
                    orig_pc: pc,
                }),
            },
            Instr::Ret => emit!(RInstr::Ret {
                src: d.saturating_sub(1),
                has_val: d == 1,
                is_float: d == 1 && st[0].ty == Ty::F,
            }),
            Instr::LoopMark(ev, id) => emit!(RInstr::LoopMark { ev, id }),
            Instr::ParLoop(id) => emit!(RInstr::ParLoop {
                id,
                lo: d - 2,
                hi: d - 1,
            }),
            Instr::Wait(id) => emit!(RInstr::Wait { id }),
            Instr::Post(id) => emit!(RInstr::Post { id }),
            Instr::Localize { site } => emit!(RInstr::Localize { d: d - 1, site }),
            Instr::Halt => emit!(RInstr::Halt {
                src: d.saturating_sub(1),
                has_val: d >= 1,
                is_float: d >= 1 && st.last().expect("nonempty").ty == Ty::F,
            }),
        }
        // Consumed pcs map to the fused instruction (they are never branch
        // targets, so this mapping is only cosmetic).
        for k in 1..=consumed {
            regpc[i + k] = regpc[i];
            regpc_branch[i + k] = regpc_branch[i];
        }
        if out.len() as u32 > regpc[i] {
            last_emit_pc = i;
        }
        i += 1 + consumed;
    }
    // A branch/entry may reference `n` (one past the end) only via fallthrough
    // of a trailing instruction; keep the pc space total either way.
    regpc[n] = out.len() as u32;
    regpc_branch[n] = out.len() as u32;
    out.push(RInstr::Unreachable);
    origin.push(n as Pc);

    for (idx, stack_t, is_call) in patches {
        // Branches to a function entry must skip the promoted-slot prologue:
        // the loads there re-read frame memory that is stale once the slot
        // lives in its register. Only calls enter through the prologue.
        let rt = if is_call {
            regpc[stack_t as usize]
        } else {
            regpc_branch[stack_t as usize]
        };
        debug_assert_ne!(rt, u32::MAX, "branch into untranslated pc");
        match &mut out[idx] {
            RInstr::Jump { t }
            | RInstr::JumpIfZ { t, .. }
            | RInstr::JumpIfNZ { t, .. }
            | RInstr::JumpICmp { t, .. }
            | RInstr::JumpICmpImm { t, .. }
            | RInstr::JumpFCmp { t, .. }
            | RInstr::Call { target: t, .. } => *t = rt,
            other => unreachable!("patch target on {other:?}"),
        }
    }

    let max_depth = states.iter().flatten().map(|s| s.len()).max().unwrap_or(0) as u32;
    // Promoted slots sit above each region's operand-depth registers; the
    // window must cover the deepest combination.
    let max_window = (0..n_owners)
        .map(|o| maxd[o] as u32 + spills[o].len() as u32)
        .max()
        .unwrap_or(0)
        .max(max_depth);
    let n_promoted: Vec<usize> = spills.iter().map(|s| s.len()).collect();
    coalesce(
        &mut out,
        &mut origin,
        &mut regpc,
        prog,
        states,
        owner,
        &maxd,
        &n_promoted,
        (max_window + 4) as usize,
    );

    let mut entry_map = HashMap::new();
    for f in &prog.funcs {
        entry_map.insert(f.entry, regpc[f.entry as usize]);
    }
    for l in &prog.loops {
        if l.mode.is_some() {
            entry_map.insert(l.body_entry, regpc[l.body_entry as usize]);
        }
    }
    Ok(RegProgram {
        code: out,
        entry_map,
        origin,
        frame_regs: max_window + 4,
        promo: plan,
        verified: AtomicBool::new(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{FuncInfo, Instr};

    fn one_func(code: Vec<Instr>) -> CompiledProgram {
        CompiledProgram {
            code,
            funcs: vec![FuncInfo {
                name: "main".into(),
                entry: 0,
                frame_size: 0,
                params: vec![],
                ret: RetKind::Scalar,
                ret_float: false,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn translates_constant_arithmetic() {
        // 2 + 3 via push/push/add, returned.
        let p = one_func(vec![
            Instr::PushI(2),
            Instr::PushI(3),
            Instr::IBin(IBinOp::Add),
            Instr::Ret,
        ]);
        let rp = translate(&p).expect("translates");
        assert_eq!(rp.entry_map[&0], 0);
        // PushI(3);IBin fuses to IBinImm, so: LdcI, IBinImm, Ret.
        assert!(matches!(rp.code[0], RInstr::LdcI { d: 0, v: 2 }));
        assert!(matches!(
            rp.code[1],
            RInstr::IBinImm {
                op: IBinOp::Add,
                d: 0,
                l: 0,
                imm: 3
            }
        ));
        assert!(matches!(
            rp.code[2],
            RInstr::Ret {
                src: 0,
                has_val: true,
                is_float: false
            }
        ));
    }

    #[test]
    fn fuses_compare_and_branch() {
        // if (1 < 2) goto 5 else fall through; both paths return 0.
        let p = one_func(vec![
            Instr::PushI(1),
            Instr::PushI(2),
            Instr::ICmp(CmpOp::Lt),
            Instr::JumpIfNZ(5),
            Instr::Jump(5),
            Instr::PushI(0),
            Instr::Ret,
        ]);
        let rp = translate(&p).expect("translates");
        assert!(rp
            .code
            .iter()
            .any(|i| matches!(i, RInstr::JumpICmpImm { on_true: true, .. })));
    }

    #[test]
    fn rejects_join_depth_mismatch() {
        // Two paths reach pc 4 with different stack depths.
        let p = one_func(vec![
            Instr::PushI(1),
            Instr::JumpIfZ(4), // pops; depth 0 at target via this edge
            Instr::PushI(7),
            Instr::Jump(4), // depth 1 at target via this edge
            Instr::Halt,
        ]);
        let e = translate(&p).expect_err("mismatch");
        assert!(e.msg.contains("mismatch"), "unexpected error: {e}");
    }

    #[test]
    fn rejects_type_confusion() {
        let p = one_func(vec![Instr::PushF(1.5), Instr::LNot, Instr::Halt]);
        let e = translate(&p).expect_err("float into LNot");
        assert!(e.msg.contains("expected"), "unexpected error: {e}");
    }

    #[test]
    fn drop_emits_no_code() {
        let p = one_func(vec![
            Instr::PushI(1),
            Instr::PushI(9),
            Instr::Drop,
            Instr::Ret,
        ]);
        let rp = translate(&p).expect("translates");
        assert!(!rp
            .code
            .iter()
            .any(|i| matches!(i, RInstr::Mov { .. } | RInstr::Tuck { .. })));
        // LdcI, Ret, trailing Unreachable: the dropped push is a dead
        // write the coalescer removes outright.
        assert_eq!(rp.code.len(), 3);
    }

    fn framed_func(frame_size: u32, code: Vec<Instr>) -> CompiledProgram {
        let mut p = one_func(code);
        p.funcs[0].frame_size = frame_size;
        p
    }

    fn is_memory_op(i: &RInstr) -> bool {
        matches!(
            i,
            RInstr::Load { .. }
                | RInstr::LdFrame { .. }
                | RInstr::LdGlobal { .. }
                | RInstr::Store { .. }
                | RInstr::StFrame { .. }
                | RInstr::MemCpy { .. }
        )
    }

    #[test]
    fn promotes_loop_scalar_to_register() {
        // x = 0; while (x < 10) x = x + 1; return x. Promotion must leave
        // only the prologue load touching frame memory.
        let p = framed_func(
            8,
            vec![
                Instr::FrameAddr(0),
                Instr::PushI(0),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 1,
                },
                Instr::FrameAddr(0), // loop head
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 2,
                },
                Instr::PushI(10),
                Instr::ICmp(CmpOp::Lt),
                Instr::JumpIfZ(15),
                Instr::FrameAddr(0),
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 3,
                },
                Instr::PushI(1),
                Instr::IBin(IBinOp::Add),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 4,
                },
                Instr::Jump(3),
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 5,
                },
                Instr::Ret,
            ],
        );
        let rp = translate(&p).expect("translates");
        let mem: Vec<&RInstr> = rp.code.iter().filter(|i| is_memory_op(i)).collect();
        assert_eq!(
            mem.len(),
            1,
            "only the prologue load remains: {:?}",
            rp.code
        );
        assert!(
            matches!(mem[0], RInstr::LdFrame { site, .. } if *site == NO_SITE),
            "prologue load is unsited"
        );
        assert!(rp
            .code
            .iter()
            .any(|i| matches!(i, RInstr::JumpICmpImm { .. })));
    }

    #[test]
    fn branch_to_entry_skips_promoted_prologue() {
        // The loop is headed at the function's first pc, so the back edge
        // targets the entry itself. It must resolve past the promoted-slot
        // prologue: re-running those frame loads would resurrect stale
        // memory and (here) never observe the decrement.
        let p = framed_func(
            8,
            vec![
                Instr::FrameAddr(0), // loop head == function entry
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 1,
                },
                Instr::PushI(0),
                Instr::ICmp(CmpOp::Gt),
                Instr::JumpIfZ(12),
                Instr::FrameAddr(0),
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 2,
                },
                Instr::PushI(2),
                Instr::IBin(IBinOp::Sub),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 3,
                },
                Instr::Jump(0), // back edge to the entry pc
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 4,
                },
                Instr::Ret,
            ],
        );
        let rp = translate(&p).expect("translates");
        // The slot promotes, so the entry carries a prologue load.
        assert!(
            matches!(rp.code[rp.entry_map[&0] as usize], RInstr::LdFrame { site, .. } if site == NO_SITE),
            "entry begins with the prologue load: {:?}",
            rp.code
        );
        for ins in &rp.code {
            let t = match *ins {
                RInstr::Jump { t }
                | RInstr::JumpIfZ { t, .. }
                | RInstr::JumpIfNZ { t, .. }
                | RInstr::JumpICmp { t, .. }
                | RInstr::JumpICmpImm { t, .. }
                | RInstr::JumpFCmp { t, .. } => t,
                _ => continue,
            };
            assert!(
                !matches!(rp.code[t as usize], RInstr::LdFrame { site, .. } if site == NO_SITE),
                "branch lands on a prologue load: {:?}",
                rp.code
            );
        }
    }

    #[test]
    fn spills_promoted_slots_around_calls() {
        // x = 7; f(); return x — the callee's window overlaps the
        // caller's, so x round-trips through its frame home.
        let p = CompiledProgram {
            code: vec![
                Instr::FrameAddr(0),
                Instr::PushI(7),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 1,
                },
                Instr::Call(1),
                Instr::Drop,
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 2,
                },
                Instr::Ret,
                Instr::PushI(1), // f
                Instr::Ret,
            ],
            funcs: vec![
                FuncInfo {
                    name: "main".into(),
                    entry: 0,
                    frame_size: 8,
                    params: vec![],
                    ret: RetKind::Scalar,
                    ret_float: false,
                },
                FuncInfo {
                    name: "f".into(),
                    entry: 8,
                    frame_size: 0,
                    params: vec![],
                    ret: RetKind::Scalar,
                    ret_float: false,
                },
            ],
            ..Default::default()
        };
        let rp = translate(&p).expect("translates");
        let call = rp
            .code
            .iter()
            .position(|i| matches!(i, RInstr::Call { .. }))
            .expect("call emitted");
        assert!(
            matches!(rp.code[call - 1], RInstr::StFrame { off: 0, .. }),
            "spill precedes the call: {:?}",
            rp.code
        );
        assert!(
            matches!(rp.code[call + 1], RInstr::LdFrame { off: 0, .. }),
            "reload follows the call: {:?}",
            rp.code
        );
    }

    #[test]
    fn escaping_address_blocks_promotion() {
        // The frame address is passed to a builtin as a plain value, so
        // the whole region keeps its memory traffic.
        let p = framed_func(
            8,
            vec![
                Instr::FrameAddr(0),
                Instr::PushI(3),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 1,
                },
                Instr::FrameAddr(0),
                Instr::CallBuiltin(Builtin::Free),
                Instr::PushI(0),
                Instr::Ret,
            ],
        );
        let rp = translate(&p).expect("translates");
        assert!(
            rp.code
                .iter()
                .any(|i| matches!(i, RInstr::StFrame { off: 0, .. })),
            "store stays memory-backed: {:?}",
            rp.code
        );
    }

    #[test]
    fn narrow_promoted_store_sign_extends() {
        // A 4-byte store truncates in memory and sign-extends on reload;
        // the promoted register must be canonicalised the same way.
        let p = framed_func(
            4,
            vec![
                Instr::FrameAddr(0),
                Instr::PushI(0x1_0000_0001),
                Instr::Store {
                    width: 4,
                    is_float: false,
                    site: 1,
                },
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 4,
                    is_float: false,
                    site: 2,
                },
                Instr::Ret,
            ],
        );
        let rp = translate(&p).expect("translates");
        assert!(!rp.code.iter().skip(1).any(is_memory_op), "promoted");
        assert!(
            rp.code
                .iter()
                .any(|i| matches!(i, RInstr::Sext { w: 4, .. })),
            "canonicalising Sext emitted: {:?}",
            rp.code
        );
    }

    #[test]
    fn builtin_call_preserves_promoted_registers() {
        // Regression: builtins run inline and write only their result
        // register — the coalescer must not treat them as window calls and
        // delete writes to promoted registers above the result slot.
        let p = framed_func(
            8,
            vec![
                Instr::FrameAddr(0),
                Instr::PushI(5),
                Instr::Store {
                    width: 8,
                    is_float: false,
                    site: 1,
                },
                Instr::PushI(1),
                Instr::CallBuiltin(Builtin::Malloc),
                Instr::Drop,
                Instr::FrameAddr(0),
                Instr::Load {
                    width: 8,
                    is_float: false,
                    site: 2,
                },
                Instr::Ret,
            ],
        );
        let rp = translate(&p).expect("translates");
        assert!(
            rp.code
                .iter()
                .any(|i| matches!(i, RInstr::LdcI { v: 5, .. })),
            "the promoted write of 5 survives: {:?}",
            rp.code
        );
    }
}
